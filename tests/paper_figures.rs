//! Integration tests spanning the whole stack: every worked example of the paper is
//! pushed through classification, scheduling and (where applicable) code generation, and
//! the outputs are compared with the statements the paper makes about it.

use fcpn::codegen::{emit_c, synthesize, CEmitOptions, SynthesisOptions};
use fcpn::petri::analysis::{Classification, InvariantAnalysis, NetClass};
use fcpn::petri::gallery;
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome};
use fcpn::sdf::{schedule_conflict_free, FiringPolicy};

#[test]
fn figure1_free_choice_classification() {
    assert_eq!(
        Classification::of(&gallery::figure1a()).class,
        NetClass::FreeChoice
    );
    assert_eq!(
        Classification::of(&gallery::figure1b()).class,
        NetClass::General
    );
}

#[test]
fn figure2_static_schedule_and_invariant() {
    let net = gallery::figure2();
    let invariants = InvariantAnalysis::of(&net);
    assert_eq!(invariants.t_semiflows.len(), 1);
    assert_eq!(invariants.t_semiflows[0].vector, vec![4, 2, 1]);
    let schedule = schedule_conflict_free(&net, &[4, 2, 1], FiringPolicy::Eager).unwrap();
    assert_eq!(
        net.format_sequence(&schedule.sequence),
        "t1 t1 t1 t1 t2 t2 t3"
    );
    assert!(net.is_finite_complete_cycle(net.initial_marking(), &schedule.sequence));
}

#[test]
fn figure3a_is_schedulable_and_3b_is_not() {
    let good = quasi_static_schedule(&gallery::figure3a(), &QssOptions::default()).unwrap();
    assert!(good.is_schedulable());
    let bad = quasi_static_schedule(&gallery::figure3b(), &QssOptions::default()).unwrap();
    assert!(!bad.is_schedulable());
}

#[test]
fn figure4_schedule_code_and_semantics() {
    let net = gallery::figure4();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())
        .unwrap()
        .schedule()
        .unwrap();
    assert_eq!(schedule.describe(&net), "{(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}");
    assert!(schedule.is_valid(&net));
    // Every cycle really is a finite complete cycle of the token game.
    for cycle in &schedule.cycles {
        assert!(net.is_finite_complete_cycle(net.initial_marking(), &cycle.sequence));
    }
    // The synthesised C matches the structure printed in Section 4.
    let program = synthesize(&net, &schedule, SynthesisOptions::default()).unwrap();
    let c = emit_c(&program, &net, CEmitOptions::default());
    assert!(c.contains("if (count_p2 >= 2) {"));
    assert!(c.contains("while (count_p3 >= 1) {"));
}

#[test]
fn figure5_schedule_matches_paper_and_generates_two_tasks() {
    let net = gallery::figure5();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())
        .unwrap()
        .schedule()
        .unwrap();
    assert_eq!(
        schedule.describe(&net),
        "{(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}"
    );
    let program = synthesize(&net, &schedule, SynthesisOptions::default()).unwrap();
    assert_eq!(program.task_count(), 2);
}

#[test]
fn figure7_reductions_are_diagnosed_as_inconsistent() {
    let net = gallery::figure7();
    let QssOutcome::NotSchedulable(report) =
        quasi_static_schedule(&net, &QssOptions::default()).unwrap()
    else {
        panic!("figure 7 must not be schedulable");
    };
    assert_eq!(report.components_examined, 2);
    assert_eq!(report.failures.len(), 2);
}

#[test]
fn schedulable_nets_have_bounded_buffer_requirements() {
    for net in [gallery::figure3a(), gallery::figure4(), gallery::figure5()] {
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        let bounds = schedule.buffer_bounds(&net);
        assert_eq!(bounds.len(), net.place_count());
        assert!(schedule.total_buffer_tokens(&net) > 0);
        // No place needs more than a handful of slots in these small nets.
        assert!(bounds.iter().all(|&b| b <= 4), "bounds {bounds:?}");
    }
}
