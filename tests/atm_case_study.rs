//! Integration tests for the ATM server case study (Section 5 / Table I).
//!
//! The full paper-sized experiment is exercised by `examples/table1.rs` and the
//! `table1_qss_vs_functional` bench; the tests here keep the debug-profile run time low by
//! using the small configuration for the end-to-end paths and the paper configuration
//! only for structural checks.

use fcpn::atm::{
    boundary_places, functional_partition, generate_workload, run_table1, AtmChoicePolicy,
    AtmConfig, AtmModel, Table1Config, TrafficConfig,
};
use fcpn::codegen::{synthesize, SynthesisOptions};
use fcpn::qss::{quasi_static_schedule, QssOptions};
use fcpn::rtos::{simulate_program, CostModel};

#[test]
fn paper_model_statistics_match_the_paper() {
    let model = AtmModel::build(AtmConfig::paper()).unwrap();
    let stats = model.net.stats();
    assert_eq!(
        (stats.transitions, stats.places, stats.choices),
        (49, 41, 11)
    );
    assert!(model.net.is_free_choice());
    assert_eq!(stats.source_transitions, 2);
}

#[test]
fn small_model_full_pipeline_produces_two_tasks() {
    let model = AtmModel::build(AtmConfig::small()).unwrap();
    let schedule = quasi_static_schedule(&model.net, &QssOptions::default())
        .unwrap()
        .schedule()
        .expect("atm model is schedulable");
    let program = synthesize(&model.net, &schedule, SynthesisOptions::default()).unwrap();
    assert_eq!(program.task_count(), 2);
    let names: Vec<&str> = program.tasks.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names, vec!["task_cell", "task_tick"]);

    // Drive the synthesised tasks with the 50-cell testbench.
    let traffic = TrafficConfig::paper();
    let workload = generate_workload(&model, &traffic, 2024);
    let mut policy = AtmChoicePolicy::new(&model, traffic, 2024);
    let report = simulate_program(
        &program,
        &model.net,
        &CostModel::default(),
        &workload,
        &mut policy,
    )
    .unwrap();
    assert_eq!(report.events_processed, workload.len());
    assert_eq!(report.fires_of(model.cell), 50);
    assert_eq!(report.fires_of(model.tick), 60);
}

#[test]
fn table1_shape_holds_for_the_small_model() {
    let model = AtmModel::build(AtmConfig::small()).unwrap();
    let table = run_table1(&model, &Table1Config::default()).unwrap();
    assert_eq!(table.qss.tasks, 2);
    assert_eq!(table.functional.tasks, 5);
    assert!(table.qss_wins());
    assert!(table.cycle_ratio() > 1.0 && table.cycle_ratio() < 4.0);
}

#[test]
fn functional_partition_matches_module_structure() {
    let model = AtmModel::build(AtmConfig::small()).unwrap();
    let tasks = functional_partition(&model);
    assert_eq!(tasks.len(), 5);
    let queues = boundary_places(&model);
    // The WFQ request merge and the discard log are inter-module queues.
    let wfq_req = model.net.place_by_name("p_wfq_req").unwrap();
    let discard_log = model.net.place_by_name("p_discard_log").unwrap();
    assert!(queues.contains(&wfq_req));
    assert!(queues.contains(&discard_log));
}
