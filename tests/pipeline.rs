//! End-to-end pipeline tests: net → valid schedule → task IR → C text → interpreted
//! execution → RTOS simulation, checking that each stage preserves what the previous one
//! promised.

use fcpn::codegen::{
    emit_c, synthesize, CEmitOptions, CodeMetrics, Interpreter, RoundRobinResolver,
    SynthesisOptions,
};
use fcpn::petri::gallery;
use fcpn::qss::{quasi_static_schedule, QssOptions};
use fcpn::rtos::{simulate_program, CostModel, Workload};

#[test]
fn interpreted_code_matches_schedule_rates_on_figure5() {
    let net = gallery::figure5();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())
        .unwrap()
        .schedule()
        .unwrap();
    let program = synthesize(&net, &schedule, SynthesisOptions::default()).unwrap();
    let mut interpreter = Interpreter::new(&program, &net);
    let t1 = net.transition_by_name("t1").unwrap();
    let t8 = net.transition_by_name("t8").unwrap();

    // Drive 40 t1 events and 40 t8 events alternating branches; every counter must stay
    // within the buffer bound the schedule computed.
    let mut resolver = RoundRobinResolver::default();
    for _ in 0..40 {
        interpreter.run_task_for_source(t1, &mut resolver).unwrap();
        interpreter.run_task_for_source(t8, &mut resolver).unwrap();
    }
    let bounds = schedule.buffer_bounds(&net);
    for (index, &peak) in interpreter.peak_counters().iter().enumerate() {
        let place = fcpn::petri::PlaceId::new(index);
        if program.is_counter_place(place) {
            assert!(
                peak as u64 <= bounds[index].max(1),
                "place {} peaked at {} > bound {}",
                net.place_name(place),
                peak,
                bounds[index]
            );
        }
    }
    // Rates: every t8 event fires t9 and t6 exactly once.
    let t9 = net.transition_by_name("t9").unwrap();
    assert_eq!(interpreter.fire_counts()[t9.index()], 40);
}

#[test]
fn simulation_cycles_scale_with_activation_overhead() {
    let net = gallery::figure4();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())
        .unwrap()
        .schedule()
        .unwrap();
    let program = synthesize(&net, &schedule, SynthesisOptions::default()).unwrap();
    let t1 = net.transition_by_name("t1").unwrap();
    let workload = Workload::periodic(t1, 10, 100, 0);

    let cheap = CostModel::new(10, 40, 4, 12);
    let expensive = CostModel::new(1000, 40, 4, 12);
    let mut r1 = RoundRobinResolver::default();
    let mut r2 = RoundRobinResolver::default();
    let low = simulate_program(&program, &net, &cheap, &workload, &mut r1).unwrap();
    let high = simulate_program(&program, &net, &expensive, &workload, &mut r2).unwrap();
    assert_eq!(low.activations, high.activations);
    assert_eq!(low.fire_counts, high.fire_counts);
    assert_eq!(
        high.total_cycles - low.total_cycles,
        (1000 - 10) * low.activations
    );
}

#[test]
fn emitted_c_and_metrics_are_consistent() {
    for net in [gallery::figure3a(), gallery::figure4(), gallery::figure5()] {
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).unwrap();
        let metrics = CodeMetrics::of(&program, &net);
        let c = emit_c(&program, &net, CEmitOptions::default());
        assert_eq!(
            metrics.lines_of_c,
            c.lines().filter(|l| !l.trim().is_empty()).count()
        );
        assert_eq!(metrics.tasks, net.source_transitions().len().max(1));
        // Every task function appears in the emitted text.
        for task in &program.tasks {
            assert!(c.contains(&format!("void {}(void)", task.name)));
        }
    }
}

#[test]
fn choice_chain_end_to_end() {
    // A chain of four choices: 16 cycles, but linear code, bounded counters, and a
    // simulation that processes every event.
    let net = gallery::choice_chain(4);
    let schedule = quasi_static_schedule(&net, &QssOptions::default())
        .unwrap()
        .schedule()
        .unwrap();
    assert_eq!(schedule.cycle_count(), 16);
    let program = synthesize(&net, &schedule, SynthesisOptions::default()).unwrap();
    assert_eq!(program.task_count(), 1);
    let source = net.transition_by_name("src").unwrap();
    let workload = Workload::periodic(source, 5, 64, 0);
    let mut resolver = RoundRobinResolver::default();
    let report = simulate_program(
        &program,
        &net,
        &CostModel::default(),
        &workload,
        &mut resolver,
    )
    .unwrap();
    assert_eq!(report.events_processed, 64);
    let sink = net.transition_by_name("sink").unwrap();
    assert_eq!(report.fires_of(sink), 64);
}
