//! Integration tests relating the behavioural analyses (coverability, boundedness,
//! siphons, liveness) to the quasi-static scheduling verdicts: the two views must tell a
//! consistent story about the same nets.

use fcpn::petri::analysis::{
    check_boundedness, find_deadlock, Boundedness, BoundednessOptions, CoverabilityGraph,
    CoverabilityOptions, DeadlockReport, ReachabilityOptions, SiphonAnalysis,
};
use fcpn::petri::{gallery, Marking, NetBuilder};
use fcpn::qss::{quasi_static_schedule, QssOptions};

#[test]
fn open_nets_are_behaviourally_unbounded_but_quasi_statically_schedulable() {
    // Nets with source transitions are unbounded if the environment floods them — that is
    // exactly why the paper replaces plain boundedness with schedulability: a *schedule*
    // keeps the accumulation bounded by reacting to every input.
    for net in [gallery::figure3a(), gallery::figure4(), gallery::figure5()] {
        let coverability = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(
            !coverability.is_bounded(),
            "{} should look unbounded without a scheduler",
            net.name()
        );
        let outcome = quasi_static_schedule(&net, &QssOptions::default()).unwrap();
        assert!(
            outcome.is_schedulable(),
            "{} must be schedulable",
            net.name()
        );
    }
}

#[test]
fn schedulable_cycles_keep_the_token_game_bounded() {
    // Executing the valid schedule's cycles in any order returns to the initial marking,
    // so iterating them forever keeps every place bounded by the per-cycle peak.
    let net = gallery::figure5();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())
        .unwrap()
        .schedule()
        .unwrap();
    let bounds = schedule.buffer_bounds(&net);
    let mut marking = net.initial_marking().clone();
    for round in 0..8 {
        let cycle = &schedule.cycles[round % schedule.cycles.len()];
        for &t in &cycle.sequence {
            net.fire(&mut marking, t).unwrap();
            for (index, &tokens) in marking.as_slice().iter().enumerate() {
                assert!(tokens <= bounds[index]);
            }
        }
        assert_eq!(&marking, net.initial_marking());
    }
}

#[test]
fn coverability_and_boundedness_agree_on_closed_nets() {
    let mut b = NetBuilder::new("closed");
    let p1 = b.place("p1", 2);
    let t1 = b.transition("t1");
    let p2 = b.place("p2", 0);
    let t2 = b.transition("t2");
    b.arc_p_t(p1, t1, 1).unwrap();
    b.arc_t_p(t1, p2, 1).unwrap();
    b.arc_p_t(p2, t2, 1).unwrap();
    b.arc_t_p(t2, p1, 1).unwrap();
    let net = b.build().unwrap();
    let coverability = CoverabilityGraph::build(&net, CoverabilityOptions::default());
    assert!(coverability.is_bounded());
    match check_boundedness(&net, BoundednessOptions::default()) {
        Boundedness::Bounded { k } => assert_eq!(k, 2),
        other => panic!("expected bounded, got {other:?}"),
    }
    assert_eq!(
        find_deadlock(&net, ReachabilityOptions::default()),
        DeadlockReport::DeadlockFree
    );
}

#[test]
fn siphon_analysis_explains_figure7_style_starvation() {
    // Restrict figure 7 to the branch an adversary would always take (the R1 component):
    // the places that feed the starving synchronisation form an unmarked siphon.
    let net = gallery::figure7();
    let allocations =
        fcpn::qss::enumerate_allocations(&net, fcpn::qss::AllocationOptions::default()).unwrap();
    let t2 = net.transition_by_name("t2").unwrap();
    let a1 = allocations.into_iter().find(|a| a.allocates(t2)).unwrap();
    let reduction = fcpn::qss::TReduction::compute(&net, a1).unwrap();
    let analysis = SiphonAnalysis::of(&reduction.net);
    let initial = reduction.net.initial_marking();
    // The kept-as-source place (p5) can never be refilled: it appears in an unmarked
    // siphon of the component, which is the structural reason t6 eventually starves.
    assert!(!analysis.unmarked_siphons(initial).is_empty());
    assert!(!analysis.commoner_holds(initial));
}

#[test]
fn emptied_ring_fails_commoner_and_deadlocks() {
    let mut b = NetBuilder::new("ring");
    let p1 = b.place("p1", 0);
    let t1 = b.transition("t1");
    let p2 = b.place("p2", 0);
    let t2 = b.transition("t2");
    b.arc_p_t(p1, t1, 1).unwrap();
    b.arc_t_p(t1, p2, 1).unwrap();
    b.arc_p_t(p2, t2, 1).unwrap();
    b.arc_t_p(t2, p1, 1).unwrap();
    let net = b.build().unwrap();
    let analysis = SiphonAnalysis::of(&net);
    assert!(!analysis.commoner_holds(&Marking::zeroes(2)));
    match find_deadlock(&net, ReachabilityOptions::default()) {
        DeadlockReport::Deadlock { trace, .. } => assert!(trace.is_empty()),
        other => panic!("expected immediate deadlock, got {other:?}"),
    }
}
