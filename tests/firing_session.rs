//! Equivalence and edge-case tests for the firing fast path
//! ([`fcpn::petri::statespace::FiringSession`]).
//!
//! The session's contract is the one PR 1/2 established for the exploration engine,
//! transplanted to sequential trace execution: whatever the token width, however many
//! times the session widens, checkpoints or rolls back, every observable — markings,
//! enabled sets, firing errors, token totals — must be *bit-for-bit identical* to the
//! seed token game (`PetriNet::fire` on an owned `Marking` plus
//! `enabled_transitions`). The random-trace loop here drives both sides in lockstep
//! from seeded PRNGs, and the RTOS-level test pins the session-backed functional
//! simulator against the retained naive simulator on random partitionings.

use fcpn::codegen::RoundRobinResolver;
use fcpn::petri::statespace::{FiringSession, TokenWidth};
use fcpn::petri::{gallery, Marking, NetBuilder, PetriNet, TransitionId};
use fcpn::rtos::{
    simulate_functional_partition, simulate_functional_partition_naive, CostModel, FunctionalTask,
    Workload,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

/// A random connected net mixing sources, choices, weighted arcs and sinks — the same
/// family `tests/properties.rs` uses to pin the explorer, reused here to pin the session.
fn random_net(rng: &mut StdRng) -> PetriNet {
    let mut b = NetBuilder::new("random-session-net");
    let places = rng.gen_range(2..6usize);
    let transitions = rng.gen_range(2..7usize);
    let place_ids: Vec<_> = (0..places)
        .map(|i| b.place(format!("p{i}"), rng.gen_range(0..3u64)))
        .collect();
    let transition_ids: Vec<_> = (0..transitions)
        .map(|i| b.transition(format!("t{i}")))
        .collect();
    for (i, &t) in transition_ids.iter().enumerate() {
        // Every transition gets 0..=2 inputs and 0..=2 outputs; index arithmetic keeps
        // the construction deterministic per seed.
        for _ in 0..rng.gen_range(0..3usize) {
            let p = place_ids[rng.gen_range(0..places)];
            let w = rng.gen_range(1..3u64);
            let _ = b.arc_p_t(p, t, w);
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let p = place_ids[rng.gen_range(0..places)];
            let w = rng.gen_range(1..3u64);
            let _ = b.arc_t_p(t, p, w);
        }
        // Make sure at least one transition is a source so traces never die instantly.
        if i == 0 {
            let p = place_ids[rng.gen_range(0..places)];
            let _ = b.arc_t_p(t, p, 1);
        }
    }
    b.build().expect("random net builds")
}

/// Drives a session and the safe token game in lockstep for `steps` steps, asserting
/// every observable agrees; returns the number of firings that actually happened.
fn lockstep_trace(
    net: &PetriNet,
    session: &mut FiringSession,
    marking: &mut Marking,
    rng: &mut StdRng,
    steps: usize,
) -> usize {
    let mut fired = 0;
    for _ in 0..steps {
        let safe_enabled = net.enabled_transitions(marking);
        assert_eq!(
            session.enabled_transitions(),
            safe_enabled,
            "enabled sets diverged on {}",
            net.name()
        );
        if safe_enabled.is_empty() {
            assert!(session.is_deadlocked());
            break;
        }
        // Mostly fire an enabled transition; sometimes attempt a disabled one and check
        // both sides reject it identically, leaving the marking untouched.
        if rng.gen_bool(0.85) {
            let t = safe_enabled[rng.gen_range(0..safe_enabled.len())];
            net.fire(marking, t).expect("enabled transition fires");
            session.fire(t).expect("enabled transition fires");
            fired += 1;
        } else {
            let t = TransitionId::new(rng.gen_range(0..net.transition_count()));
            let safe = net.fire(marking, t);
            let fast = session.fire(t);
            assert_eq!(safe.is_ok(), fast.is_ok());
            if safe.is_ok() {
                fired += 1;
            }
        }
        assert_eq!(session.marking(), *marking);
        assert_eq!(session.total_tokens(), marking.total_tokens());
    }
    fired
}

#[test]
fn random_traces_match_naive_token_game_on_gallery_nets() {
    for net in [
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::marked_ring(6, 3),
        gallery::cycle_bank(6),
        gallery::choice_chain(4),
    ] {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed * 1000 + 7);
            let mut session = FiringSession::new(&net);
            let mut marking = net.initial_marking().clone();
            lockstep_trace(&net, &mut session, &mut marking, &mut rng, 200);
        }
    }
}

#[test]
fn random_traces_match_naive_token_game_on_random_nets() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_net(&mut rng);
        let mut session = FiringSession::new(&net);
        let mut marking = net.initial_marking().clone();
        lockstep_trace(&net, &mut session, &mut marking, &mut rng, 300);
    }
}

#[test]
fn undo_rewinds_random_traces_exactly() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let net = random_net(&mut rng);
        let mut session = FiringSession::new(&net);
        let mut marking = net.initial_marking().clone();
        let fired = lockstep_trace(&net, &mut session, &mut marking, &mut rng, 60);
        assert_eq!(session.trace_len(), fired);
        // Unwind the whole trace: the session must land exactly on the start.
        while session.undo().is_some() {}
        assert_eq!(session.marking(), net.initial_marking().clone());
        assert_eq!(session.total_tokens(), net.initial_marking().total_tokens());
    }
}

#[test]
fn deadlocked_session_reports_zero_enabled() {
    // A linear one-shot pipeline: after both firings nothing is enabled.
    let mut b = NetBuilder::new("pipeline");
    let p0 = b.place("p0", 1);
    let t0 = b.transition("t0");
    let p1 = b.place("p1", 0);
    let t1 = b.transition("t1");
    b.arc_p_t(p0, t0, 1).unwrap();
    b.arc_t_p(t0, p1, 1).unwrap();
    b.arc_p_t(p1, t1, 1).unwrap();
    let net = b.build().unwrap();
    let mut session = FiringSession::new(&net);
    session
        .fire_sequence(&[
            net.transition_by_name("t0").unwrap(),
            net.transition_by_name("t1").unwrap(),
        ])
        .unwrap();
    assert!(session.is_deadlocked());
    assert!(session.enabled_transitions().is_empty());
    assert_eq!(session.total_tokens(), 0);
    // Firing anything from the dead marking fails and changes nothing.
    let t0 = net.transition_by_name("t0").unwrap();
    assert!(session.fire(t0).is_err());
    assert_eq!(session.marking(), Marking::zeroes(2));
}

#[test]
fn checkpoint_rollback_across_the_u8_to_u16_width_boundary() {
    // A source transition pumps `p`; a drain consumes 2 at a time. The session starts
    // in the u8 arena, checkpoints below 255 tokens, is forced into u16 by saturation,
    // and must roll back across the widening without losing a token.
    let mut b = NetBuilder::new("pump-drain");
    let pump = b.transition("pump");
    let p = b.place("p", 0);
    let drain = b.transition("drain");
    b.arc_t_p(pump, p, 1).unwrap();
    b.arc_p_t(p, drain, 2).unwrap();
    let net = b.build().unwrap();
    let p = net.place_by_name("p").unwrap();
    let pump = net.transition_by_name("pump").unwrap();
    let drain = net.transition_by_name("drain").unwrap();

    let mut session = FiringSession::new(&net);
    assert_eq!(session.token_width(), TokenWidth::U8);

    for _ in 0..200 {
        session.fire(pump).unwrap();
    }
    let at_200 = session.checkpoint();
    assert_eq!(session.token_width(), TokenWidth::U8, "200 tokens fit u8");

    // Push past 255: the u8 arena saturates and the session widens to u16 mid-trace.
    for _ in 0..100 {
        session.fire(pump).unwrap();
    }
    assert_eq!(session.token_width(), TokenWidth::U16);
    assert_eq!(session.tokens_of(p), 300);
    let at_300 = session.checkpoint();

    // Rolling back to a checkpoint taken *before* the widening restores the exact
    // marking (the arena was widened in place, value-preserving).
    session.rollback(at_200);
    assert_eq!(session.tokens_of(p), 200);
    assert_eq!(session.total_tokens(), 200);
    assert_eq!(
        session.token_width(),
        TokenWidth::U16,
        "widths never narrow"
    );

    // The restored state is live: drain below the u8 range again and re-checkpoint.
    for _ in 0..100 {
        session.fire(drain).unwrap();
    }
    assert_eq!(session.tokens_of(p), 0);
    // Checkpoints taken at u8 width are still found by value after widening.
    assert_eq!(session.checkpoint_marking(at_200).tokens(p), 200);
    assert_eq!(session.checkpoint_marking(at_300).tokens(p), 300);
    session.rollback(at_300);
    assert_eq!(session.tokens_of(p), 300);

    // And the whole journey matched what the safe token game would have computed.
    let mut marking = net.initial_marking().clone();
    for _ in 0..300 {
        net.fire(&mut marking, pump).unwrap();
    }
    assert_eq!(session.marking(), marking);
}

#[test]
fn functional_simulator_fast_path_matches_naive_on_random_partitions() {
    // RTOS-level equivalence: random two-task partitionings of figure5 under a mixed
    // workload must produce identical SimReports on the session-backed and the
    // marking-by-marking simulators (same resolver seed on both sides).
    let net = gallery::figure5();
    let t1 = net.transition_by_name("t1").unwrap();
    let t8 = net.transition_by_name("t8").unwrap();
    let workload = Workload::periodic(t1, 9, 30, 0).merge(Workload::periodic(t8, 21, 12, 4));
    let cost = CostModel::default();
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for t in net.transitions() {
            if rng.gen_bool(0.5) {
                a.push(t);
            } else {
                b.push(t);
            }
        }
        // Both halves must exist for a meaningful partition; sources must be owned.
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let tasks = vec![
            FunctionalTask {
                name: "a".into(),
                transitions: a,
            },
            FunctionalTask {
                name: "b".into(),
                transitions: b,
            },
        ];
        let mut fast_resolver = RoundRobinResolver::default();
        let fast =
            simulate_functional_partition(&net, &tasks, &cost, &workload, &mut fast_resolver);
        let mut naive_resolver = RoundRobinResolver::default();
        let naive = simulate_functional_partition_naive(
            &net,
            &tasks,
            &cost,
            &workload,
            &mut naive_resolver,
        );
        match (fast, naive) {
            (Ok(f), Ok(n)) => assert_eq!(f, n, "reports diverged at seed {seed}"),
            (Err(f), Err(n)) => assert_eq!(f, n, "errors diverged at seed {seed}"),
            (f, n) => panic!("outcomes diverged at seed {seed}: {f:?} vs {n:?}"),
        }
    }
}
