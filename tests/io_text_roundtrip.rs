//! Property tests pinning `parse_net(to_text(net))` identity on gallery and seeded
//! random nets.
//!
//! The `fcpn-serve` daemon makes the textual net format an **untrusted input surface**:
//! every request body goes through `parse_net`, and cached responses are keyed by the
//! fingerprint of whatever it produced. These tests pin (1) that serialisation is a
//! lossless inverse of parsing — structure, weights, marking, names and fingerprints all
//! survive the round trip, including isolated nodes and weighted arcs — and (2) that
//! malformed input fails with a typed parse error carrying the right line number, never
//! a panic.

use fcpn::petri::io::{parse_net, to_text};
use fcpn::petri::{gallery, net_fingerprint, NetBuilder, PetriError, PetriNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Structural equality after a round trip: ids are assigned in declaration order and
/// `to_text` writes nodes in index order, so everything must match index for index.
fn assert_roundtrip_identity(net: &PetriNet, context: &str) {
    let text = to_text(net);
    let again = parse_net(&text).unwrap_or_else(|e| panic!("{context}: reparse failed: {e}"));
    assert_eq!(net.name(), again.name(), "{context}: name");
    assert_eq!(net.place_count(), again.place_count(), "{context}: places");
    assert_eq!(
        net.transition_count(),
        again.transition_count(),
        "{context}: transitions"
    );
    assert_eq!(net.arc_count(), again.arc_count(), "{context}: arcs");
    assert_eq!(
        net.initial_marking(),
        again.initial_marking(),
        "{context}: marking"
    );
    for p in net.places() {
        assert_eq!(net.place_name(p), again.place_name(p), "{context}: {p:?}");
    }
    for t in net.transitions() {
        assert_eq!(
            net.transition_name(t),
            again.transition_name(t),
            "{context}: {t:?}"
        );
        assert_eq!(net.inputs(t), again.inputs(t), "{context}: inputs of {t:?}");
        assert_eq!(
            net.outputs(t),
            again.outputs(t),
            "{context}: outputs of {t:?}"
        );
    }
    // The fingerprint folds counts, marking, weighted arcs and names — one equality
    // that catches any drift the field-by-field checks might miss, and exactly the key
    // the daemon's result cache would use for both copies.
    assert_eq!(
        net_fingerprint(net),
        net_fingerprint(&again),
        "{context}: fingerprint"
    );
    // And serialisation is deterministic: a second trip emits identical text.
    assert_eq!(text, to_text(&again), "{context}: text not a fixpoint");
}

/// A random net: places with random initial tokens, transitions, weighted arcs in both
/// directions, and (often) isolated places/transitions with no arcs at all.
fn random_net(rng: &mut StdRng, seed: u64) -> PetriNet {
    let mut b = NetBuilder::new(format!("random-{seed}"));
    let place_count = rng.gen_range(1..10usize);
    let transition_count = rng.gen_range(1..10usize);
    let places: Vec<_> = (0..place_count)
        .map(|i| b.place(format!("p{i}"), rng.gen_range(0..50u64)))
        .collect();
    let transitions: Vec<_> = (0..transition_count)
        .map(|i| b.transition(format!("t{i}")))
        .collect();
    // Random weighted arcs; duplicates are skipped (the builder rejects them), so some
    // nodes stay isolated — the round trip must keep them.
    let mut used = std::collections::HashSet::new();
    for _ in 0..rng.gen_range(0..18usize) {
        let p = places[rng.gen_range(0..places.len())];
        let t = transitions[rng.gen_range(0..transitions.len())];
        let weight = rng.gen_range(1..9u64);
        if rng.gen_bool(0.5) {
            if used.insert((p.index(), t.index(), true)) {
                b.arc_p_t(p, t, weight).expect("fresh arc");
            }
        } else if used.insert((p.index(), t.index(), false)) {
            b.arc_t_p(t, p, weight).expect("fresh arc");
        }
    }
    b.build().expect("random net is valid")
}

#[test]
fn gallery_nets_roundtrip_exactly() {
    let nets = [
        gallery::figure1a(),
        gallery::figure1b(),
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
        gallery::choice_chain(6),
        gallery::marked_ring(9, 3),
        gallery::cycle_bank(5),
    ];
    for net in &nets {
        assert_roundtrip_identity(net, net.name());
    }
}

#[test]
fn seeded_random_nets_roundtrip_exactly() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xF0C5_0000 + seed);
        let net = random_net(&mut rng, seed);
        assert_roundtrip_identity(&net, &format!("seed {seed}"));
    }
}

#[test]
fn isolated_nodes_survive_the_roundtrip() {
    let mut b = NetBuilder::new("isolated");
    b.place("lonely_place", 7);
    b.transition("lonely_transition");
    let p = b.place("connected", 1);
    let t = b.transition("consumer");
    b.arc_p_t(p, t, 3).unwrap();
    let net = b.build().unwrap();
    assert_roundtrip_identity(&net, "isolated");
    let again = parse_net(&to_text(&net)).unwrap();
    assert_eq!(
        again.initial_marking().tokens(fcpn::petri::PlaceId::new(0)),
        7
    );
    assert_eq!(again.arc_count(), 1);
}

#[test]
fn malformed_inputs_fail_with_the_right_line() {
    let cases: [(&str, usize); 7] = [
        ("net x\nbogus keyword", 2),
        ("net x\nplace", 2),
        ("net x\ntransition", 2),
        ("net x\nplace p\narc p", 3),
        ("net x\nplace p\ntransition t\narc p t", 4),
        ("net x\nplace p\ntransition t\narc p -> t zero", 4),
        ("net x\nplace a\nplace b\narc a -> b", 4),
    ];
    for (input, expected_line) in cases {
        match parse_net(input) {
            Err(PetriError::Parse { line, .. }) => {
                assert_eq!(line, expected_line, "input {input:?}")
            }
            other => panic!("input {input:?} produced {other:?}"),
        }
    }
    // References to undeclared nodes carry the arc's line.
    match parse_net("net x\nplace p\narc p -> ghost") {
        Err(PetriError::Parse { line, message }) => {
            assert_eq!(line, 3);
            assert!(message.contains("ghost"));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn builder_errors_propagate_through_the_parser() {
    // Not parse errors: structurally invalid declarations hit the builder's own typed
    // errors and must come back as such, not as panics.
    assert!(matches!(
        parse_net("net x\nplace dup\nplace dup"),
        Err(PetriError::DuplicateName(_))
    ));
    assert!(matches!(
        parse_net("net x\nplace p\ntransition t\narc p -> t 0"),
        Err(PetriError::ZeroWeightArc)
    ));
    assert!(matches!(
        parse_net("net x\nplace p\ntransition t\narc p -> t\narc p -> t 2"),
        Err(PetriError::DuplicateArc(_))
    ));
}

#[test]
fn token_counts_and_weights_hit_their_extremes() {
    // Tokens go up to the full u64 range; arc weights are capped at i64::MAX by the
    // engine's signed delta rows.
    let mut b = NetBuilder::new("extremes");
    let p = b.place("p", u64::MAX);
    let t = b.transition("t");
    b.arc_p_t(p, t, i64::MAX as u64).unwrap();
    let net = b.build().unwrap();
    assert_roundtrip_identity(&net, "extremes");
}
