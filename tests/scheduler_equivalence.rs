//! Seeded equivalence suite for the zero-allocation scheduling pipeline.
//!
//! Every layer of the rebuilt pipeline retains its seed implementation as an oracle,
//! and this suite pins them against each other on the paper's gallery nets and on
//! randomly generated nets (seeded PRNG, reproducible from the failing seed) that
//! include source transitions, sink transitions and weighted (multirate) arcs:
//!
//! * [`InvariantAnalysis::of_matrix`] (sparse fraction-free Farkas) versus
//!   [`InvariantAnalysis::of_matrix_naive`] (the seed's dense rational-free
//!   elimination) — identical T- and P-semiflow bases;
//! * [`TReduction::compute_in`] on a reused [`ReductionWorkspace`] (and the gray-code
//!   allocation sweep feeding it) versus [`TReduction::compute`] — identical reduced
//!   nets, maps and traces;
//! * [`quasi_static_schedule`] at 1, 2 and 4 threads versus
//!   [`quasi_static_schedule_naive`] (the retained seed pipeline) — bit-for-bit
//!   identical outcomes: verdicts, cycle order, diagnostics order.

use fcpn::petri::analysis::{IncidenceMatrix, InvariantAnalysis};
use fcpn::petri::{gallery, NetBuilder, PetriNet, PlaceId, TransitionId};
use fcpn::qss::{
    allocation_iter, allocation_iter_gray, check_component, quasi_static_schedule,
    quasi_static_schedule_naive, AllocationOptions, ComponentCache, ComponentChecker, QssOptions,
    ReductionWorkspace, TAllocation, TReduction,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary (not necessarily free-choice) net with weighted arcs and, frequently,
/// source/sink transitions and places — the invariant analysis has no structural
/// preconditions, so the Farkas equivalence is checked on the widest class.
fn random_net(rng: &mut StdRng) -> PetriNet {
    let places = rng.gen_range(1..7usize);
    let transitions = rng.gen_range(1..7usize);
    let mut b = NetBuilder::new("fuzz");
    let ps: Vec<PlaceId> = (0..places)
        .map(|i| b.place(format!("p{i}"), rng.gen_range(0..3u64)))
        .collect();
    let ts: Vec<TransitionId> = (0..transitions)
        .map(|i| b.transition(format!("t{i}")))
        .collect();
    for &t in &ts {
        for &p in &ps {
            // ~35% chance of each arc direction, weights 1–3 (multirate).
            if rng.gen_bool(0.35) {
                b.arc_p_t(p, t, rng.gen_range(1..4u64)).expect("arc");
            }
            if rng.gen_bool(0.35) {
                b.arc_t_p(t, p, rng.gen_range(1..4u64)).expect("arc");
            }
        }
    }
    b.build().expect("fuzz net is structurally valid")
}

/// A random free-choice net: a source transition feeding a tree of choices whose
/// branches produce with random weights into unit-rate drains (sink transitions), with
/// an optional marked self-loop stage so some initial tokens exist. Some of these are
/// schedulable and some are not — both verdicts must round-trip identically through
/// every pipeline.
fn random_free_choice(rng: &mut StdRng) -> PetriNet {
    let depth = rng.gen_range(1..4usize);
    let mut b = NetBuilder::new("random-fc");
    let source = b.transition("src");
    let root = b.place("root", rng.gen_range(0..2u64));
    b.arc_t_p(source, root, 1).expect("arc");
    let mut frontier: Vec<PlaceId> = vec![root];
    let mut counter = 0usize;
    for level in 0..depth {
        let branches = rng.gen_range(2..4usize);
        let weight = rng.gen_range(1..4u64);
        let mut next = Vec::new();
        for place in frontier {
            for branch in 0..branches {
                counter += 1;
                let t = b.transition(format!("t{level}_{branch}_{counter}"));
                b.arc_p_t(place, t, 1).expect("arc");
                let out = b.place(format!("p{level}_{branch}_{counter}"), 0);
                b.arc_t_p(t, out, weight).expect("arc");
                let drain = b.transition(format!("d{level}_{branch}_{counter}"));
                b.arc_p_t(out, drain, 1).expect("arc");
                if level + 1 < depth && rng.gen_bool(0.5) {
                    let cont = b.place(format!("c{level}_{branch}_{counter}"), 0);
                    b.arc_t_p(drain, cont, 1).expect("arc");
                    next.push(cont);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    b.build().expect("random free-choice net is valid")
}

fn gallery_nets() -> Vec<PetriNet> {
    vec![
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
        gallery::choice_chain(5),
        gallery::marked_ring(6, 3),
        gallery::cycle_bank(5),
    ]
}

fn assert_invariants_equal(net: &PetriNet, label: &str) {
    let d = IncidenceMatrix::from_net(net);
    let sparse = InvariantAnalysis::of_matrix(&d);
    let naive = InvariantAnalysis::of_matrix_naive(&d);
    assert_eq!(
        sparse.t_semiflows, naive.t_semiflows,
        "{label}: T-semiflows"
    );
    assert_eq!(
        sparse.p_semiflows, naive.p_semiflows,
        "{label}: P-semiflows"
    );
    assert_eq!(sparse.complete, naive.complete, "{label}: completeness");
}

#[test]
fn sparse_farkas_matches_naive_on_gallery_nets() {
    for net in gallery_nets() {
        assert_invariants_equal(&net, net.name());
    }
}

#[test]
fn sparse_farkas_matches_naive_on_random_nets() {
    for seed in 0..160u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let net = random_net(&mut rng);
        assert_invariants_equal(&net, &format!("random net seed {seed}"));
    }
}

#[test]
fn sparse_farkas_matches_naive_on_random_free_choice_nets() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xFC ^ seed);
        let net = random_free_choice(&mut rng);
        assert_invariants_equal(&net, &format!("random fc seed {seed}"));
    }
}

/// Every allocation of `net`: the workspace reduction (with trace recording) must equal
/// the seed `TReduction::compute` — net, map and trace — and the gray sweep must visit
/// exactly the counting enumeration's allocation set, ranks included.
fn assert_reductions_equal(net: &PetriNet, label: &str) {
    let counting: Vec<TAllocation> = allocation_iter(net, AllocationOptions::default())
        .expect("free-choice input")
        .collect();
    let mut ws = ReductionWorkspace::new();
    for allocation in &counting {
        let seed_reduction = TReduction::compute(net, allocation.clone()).expect("reduce");
        let fast_reduction =
            TReduction::compute_in(net, allocation.clone(), &mut ws, true).expect("reduce");
        assert_eq!(seed_reduction.net, fast_reduction.net, "{label}: net");
        assert_eq!(seed_reduction.map, fast_reduction.map, "{label}: map");
        assert_eq!(seed_reduction.trace, fast_reduction.trace, "{label}: trace");
        assert_eq!(
            seed_reduction.allocation, fast_reduction.allocation,
            "{label}"
        );
    }
    // Gray sweep coverage: the ranks are a permutation of 0..total and index the
    // counting enumeration exactly.
    let mut seen = vec![false; counting.len()];
    for (rank, allocation) in
        allocation_iter_gray(net, AllocationOptions::default()).expect("free-choice input")
    {
        let rank = rank as usize;
        assert!(!seen[rank], "{label}: rank {rank} visited twice");
        seen[rank] = true;
        assert_eq!(&allocation, &counting[rank], "{label}: rank {rank}");
    }
    assert!(
        seen.into_iter().all(|s| s),
        "{label}: gray sweep incomplete"
    );
}

#[test]
fn workspace_reductions_match_seed_on_gallery_nets() {
    for net in [
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
        gallery::choice_chain(5),
    ] {
        assert_reductions_equal(&net, net.name());
    }
}

#[test]
fn workspace_reductions_match_seed_on_random_free_choice_nets() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xBEE5 ^ seed);
        let net = random_free_choice(&mut rng);
        assert_reductions_equal(&net, &format!("random fc seed {seed}"));
    }
}

#[test]
fn checker_verdicts_match_seed_on_random_free_choice_nets() {
    // The workspace-driven checker (fingerprint cache, no subnet on hits) against the
    // per-reduction oracle, with one shared cache across each net's whole sweep.
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let net = random_free_choice(&mut rng);
        let mut checker = ComponentChecker::new(&net);
        let mut ws = ReductionWorkspace::new();
        let mut cache = ComponentCache::default();
        for allocation in allocation_iter(&net, AllocationOptions::default()).expect("fc") {
            let reduction = TReduction::compute(&net, allocation.clone()).expect("reduce");
            let reference = check_component(&net, &reduction);
            let fast = checker.check(&allocation, &mut ws, &mut cache);
            assert_eq!(reference, fast, "seed {seed}");
        }
    }
}

/// The full pipeline matrix on one net: the seed pipeline versus the production one at
/// 1, 2 and 4 threads, cached and uncached — all five outcomes bit-for-bit identical.
fn assert_schedules_equal(net: &PetriNet, label: &str) {
    let naive = quasi_static_schedule_naive(net, &QssOptions::default()).expect(label);
    for threads in [1usize, 2, 4] {
        for reuse_component_cache in [true, false] {
            let options = QssOptions {
                threads,
                reuse_component_cache,
                ..QssOptions::default()
            };
            let fast = quasi_static_schedule(net, &options).expect(label);
            assert_eq!(
                naive, fast,
                "{label}: threads={threads} cache={reuse_component_cache}"
            );
        }
    }
    // An armed but never-fired cancellation token must be invisible in the output:
    // the gate only *polls* it, so the result stays bit-identical to the default run.
    for threads in [1usize, 4] {
        let armed = QssOptions {
            threads,
            cancel: fcpn::petri::cancel::CancelToken::new(),
            ..QssOptions::default()
        };
        let watched = quasi_static_schedule(net, &armed).expect(label);
        assert_eq!(
            naive, watched,
            "{label}: armed-but-idle cancel token changed the outcome (threads={threads})"
        );
    }
    // Same contract for the memory budget: armed-but-unreached charges only count,
    // they never steer, so a roomy budget leaves the outcome bit-identical too.
    for threads in [1usize, 2, 4] {
        let budgeted = QssOptions {
            threads,
            memory: fcpn::petri::MemoryBudget::with_limit(1 << 40),
            ..QssOptions::default()
        };
        let governed = quasi_static_schedule(net, &budgeted).expect(label);
        assert_eq!(
            naive, governed,
            "{label}: armed-but-unreached memory budget changed the outcome (threads={threads})"
        );
    }
}

#[test]
fn scheduler_outcome_is_bit_identical_across_pipelines_and_threads_on_gallery() {
    for net in [
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
        gallery::choice_chain(6),
    ] {
        assert_schedules_equal(&net, net.name());
    }
}

#[test]
fn scheduler_outcome_is_bit_identical_on_random_free_choice_nets() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD1CE ^ seed);
        let net = random_free_choice(&mut rng);
        assert_schedules_equal(&net, &format!("random fc seed {seed}"));
    }
}

#[test]
fn scheduler_exhaustion_is_deterministic_across_thread_counts() {
    // The scheduler's charges are thread-count-invariant (one workspace charge up
    // front, then retained results in seed order after the merge), so the same net
    // under the same too-small budget must fail with the *same* typed error — same
    // stage, same requested bytes — whether the sweep ran sequential or sharded.
    for (net, limit) in [
        (gallery::choice_chain(6), 256u64),
        (gallery::figure5(), 128u64),
    ] {
        let label = net.name().to_string();
        let mut errors = Vec::new();
        for threads in [1usize, 2, 4] {
            let options = QssOptions {
                threads,
                memory: fcpn::petri::MemoryBudget::with_limit(limit),
                ..QssOptions::default()
            };
            match quasi_static_schedule(&net, &options) {
                Err(fcpn::qss::QssError::ResourceExhausted(e)) => errors.push(e),
                other => panic!("{label}: expected exhaustion at threads={threads}, got {other:?}"),
            }
        }
        assert!(
            errors.windows(2).all(|w| w[0] == w[1]),
            "{label}: exhaustion error differed across thread counts: {errors:?}"
        );
    }
}

#[test]
fn scheduler_outcome_is_bit_identical_on_the_atm_model() {
    // The paper's case study end to end: 11 choices (2048 allocations) on the small
    // model keeps the debug-mode runtime sane while exercising a real multi-choice
    // merge across thread counts.
    let model = fcpn::atm::AtmModel::build(fcpn::atm::AtmConfig::small()).expect("atm model");
    assert_schedules_equal(&model.net, "atm small");
}
