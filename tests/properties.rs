//! Property-based tests (proptest) over randomly generated dataflow graphs, free-choice
//! nets and workloads. These check the invariants the paper's constructions rely on:
//! repetition vectors satisfy the balance equations, valid schedules are sets of finite
//! complete cycles, generated code never drives a software buffer negative, and the
//! number of cycles equals the number of choice resolutions.

use fcpn::codegen::{synthesize, Interpreter, SynthesisOptions};
use fcpn::petri::analysis::{IncidenceMatrix, InvariantAnalysis};
use fcpn::petri::{NetBuilder, PetriNet, PlaceId, TransitionId};
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome};
use fcpn::sdf::{FiringPolicy, SdfGraph};
use proptest::prelude::*;

/// Strategy: a random multirate SDF chain (the Figure 2 family).
fn sdf_chain() -> impl Strategy<Value = SdfGraph> {
    (2usize..7, proptest::collection::vec((1u64..5, 1u64..5), 1..6)).prop_map(
        |(actors, rates)| {
            let mut graph = SdfGraph::new("random-chain");
            let ids: Vec<_> = (0..actors).map(|i| graph.actor(format!("a{i}"))).collect();
            for (i, window) in ids.windows(2).enumerate() {
                let (produce, consume) = rates[i % rates.len()];
                graph
                    .channel(window[0], produce, window[1], consume, 0)
                    .expect("valid channel");
            }
            graph
        },
    )
}

/// Strategy: a random schedulable free-choice net built as a tree of choices rooted at a
/// single source, where every branch drains into its own sink (the Figure 3a family),
/// with an optional weighted (multirate) tail on each branch (the Figure 4 family).
fn free_choice_tree() -> impl Strategy<Value = PetriNet> {
    (
        1usize..3,
        proptest::collection::vec((2usize..4, 1u64..4), 1..4),
    )
        .prop_map(|(depth, shape)| {
            let mut b = NetBuilder::new("random-fc-tree");
            let source = b.transition("src");
            let root = b.place("root", 0);
            b.arc_t_p(source, root, 1).expect("arc");
            let mut frontier: Vec<PlaceId> = vec![root];
            let mut counter = 0usize;
            for level in 0..depth {
                let (branches, weight) = shape[level % shape.len()];
                let mut next = Vec::new();
                for place in frontier {
                    for branch in 0..branches {
                        counter += 1;
                        let t = b.transition(format!("t{level}_{branch}_{counter}"));
                        b.arc_p_t(place, t, 1).expect("arc");
                        let out = b.place(format!("p{level}_{branch}_{counter}"), 0);
                        // Weighted production followed by a unit-rate drain keeps the
                        // branch consistent while exercising multirate code paths.
                        b.arc_t_p(t, out, weight).expect("arc");
                        let drain = b.transition(format!("d{level}_{branch}_{counter}"));
                        b.arc_p_t(out, drain, 1).expect("arc");
                        if level + 1 < depth {
                            let cont = b.place(format!("c{level}_{branch}_{counter}"), 0);
                            b.arc_t_p(drain, cont, 1).expect("arc");
                            next.push(cont);
                        }
                    }
                }
                frontier = next;
            }
            b.build().expect("random tree is a valid net")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn repetition_vectors_satisfy_balance_equations(graph in sdf_chain()) {
        let repetition = graph.repetition_vector().expect("chains are always consistent");
        prop_assert!(graph.is_repetition_vector(&repetition));
        // Minimality: dividing by any common factor > 1 must break integrality.
        let gcd = repetition.iter().copied().fold(0, fcpn::petri::analysis::gcd_u64);
        prop_assert_eq!(gcd, 1);
    }

    #[test]
    fn sdf_schedules_are_finite_complete_cycles(graph in sdf_chain()) {
        let schedule = graph.static_schedule(FiringPolicy::Eager).expect("chains schedule");
        let net = graph.to_petri_net().expect("conversion");
        prop_assert!(net.is_finite_complete_cycle(net.initial_marking(), &schedule.sequence));
        // The eager and demand-driven policies realise the same firing counts.
        let demand = graph.static_schedule(FiringPolicy::DemandDriven).expect("schedules");
        prop_assert_eq!(&schedule.repetition, &demand.repetition);
        // Demand-driven scheduling never needs more total buffering than eager bursts.
        prop_assert!(demand.total_buffer_tokens() <= schedule.total_buffer_tokens());
    }

    #[test]
    fn sdf_invariants_match_farkas_analysis(graph in sdf_chain()) {
        let net = graph.to_petri_net().expect("conversion");
        let repetition = graph.repetition_vector().expect("consistent");
        let matrix = IncidenceMatrix::from_net(&net);
        prop_assert!(matrix.is_t_invariant(&repetition));
        let analysis = InvariantAnalysis::of(&net);
        prop_assert!(analysis.is_consistent(net.transition_count()));
    }

    #[test]
    fn free_choice_trees_are_schedulable_with_one_cycle_per_resolution(net in free_choice_tree()) {
        let outcome = quasi_static_schedule(&net, &QssOptions::default()).expect("fc input");
        let QssOutcome::Schedulable(schedule) = outcome else {
            return Err(TestCaseError::fail("tree nets must be schedulable"));
        };
        // One finite complete cycle per combination of choice resolutions.
        let expected: usize = net
            .choice_places()
            .iter()
            .map(|&p| net.consumers(p).len())
            .product();
        prop_assert_eq!(schedule.cycle_count(), expected.max(1));
        for cycle in &schedule.cycles {
            prop_assert!(net.is_finite_complete_cycle(net.initial_marking(), &cycle.sequence));
            // Every cycle contains the source exactly once (single-rate input).
            let source = net.source_transitions()[0];
            prop_assert_eq!(cycle.counts[source.index()], 1);
        }
    }

    #[test]
    fn generated_code_keeps_counters_bounded(
        net in free_choice_tree(),
        decisions in proptest::collection::vec(0usize..4, 32),
    ) {
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).expect("synthesis");
        prop_assert_eq!(program.task_count(), 1);
        let mut interpreter = Interpreter::new(&program, &net);
        let mut cursor = 0usize;
        let mut resolver = |_: PlaceId, candidates: &[TransitionId]| {
            let pick = candidates[decisions[cursor % decisions.len()] % candidates.len()];
            cursor += 1;
            pick
        };
        for _ in 0..decisions.len() {
            interpreter.run_task(0, &mut resolver).expect("execution never underflows");
        }
        // Counters never exceed the schedule's buffer bound and end up non-negative.
        let bounds = schedule.buffer_bounds(&net);
        for (index, &peak) in interpreter.peak_counters().iter().enumerate() {
            prop_assert!(peak >= 0);
            if program.is_counter_place(PlaceId::new(index)) {
                prop_assert!(peak as u64 <= bounds[index].max(1));
            }
        }
    }

    #[test]
    fn generated_code_agrees_with_the_token_game(net in free_choice_tree()) {
        // Cross-validation of the two execution models: running the synthesised program
        // (fcpn-codegen interpreter) and playing the token game directly (fcpn-rtos
        // functional simulation with a single task) must perform exactly the same
        // computations when they see the same choice outcomes.
        use fcpn::codegen::FixedResolver;
        use fcpn::rtos::{
            simulate_functional_partition, simulate_program, CostModel, FunctionalTask, Workload,
        };
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).expect("synthesis");
        let source = net.source_transitions()[0];
        let workload = Workload::periodic(source, 3, 24, 0);
        let cost = CostModel::default();
        let mut qss_resolver = FixedResolver { arm: 0 };
        let qss = simulate_program(&program, &net, &cost, &workload, &mut qss_resolver)
            .expect("qss simulation");
        let all = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let mut functional_resolver = FixedResolver { arm: 0 };
        let functional =
            simulate_functional_partition(&net, &all, &cost, &workload, &mut functional_resolver)
                .expect("token-game simulation");
        prop_assert_eq!(qss.fire_counts, functional.fire_counts);
        prop_assert_eq!(qss.events_processed, functional.events_processed);
    }

    #[test]
    fn c_and_rust_backends_agree_on_structure(net in free_choice_tree()) {
        use fcpn::codegen::{emit_c, emit_rust, CEmitOptions, RustEmitOptions};
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).expect("synthesis");
        let c = emit_c(&program, &net, CEmitOptions::default());
        let rust = emit_rust(&program, &net, RustEmitOptions::default());
        // Both back ends contain every task and every counter place, and are brace-balanced.
        for task in &program.tasks {
            prop_assert!(c.contains(&task.name));
            prop_assert!(rust.contains(&task.name));
        }
        for &place in &program.counter_places {
            let c_counter = format!("count_{}", net.place_name(place));
            let rust_counter = format!("pub {}: u64", net.place_name(place));
            let c_has_counter = c.contains(&c_counter);
            let rust_has_counter = rust.contains(&rust_counter);
            prop_assert!(c_has_counter, "missing counter {} in C", c_counter);
            prop_assert!(rust_has_counter, "missing counter {} in Rust", rust_counter);
        }
        prop_assert_eq!(c.matches('{').count(), c.matches('}').count());
        prop_assert_eq!(rust.matches('{').count(), rust.matches('}').count());
    }

    #[test]
    fn schedule_buffer_bounds_dominate_every_cycle(net in free_choice_tree()) {
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let bounds = schedule.buffer_bounds(&net);
        for cycle in &schedule.cycles {
            let peaks = net
                .peak_tokens(net.initial_marking(), &cycle.sequence)
                .expect("cycle is fireable");
            for (bound, peak) in bounds.iter().zip(peaks.iter()) {
                prop_assert!(bound >= peak);
            }
        }
    }
}
