//! Property-based tests over randomly generated dataflow graphs, free-choice nets and
//! workloads, driven by a seeded PRNG (the offline `rand` shim) so every case is
//! reproducible from its seed. These check the invariants the paper's constructions rely
//! on: repetition vectors satisfy the balance equations, valid schedules are sets of
//! finite complete cycles, generated code never drives a software buffer negative, and
//! the number of cycles equals the number of choice resolutions.
//!
//! The second half holds the state-space engine to its contract: the arena-interned
//! explorer ([`StateSpace`]) must discover *exactly* the same markings, edges, frontier
//! and dead markings as the retained naive reference explorer
//! ([`ReachabilityGraph::explore_naive`]) on every gallery net and on randomly generated
//! nets, bounded or truncated.

use fcpn::codegen::{synthesize, Interpreter, SynthesisOptions};
use fcpn::petri::analysis::{
    IncidenceMatrix, InvariantAnalysis, ReachabilityGraph, ReachabilityOptions,
};
use fcpn::petri::statespace::{ExploreOptions, StateSpace, TokenWidth};
use fcpn::petri::{gallery, NetBuilder, PetriNet, PlaceId, TransitionId};
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome};
use fcpn::sdf::{FiringPolicy, SdfGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A random multirate SDF chain (the Figure 2 family).
fn sdf_chain(rng: &mut StdRng) -> SdfGraph {
    let actors = rng.gen_range(2..7usize);
    let rates: Vec<(u64, u64)> = (0..rng.gen_range(1..6usize))
        .map(|_| (rng.gen_range(1..5u64), rng.gen_range(1..5u64)))
        .collect();
    let mut graph = SdfGraph::new("random-chain");
    let ids: Vec<_> = (0..actors).map(|i| graph.actor(format!("a{i}"))).collect();
    for (i, window) in ids.windows(2).enumerate() {
        let (produce, consume) = rates[i % rates.len()];
        graph
            .channel(window[0], produce, window[1], consume, 0)
            .expect("valid channel");
    }
    graph
}

/// A random schedulable free-choice net built as a tree of choices rooted at a single
/// source, where every branch drains into its own sink (the Figure 3a family), with an
/// optional weighted (multirate) tail on each branch (the Figure 4 family).
fn free_choice_tree(rng: &mut StdRng) -> PetriNet {
    let depth = rng.gen_range(1..3usize);
    let shape: Vec<(usize, u64)> = (0..rng.gen_range(1..4usize))
        .map(|_| (rng.gen_range(2..4usize), rng.gen_range(1..4u64)))
        .collect();
    let mut b = NetBuilder::new("random-fc-tree");
    let source = b.transition("src");
    let root = b.place("root", 0);
    b.arc_t_p(source, root, 1).expect("arc");
    let mut frontier: Vec<PlaceId> = vec![root];
    let mut counter = 0usize;
    for level in 0..depth {
        let (branches, weight) = shape[level % shape.len()];
        let mut next = Vec::new();
        for place in frontier {
            for branch in 0..branches {
                counter += 1;
                let t = b.transition(format!("t{level}_{branch}_{counter}"));
                b.arc_p_t(place, t, 1).expect("arc");
                let out = b.place(format!("p{level}_{branch}_{counter}"), 0);
                // Weighted production followed by a unit-rate drain keeps the branch
                // consistent while exercising multirate code paths.
                b.arc_t_p(t, out, weight).expect("arc");
                let drain = b.transition(format!("d{level}_{branch}_{counter}"));
                b.arc_p_t(out, drain, 1).expect("arc");
                if level + 1 < depth {
                    let cont = b.place(format!("c{level}_{branch}_{counter}"), 0);
                    b.arc_t_p(drain, cont, 1).expect("arc");
                    next.push(cont);
                }
            }
        }
        frontier = next;
    }
    b.build().expect("random tree is a valid net")
}

#[test]
fn repetition_vectors_satisfy_balance_equations() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = sdf_chain(&mut rng);
        let repetition = graph
            .repetition_vector()
            .expect("chains are always consistent");
        assert!(graph.is_repetition_vector(&repetition), "seed {seed}");
        // Minimality: dividing by any common factor > 1 must break integrality.
        let gcd = repetition
            .iter()
            .copied()
            .fold(0, fcpn::petri::analysis::gcd_u64);
        assert_eq!(gcd, 1, "seed {seed}");
    }
}

#[test]
fn sdf_schedules_are_finite_complete_cycles() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = sdf_chain(&mut rng);
        let schedule = graph
            .static_schedule(FiringPolicy::Eager)
            .expect("chains schedule");
        let net = graph.to_petri_net().expect("conversion");
        assert!(
            net.is_finite_complete_cycle(net.initial_marking(), &schedule.sequence),
            "seed {seed}"
        );
        // The eager and demand-driven policies realise the same firing counts.
        let demand = graph
            .static_schedule(FiringPolicy::DemandDriven)
            .expect("schedules");
        assert_eq!(schedule.repetition, demand.repetition, "seed {seed}");
        // Demand-driven scheduling never needs more total buffering than eager bursts.
        assert!(
            demand.total_buffer_tokens() <= schedule.total_buffer_tokens(),
            "seed {seed}"
        );
    }
}

#[test]
fn sdf_invariants_match_farkas_analysis() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = sdf_chain(&mut rng);
        let net = graph.to_petri_net().expect("conversion");
        let repetition = graph.repetition_vector().expect("consistent");
        let matrix = IncidenceMatrix::from_net(&net);
        assert!(matrix.is_t_invariant(&repetition), "seed {seed}");
        let analysis = InvariantAnalysis::of(&net);
        assert!(
            analysis.is_consistent(net.transition_count()),
            "seed {seed}"
        );
    }
}

#[test]
fn free_choice_trees_are_schedulable_with_one_cycle_per_resolution() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = free_choice_tree(&mut rng);
        let outcome = quasi_static_schedule(&net, &QssOptions::default()).expect("fc input");
        let QssOutcome::Schedulable(schedule) = outcome else {
            panic!("tree nets must be schedulable (seed {seed})");
        };
        // One finite complete cycle per combination of choice resolutions.
        let expected: usize = net
            .choice_places()
            .iter()
            .map(|&p| net.consumers(p).len())
            .product();
        assert_eq!(schedule.cycle_count(), expected.max(1), "seed {seed}");
        for cycle in &schedule.cycles {
            assert!(
                net.is_finite_complete_cycle(net.initial_marking(), &cycle.sequence),
                "seed {seed}"
            );
            // Every cycle contains the source exactly once (single-rate input).
            let source = net.source_transitions()[0];
            assert_eq!(cycle.counts[source.index()], 1, "seed {seed}");
        }
    }
}

#[test]
fn generated_code_keeps_counters_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = free_choice_tree(&mut rng);
        let decisions: Vec<usize> = (0..32).map(|_| rng.gen_range(0..4usize)).collect();
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).expect("synthesis");
        assert_eq!(program.task_count(), 1, "seed {seed}");
        let mut interpreter = Interpreter::new(&program, &net);
        let mut cursor = 0usize;
        let mut resolver = |_: PlaceId, candidates: &[TransitionId]| {
            let pick = candidates[decisions[cursor % decisions.len()] % candidates.len()];
            cursor += 1;
            pick
        };
        for _ in 0..decisions.len() {
            interpreter
                .run_task(0, &mut resolver)
                .expect("execution never underflows");
        }
        // Counters never exceed the schedule's buffer bound and end up non-negative.
        let bounds = schedule.buffer_bounds(&net);
        for (index, &peak) in interpreter.peak_counters().iter().enumerate() {
            assert!(peak >= 0, "seed {seed}");
            if program.is_counter_place(PlaceId::new(index)) {
                assert!(peak as u64 <= bounds[index].max(1), "seed {seed}");
            }
        }
    }
}

#[test]
fn generated_code_agrees_with_the_token_game() {
    // Cross-validation of the two execution models: running the synthesised program
    // (fcpn-codegen interpreter) and playing the token game directly (fcpn-rtos
    // functional simulation with a single task) must perform exactly the same
    // computations when they see the same choice outcomes.
    use fcpn::codegen::FixedResolver;
    use fcpn::rtos::{
        simulate_functional_partition, simulate_program, CostModel, FunctionalTask, Workload,
    };
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = free_choice_tree(&mut rng);
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).expect("synthesis");
        let source = net.source_transitions()[0];
        let workload = Workload::periodic(source, 3, 24, 0);
        let cost = CostModel::default();
        let mut qss_resolver = FixedResolver { arm: 0 };
        let qss = simulate_program(&program, &net, &cost, &workload, &mut qss_resolver)
            .expect("qss simulation");
        let all = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let mut functional_resolver = FixedResolver { arm: 0 };
        let functional =
            simulate_functional_partition(&net, &all, &cost, &workload, &mut functional_resolver)
                .expect("token-game simulation");
        assert_eq!(qss.fire_counts, functional.fire_counts, "seed {seed}");
        assert_eq!(
            qss.events_processed, functional.events_processed,
            "seed {seed}"
        );
    }
}

#[test]
fn c_and_rust_backends_agree_on_structure() {
    use fcpn::codegen::{emit_c, emit_rust, CEmitOptions, RustEmitOptions};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = free_choice_tree(&mut rng);
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let program = synthesize(&net, &schedule, SynthesisOptions::default()).expect("synthesis");
        let c = emit_c(&program, &net, CEmitOptions::default());
        let rust = emit_rust(&program, &net, RustEmitOptions::default());
        // Both back ends contain every task and every counter place, and are brace-balanced.
        for task in &program.tasks {
            assert!(c.contains(&task.name), "seed {seed}");
            assert!(rust.contains(&task.name), "seed {seed}");
        }
        for &place in &program.counter_places {
            let c_counter = format!("count_{}", net.place_name(place));
            let rust_counter = format!("pub {}: u64", net.place_name(place));
            assert!(
                c.contains(&c_counter),
                "missing counter {c_counter} in C (seed {seed})"
            );
            assert!(
                rust.contains(&rust_counter),
                "missing counter {rust_counter} in Rust (seed {seed})"
            );
        }
        assert_eq!(
            c.matches('{').count(),
            c.matches('}').count(),
            "seed {seed}"
        );
        assert_eq!(
            rust.matches('{').count(),
            rust.matches('}').count(),
            "seed {seed}"
        );
    }
}

#[test]
fn schedule_buffer_bounds_dominate_every_cycle() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = free_choice_tree(&mut rng);
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .expect("fc input")
            .schedule()
            .expect("tree nets are schedulable");
        let bounds = schedule.buffer_bounds(&net);
        for cycle in &schedule.cycles {
            let peaks = net
                .peak_tokens(net.initial_marking(), &cycle.sequence)
                .expect("cycle is fireable");
            for (bound, peak) in bounds.iter().zip(peaks.iter()) {
                assert!(bound >= peak, "seed {seed}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// State-space engine vs. retained naive reference explorer.
// ---------------------------------------------------------------------------

/// Dead markings computed the pre-engine way: a full successor scan per marking.
fn naive_dead_markings(graph: &ReachabilityGraph) -> Vec<usize> {
    (0..graph.markings.len())
        .filter(|&i| graph.edges.iter().all(|e| e.from != i))
        .collect()
}

/// Backward reachability computed the pre-engine way: an O(V·E) edge-list fixpoint.
fn naive_can_eventually_fire(
    graph: &ReachabilityGraph,
    net: &PetriNet,
    transition: TransitionId,
) -> Vec<bool> {
    let mut can: Vec<bool> = graph
        .markings
        .iter()
        .map(|m| net.is_enabled(m, transition))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for e in &graph.edges {
            if can[e.to] && !can[e.from] {
                can[e.from] = true;
                changed = true;
            }
        }
    }
    can
}

/// Asserts the engine and the naive explorer agree bit-for-bit on `net`: same markings in
/// the same discovery order, same edges, same completeness/frontier, same dead markings
/// and the same backward-reachability verdicts for every transition.
fn assert_engines_agree(net: &PetriNet, options: ReachabilityOptions, label: &str) {
    let naive = ReachabilityGraph::explore_naive(net, options);
    let view = ReachabilityGraph::explore(net, options);
    assert_eq!(
        view, naive,
        "{label}: compatibility view differs from naive explorer"
    );

    let space = StateSpace::explore(net, options);
    assert_eq!(
        space.state_count(),
        naive.marking_count(),
        "{label}: state count"
    );
    assert_eq!(space.edge_count(), naive.edges.len(), "{label}: edge count");
    assert_eq!(space.is_complete(), naive.complete, "{label}: completeness");
    for (id, tokens) in space.states().enumerate() {
        assert_eq!(
            tokens,
            naive.markings[id].as_slice(),
            "{label}: marking {id}"
        );
    }
    let engine_edges: Vec<(usize, TransitionId, usize)> = space
        .edges()
        .map(|(from, t, to)| (from as usize, t, to as usize))
        .collect();
    let naive_edges: Vec<(usize, TransitionId, usize)> = naive
        .edges
        .iter()
        .map(|e| (e.from, e.transition, e.to))
        .collect();
    assert_eq!(engine_edges, naive_edges, "{label}: edges");
    let engine_frontier: Vec<usize> = space.frontier().iter().map(|&s| s as usize).collect();
    assert_eq!(engine_frontier, naive.frontier, "{label}: frontier");
    let engine_dead: Vec<usize> = space.dead_states().iter().map(|&s| s as usize).collect();
    assert_eq!(
        engine_dead,
        naive_dead_markings(&naive),
        "{label}: dead markings"
    );
    for t in net.transitions() {
        assert_eq!(
            space.can_eventually_fire(net, t),
            naive_can_eventually_fire(&naive, net, t),
            "{label}: can_eventually_fire({t:?})"
        );
    }
    // Every discovered marking must be findable through the interner, both in the raw
    // engine and in the compatibility view.
    for id in 0..space.state_count() {
        let marking = space.marking(id as u32);
        assert_eq!(
            space.index_of(&marking),
            Some(id as u32),
            "{label}: engine lookup"
        );
        assert_eq!(view.index_of(&marking), Some(id), "{label}: view lookup");
    }
}

/// Asserts every engine variant — narrow `u8`/`u16` arenas and the sharded parallel
/// explorer at 1/2/4 threads — produces exactly the canonical graph the sequential
/// `u64` engine does: same markings in the same id order, same edge lists, same
/// completeness/frontier and same dead markings.
fn assert_variants_canonical(net: &PetriNet, options: ReachabilityOptions, label: &str) {
    let baseline = StateSpace::explore_with(
        net,
        &ExploreOptions {
            reach: options,
            threads: 1,
            width: TokenWidth::U64,
            ..ExploreOptions::default()
        },
    );
    let variants = [
        ("u8", 1, TokenWidth::U8),
        ("u16", 1, TokenWidth::U16),
        ("par1-auto", 1, TokenWidth::Auto),
        ("par2-auto", 2, TokenWidth::Auto),
        ("par4-auto", 4, TokenWidth::Auto),
        ("par2-u64", 2, TokenWidth::U64),
        ("par4-u8", 4, TokenWidth::U8),
    ];
    for (name, threads, width) in variants {
        let space = StateSpace::explore_with(
            net,
            &ExploreOptions {
                reach: options,
                threads,
                width,
                ..ExploreOptions::default()
            },
        );
        let tag = format!("{label} [{name}]");
        assert_eq!(space.state_count(), baseline.state_count(), "{tag}: states");
        assert_eq!(space.edge_count(), baseline.edge_count(), "{tag}: edges");
        assert_eq!(
            space.is_complete(),
            baseline.is_complete(),
            "{tag}: completeness"
        );
        assert_eq!(space.frontier(), baseline.frontier(), "{tag}: frontier");
        assert_eq!(
            space.dead_states(),
            baseline.dead_states(),
            "{tag}: dead markings"
        );
        for id in 0..baseline.state_count() as u32 {
            assert_eq!(space.tokens(id), baseline.tokens(id), "{tag}: marking {id}");
            let base_row: Vec<_> = baseline.successors(id).collect();
            let row: Vec<_> = space.successors(id).collect();
            assert_eq!(row, base_row, "{tag}: out-edges of {id}");
            assert_eq!(
                space.index_of_tokens(baseline.tokens(id)),
                Some(id),
                "{tag}: interner lookup of {id}"
            );
        }
    }
    // Armed but never-tripped guards — a live cancellation token and a memory budget
    // the exploration never reaches — are pure observation: the graph they yield must
    // be the canonical one, bit for bit, sequential and sharded alike.
    for threads in [1usize, 2, 4] {
        let watched = StateSpace::try_explore_with(
            net,
            &ExploreOptions {
                reach: options,
                threads,
                width: TokenWidth::U64,
                cancel: fcpn::petri::cancel::CancelToken::new(),
                memory: fcpn::petri::MemoryBudget::with_limit(1 << 40),
            },
        )
        .expect("armed-but-unreached guards never interrupt");
        let tag = format!("{label} [armed-guards t{threads}]");
        assert_eq!(
            watched.state_count(),
            baseline.state_count(),
            "{tag}: states"
        );
        assert_eq!(watched.edge_count(), baseline.edge_count(), "{tag}: edges");
        for id in 0..baseline.state_count() as u32 {
            assert_eq!(
                watched.tokens(id),
                baseline.tokens(id),
                "{tag}: marking {id}"
            );
            let base_row: Vec<_> = baseline.successors(id).collect();
            let row: Vec<_> = watched.successors(id).collect();
            assert_eq!(row, base_row, "{tag}: out-edges of {id}");
        }
    }
}

/// Truncation budget for nets with source transitions (unbounded state spaces).
fn truncated() -> ReachabilityOptions {
    ReachabilityOptions {
        max_markings: 3_000,
        max_tokens_per_place: 5,
    }
}

#[test]
fn engine_matches_naive_on_every_gallery_net() {
    let open_nets: Vec<(&str, PetriNet)> = vec![
        ("figure1a", gallery::figure1a()),
        ("figure1b", gallery::figure1b()),
        ("figure2", gallery::figure2()),
        ("figure3a", gallery::figure3a()),
        ("figure3b", gallery::figure3b()),
        ("figure4", gallery::figure4()),
        ("figure5", gallery::figure5()),
        ("figure7", gallery::figure7()),
        ("choice_chain(3)", gallery::choice_chain(3)),
    ];
    for (label, net) in &open_nets {
        assert_engines_agree(net, truncated(), label);
    }
    // Bounded nets explore completely under the default budget.
    for (label, net) in [
        ("marked_ring(6,3)", gallery::marked_ring(6, 3)),
        ("marked_ring(10,4)", gallery::marked_ring(10, 4)),
    ] {
        assert_engines_agree(&net, ReachabilityOptions::default(), label);
    }
}

#[test]
fn engine_variants_are_canonical_on_every_gallery_net() {
    let open_nets: Vec<(&str, PetriNet)> = vec![
        ("figure1a", gallery::figure1a()),
        ("figure1b", gallery::figure1b()),
        ("figure2", gallery::figure2()),
        ("figure3a", gallery::figure3a()),
        ("figure3b", gallery::figure3b()),
        ("figure4", gallery::figure4()),
        ("figure5", gallery::figure5()),
        ("figure7", gallery::figure7()),
        ("choice_chain(3)", gallery::choice_chain(3)),
    ];
    for (label, net) in &open_nets {
        assert_variants_canonical(net, truncated(), label);
    }
    for (label, net) in [
        ("marked_ring(6,3)", gallery::marked_ring(6, 3)),
        ("marked_ring(10,4)", gallery::marked_ring(10, 4)),
        ("cycle_bank(8)", gallery::cycle_bank(8)),
    ] {
        assert_variants_canonical(&net, ReachabilityOptions::default(), label);
    }
}

#[test]
fn engine_variants_are_canonical_on_random_nets() {
    // 64 seeded random nets in total (48 dense + 16 free-choice trees), each checked
    // across every width/thread variant plus the armed-guards (live token + budget)
    // paths at 1/2/4 threads.
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xACE ^ seed);
        let net = random_net(&mut rng);
        let options = ReachabilityOptions {
            max_markings: 1_500,
            max_tokens_per_place: 6,
        };
        assert_variants_canonical(&net, options, &format!("random net seed {seed}"));
    }
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0xD1CE ^ seed);
        let net = free_choice_tree(&mut rng);
        assert_variants_canonical(&net, truncated(), &format!("fc tree seed {seed}"));
    }
}

#[test]
fn memory_exhaustion_is_deterministic_across_engines() {
    // The budget charges the canonical cost model in admission order, so the same net
    // under the same byte limit must fail with the *same* typed error — same stage,
    // same requested_bytes — no matter how many worker threads raced to discover
    // states, and regardless of token width.
    for (label, net, limit) in [
        ("figure5", fcpn::petri::gallery::figure5(), 2_000u64),
        (
            "memory_bomb(5)",
            fcpn::petri::gallery::memory_bomb(5),
            4_096,
        ),
        ("cycle_bank(8)", fcpn::petri::gallery::cycle_bank(8), 1_024),
    ] {
        let reach = ReachabilityOptions {
            max_markings: 200_000,
            max_tokens_per_place: 16,
        };
        // Per-state cost is a function of the token width, so compare thread counts
        // within each fixed width (Auto resolves identically for the same net).
        for width in [TokenWidth::U64, TokenWidth::Auto] {
            let mut errors = Vec::new();
            for threads in [1usize, 2, 4] {
                let err = StateSpace::try_explore_with(
                    &net,
                    &ExploreOptions {
                        reach,
                        threads,
                        width,
                        memory: fcpn::petri::MemoryBudget::with_limit(limit),
                        ..ExploreOptions::default()
                    },
                )
                .expect_err("tight budget must exhaust");
                errors.push((threads, err));
            }
            let (_, first) = &errors[0];
            assert!(
                matches!(first, fcpn::petri::Interrupt::Exhausted(_)),
                "{label} [{width:?}]: expected an exhaustion error, got {first:?}"
            );
            for (threads, err) in &errors[1..] {
                assert_eq!(
                    err, first,
                    "{label} [{width:?}]: threads={threads} diverged from the sequential error"
                );
            }
        }
    }
}

#[test]
fn engine_variants_are_canonical_under_tight_budgets() {
    // Budget truncation is where discovery order matters most: which states fall inside
    // the budget depends on it, so this pins the parallel admission pass byte-for-byte.
    let net = gallery::figure5();
    for max_markings in [1usize, 2, 7, 50, 333] {
        assert_variants_canonical(
            &net,
            ReachabilityOptions {
                max_markings,
                max_tokens_per_place: 3,
            },
            &format!("figure5 budget={max_markings}"),
        );
    }
    assert_variants_canonical(
        &net,
        ReachabilityOptions {
            max_markings: 100,
            max_tokens_per_place: 0,
        },
        "figure5 cutoff=0",
    );
}

#[test]
fn engine_matches_naive_on_tight_budgets() {
    // Budget edge cases: a budget of one marking, and a zero token cut-off.
    let net = gallery::figure5();
    for max_markings in [1usize, 2, 7, 50] {
        assert_engines_agree(
            &net,
            ReachabilityOptions {
                max_markings,
                max_tokens_per_place: 3,
            },
            &format!("figure5 budget={max_markings}"),
        );
    }
    assert_engines_agree(
        &net,
        ReachabilityOptions {
            max_markings: 100,
            max_tokens_per_place: 0,
        },
        "figure5 cutoff=0",
    );
}

/// A random net with arbitrary structure — not necessarily free-choice, bounded, or even
/// connected — to fuzz the explorers' agreement beyond the well-behaved families.
fn random_net(rng: &mut StdRng) -> PetriNet {
    let places = rng.gen_range(1..6usize);
    let transitions = rng.gen_range(1..6usize);
    let mut b = NetBuilder::new("fuzz");
    let ps: Vec<PlaceId> = (0..places)
        .map(|i| b.place(format!("p{i}"), rng.gen_range(0..3u64)))
        .collect();
    let ts: Vec<TransitionId> = (0..transitions)
        .map(|i| b.transition(format!("t{i}")))
        .collect();
    for &t in &ts {
        for &p in &ps {
            // ~40% chance of each arc direction, weights 1–2.
            if rng.gen_bool(0.4) {
                b.arc_p_t(p, t, rng.gen_range(1..3u64)).expect("arc");
            }
            if rng.gen_bool(0.4) {
                b.arc_t_p(t, p, rng.gen_range(1..3u64)).expect("arc");
            }
        }
    }
    b.build().expect("fuzz net is structurally valid")
}

#[test]
fn engine_matches_naive_on_random_nets() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0xF00D ^ seed);
        let net = random_net(&mut rng);
        let options = ReachabilityOptions {
            max_markings: 2_000,
            max_tokens_per_place: 6,
        };
        assert_engines_agree(&net, options, &format!("random net seed {seed}"));
    }
}

#[test]
fn engine_matches_naive_on_random_free_choice_trees() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let net = free_choice_tree(&mut rng);
        assert_engines_agree(&net, truncated(), &format!("fc tree seed {seed}"));
    }
}
