//! A small command-line front end: read a net in the textual format of
//! `fcpn_petri::io`, check quasi-static schedulability, and print the valid schedule,
//! the generated C (or Rust), or a Graphviz rendering.
//!
//! ```text
//! fcpn-cli schedule  <net.pn>      # schedulability verdict + valid schedule
//! fcpn-cli codegen   <net.pn>      # generated C code
//! fcpn-cli codegen-rust <net.pn>   # generated Rust code
//! fcpn-cli dot       <net.pn>      # Graphviz DOT of the net
//! fcpn-cli stats     <net.pn>      # structural statistics and net class
//! ```

use fcpn::codegen::{
    emit_c, emit_rust, synthesize, CEmitOptions, CodeMetrics, RustEmitOptions, SynthesisOptions,
};
use fcpn::petri::analysis::Classification;
use fcpn::petri::io::{parse_net, to_dot, DotOptions};
use fcpn::petri::PetriNet;
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome, ValidSchedule};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match args.as_slice() {
        [command, path] => (command.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: fcpn-cli <schedule|codegen|codegen-rust|dot|stats> <net.pn>");
            return ExitCode::from(2);
        }
    };
    match run(command, path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let net = parse_net(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    match command {
        "stats" => {
            println!("{}", net.stats());
            println!("class: {}", Classification::of(&net).class);
            Ok(())
        }
        "dot" => {
            print!("{}", to_dot(&net, None, DotOptions::verbose()));
            Ok(())
        }
        "schedule" => {
            let schedule = schedule(&net)?;
            println!(
                "schedulable: valid schedule with {} cycle(s)",
                schedule.cycle_count()
            );
            println!("S = {}", schedule.describe(&net));
            println!("buffer bounds: {:?}", schedule.buffer_bounds(&net));
            Ok(())
        }
        "codegen" => {
            let schedule = schedule(&net)?;
            let program = synthesize(&net, &schedule, SynthesisOptions::default())
                .map_err(|e| e.to_string())?;
            eprintln!("// {}", CodeMetrics::of(&program, &net));
            print!("{}", emit_c(&program, &net, CEmitOptions::default()));
            Ok(())
        }
        "codegen-rust" => {
            let schedule = schedule(&net)?;
            let program = synthesize(&net, &schedule, SynthesisOptions::default())
                .map_err(|e| e.to_string())?;
            print!("{}", emit_rust(&program, &net, RustEmitOptions::default()));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn schedule(net: &PetriNet) -> Result<ValidSchedule, String> {
    match quasi_static_schedule(net, &QssOptions::default()).map_err(|e| e.to_string())? {
        QssOutcome::Schedulable(schedule) => Ok(schedule),
        QssOutcome::NotSchedulable(report) => {
            Err(format!("net is not quasi-statically schedulable: {report}"))
        }
    }
}
