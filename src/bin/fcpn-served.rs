//! `fcpn-served` — the standalone scheduler daemon.
//!
//! Binds a TCP address and serves the `fcpn-serve` endpoints until the process is
//! told to stop. On Unix, `SIGTERM`/`SIGINT` trigger a **graceful drain**: the daemon
//! stops accepting new connections (refusing them with `503`), lets in-flight
//! requests finish (each bounded by its own deadline, waited for up to the drain
//! grace period), fsyncs the persistent cache if one is configured, and exits `0`. A
//! `SIGKILL` is the crash path — the cache's log-structured persistence recovers from
//! a torn tail on the next start.
//!
//! ```text
//! fcpn-served [--addr 127.0.0.1:7411] [--workers N] [--queue N]
//!             [--reactor | --threaded] [--max-conns N] [--idle-timeout-ms N]
//!             [--tenant-rate R] [--tenant-burst B] [--tenant-max-inflight N]
//!             [--cache-entries N] [--cache-bytes N] [--cache-dir PATH]
//!             [--max-threads N] [--deadline-ms N] [--read-timeout-ms N]
//!             [--read-deadline-ms N] [--mem-budget BYTES]
//! ```
//!
//! On Linux the daemon defaults to the **event-driven reactor** front end (one epoll
//! thread holding every connection, CPU work on the worker pool); `--threaded` selects
//! the blocking thread-per-connection path, which is also the automatic fallback
//! elsewhere. `--tenant-rate` enables per-tenant admission control keyed by the
//! `X-Fcpn-Tenant` header: sustained requests/second per tenant, `--tenant-burst`
//! bucket depth, `--tenant-max-inflight` concurrent in-flight cap (429 + `Retry-After`
//! past either).
//!
//! With `--cache-dir`, the result cache persists across restarts: one append-only,
//! checksummed log per shard under `PATH` (created if absent), warm-loaded at startup
//! with torn or corrupt tails truncated (counted in the `persist_*` metrics).
//!
//! `--mem-budget BYTES` arms the **process memory governor**: every request's
//! engine-allocation byte budget (the `memory_budget_bytes` query parameter, or the
//! armed default) is reserved against one process-wide pool at admission. Requests
//! the pool cannot cover are shed with `503` + `Retry-After` (and the result cache is
//! halved for headroom) instead of growing the heap — the daemon degrades, it never
//! dies. `/metrics` reports `mem_bytes_in_use`, `mem_budget_bytes`, `rejected_memory`
//! and `resource_exhausted`.

use fcpn_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fcpn-served [--addr HOST:PORT] [--workers N] [--queue N] \
         [--reactor | --threaded] [--max-conns N] [--idle-timeout-ms N] \
         [--tenant-rate R] [--tenant-burst B] [--tenant-max-inflight N] \
         [--cache-entries N] [--cache-bytes N] [--cache-dir PATH] [--max-threads N] \
         [--deadline-ms N] [--read-timeout-ms N] [--read-deadline-ms N] \
         [--mem-budget BYTES]"
    );
    std::process::exit(2);
}

/// Process-wide "a termination signal arrived" flag, set from the signal handler.
#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    // Setting a static atomic flag is async-signal-safe; everything else (draining,
    // flushing, printing) happens on the main thread once it observes the flag.
    extern "C" fn on_term(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            let handler = on_term as extern "C" fn(i32) as *const () as usize;
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

fn main() {
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        let parse_num = |i: usize| -> u64 { value(i).parse().unwrap_or_else(|_| usage()) };
        let parse_f64 = |i: usize| -> f64 { value(i).parse().unwrap_or_else(|_| usage()) };
        // Valueless front-end switches first (the main match assumes flag + value).
        match args[i].as_str() {
            "--reactor" => {
                config.reactor = true;
                i += 1;
                continue;
            }
            "--threaded" => {
                config.reactor = false;
                i += 1;
                continue;
            }
            _ => {}
        }
        match args[i].as_str() {
            "--addr" => config.addr = value(i).to_string(),
            "--workers" => config.workers = parse_num(i) as usize,
            "--queue" => config.queue_capacity = parse_num(i) as usize,
            "--cache-entries" => config.cache_entries = parse_num(i) as usize,
            "--cache-bytes" => config.cache_bytes = (parse_num(i) as usize).max(1),
            "--cache-dir" => config.cache_dir = Some(value(i).into()),
            "--max-threads" => config.limits.max_threads = (parse_num(i) as usize).max(1),
            "--deadline-ms" => {
                let ms = parse_num(i).max(1);
                config.limits.default_deadline_ms = ms;
                // The per-request clamp works against max_deadline_ms; an operator
                // asking for a longer default must get it, not a silent 30s cap.
                config.limits.max_deadline_ms = config.limits.max_deadline_ms.max(ms);
            }
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_num(i).max(1));
            }
            "--read-deadline-ms" => {
                config.request_read_deadline = Duration::from_millis(parse_num(i).max(1));
            }
            "--max-conns" => config.max_connections = (parse_num(i) as usize).max(1),
            "--idle-timeout-ms" => {
                config.idle_timeout = Duration::from_millis(parse_num(i).max(1));
            }
            "--mem-budget" => config.mem_budget_bytes = Some(parse_num(i).max(1)),
            "--tenant-rate" => config.tenant.rate = parse_f64(i).max(0.0),
            "--tenant-burst" => config.tenant.burst = parse_f64(i).max(1.0),
            "--tenant-max-inflight" => config.tenant.max_in_flight = parse_num(i) as u32,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 2;
    }

    #[cfg(unix)]
    term::install();

    // The reactor front end holds every connection on one thread; make sure the fd
    // limit can actually carry --max-conns (best effort — the accept path sheds
    // gracefully on EMFILE either way).
    #[cfg(target_os = "linux")]
    if config.reactor {
        let _ = fcpn_serve::reactor::raise_nofile_limit(config.max_connections as u64 + 64);
    }

    let use_reactor = config.reactor && cfg!(target_os = "linux");
    let handle = match Server::spawn(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("fcpn-served: cannot start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    // Machine-greppable readiness line (the CI smoke job waits for it; keep the
    // `listening on <addr>` shape — DaemonProcess parses the address out of it).
    println!(
        "fcpn-served listening on {} ({} front end, {} workers, queue {})",
        handle.addr(),
        if use_reactor { "reactor" } else { "threaded" },
        config.workers,
        config.queue_capacity
    );

    #[cfg(unix)]
    {
        // Serve until a termination signal arrives, then drain: refuse new work,
        // finish what is in flight, flush the persistent cache, exit 0.
        while !term::requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        println!("fcpn-served draining (signal received)");
        handle.drain();
        println!("fcpn-served stopped");
    }
    #[cfg(not(unix))]
    {
        // No signal plumbing off Unix: serve until the process is killed.
        handle.join();
    }
}
