//! `fcpn-served` — the standalone scheduler daemon.
//!
//! Binds a TCP address and serves the `fcpn-serve` endpoints until the process is
//! terminated (SIGTERM/SIGINT; the process relies on the default signal disposition, so
//! a TERM is an immediate, stateless stop — every completed response has already been
//! written, and the kernel closes what was in flight).
//!
//! ```text
//! fcpn-served [--addr 127.0.0.1:7411] [--workers N] [--queue N]
//!             [--cache-entries N] [--max-threads N] [--deadline-ms N]
//!             [--read-timeout-ms N]
//! ```

use fcpn_serve::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fcpn-served [--addr HOST:PORT] [--workers N] [--queue N] \
         [--cache-entries N] [--max-threads N] [--deadline-ms N] [--read-timeout-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        let parse_num = |i: usize| -> u64 { value(i).parse().unwrap_or_else(|_| usage()) };
        match args[i].as_str() {
            "--addr" => config.addr = value(i).to_string(),
            "--workers" => config.workers = parse_num(i) as usize,
            "--queue" => config.queue_capacity = parse_num(i) as usize,
            "--cache-entries" => config.cache_entries = parse_num(i) as usize,
            "--max-threads" => config.limits.max_threads = (parse_num(i) as usize).max(1),
            "--deadline-ms" => {
                let ms = parse_num(i).max(1);
                config.limits.default_deadline_ms = ms;
                // The per-request clamp works against max_deadline_ms; an operator
                // asking for a longer default must get it, not a silent 30s cap.
                config.limits.max_deadline_ms = config.limits.max_deadline_ms.max(ms);
            }
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_num(i).max(1));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 2;
    }

    let handle = match Server::spawn(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("fcpn-served: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    // Machine-greppable readiness line (the CI smoke job waits for it).
    println!(
        "fcpn-served listening on {} ({} workers, queue {})",
        handle.addr(),
        config.workers,
        config.queue_capacity
    );
    // Serve until the process is killed: the accept loop only returns on shutdown(),
    // which nothing triggers here — SIGTERM terminates the whole process instead.
    handle.join();
}
