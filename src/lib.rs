//! # fcpn — quasi-static scheduling and software synthesis from Free-Choice Petri Nets
//!
//! This is the facade crate of the reproduction of *Synthesis of Embedded Software Using
//! Free-Choice Petri Nets* (Sgroi, Lavagno, Watanabe, Sangiovanni-Vincentelli, DAC 1999).
//! It re-exports the workspace crates under stable module names so applications can use a
//! single dependency:
//!
//! * [`petri`] — Petri-net kernel: nets, markings, token game, structural analysis,
//!   T-invariants, net classes, DOT/text I/O, and the paper's figure nets.
//! * [`sdf`] — static scheduling of Synchronous Dataflow graphs / marked graphs
//!   (Lee–Messerschmitt baseline).
//! * [`qss`] — the paper's contribution: T-allocations, T-reductions, schedulability and
//!   valid schedules.
//! * [`codegen`] — software synthesis: task partitioning, task IR, C emission, an IR
//!   interpreter.
//! * [`rtos`] — run-time substrate: workloads, cost model, cycle-accounting simulators.
//! * [`atm`] — the ATM-server case study and the Table I harness.
//! * [`serve`] — the scheduler daemon: HTTP endpoints, worker pool, result cache, load
//!   generator (also shipped standalone as the `fcpn-served` binary).
//!
//! # Quick start
//!
//! ```
//! use fcpn::petri::gallery;
//! use fcpn::qss::{quasi_static_schedule, QssOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = gallery::figure4();
//! let schedule = quasi_static_schedule(&net, &QssOptions::default())?
//!     .schedule()
//!     .expect("figure 4 is schedulable");
//! assert_eq!(schedule.describe(&net), "{(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The ATM-server case study and Table I harness (re-export of `fcpn-atm`).
pub use fcpn_atm as atm;
/// Software synthesis from valid schedules (re-export of `fcpn-codegen`).
pub use fcpn_codegen as codegen;
/// Petri-net kernel (re-export of `fcpn-petri`).
pub use fcpn_petri as petri;
/// Quasi-static scheduling (re-export of `fcpn-qss`).
pub use fcpn_qss as qss;
/// Run-time simulation substrate (re-export of `fcpn-rtos`).
pub use fcpn_rtos as rtos;
/// Static SDF scheduling (re-export of `fcpn-sdf`).
pub use fcpn_sdf as sdf;
/// The scheduler daemon (re-export of `fcpn-serve`).
pub use fcpn_serve as serve;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let net = crate::petri::gallery::figure2();
        assert_eq!(net.transition_count(), 3);
    }
}
