//! Building the task IR from a valid schedule (the `Schedule`/`Task` routines of
//! Section 4 of the paper).
//!
//! The synthesis walks the valid schedule once per task:
//!
//! * one task is created for every input (source transition) with independent firing
//!   rate — the lower bound on the number of tasks the paper identifies;
//! * inside a task, the first occurrence of a conflicting transition becomes an
//!   if/else-if over the run-time choice value;
//! * when consecutive transitions fire at different rates (or through weighted arcs) a
//!   counting variable on the connecting place is introduced, with an `if` test when the
//!   consumer fires less often than its producer and a `while` loop when it fires more
//!   often — exactly the cases the paper's `Task` routine distinguishes.

use crate::{ChoiceArm, CodegenError, Program, Result, Stmt, Task};
use fcpn_petri::{PetriNet, PlaceId, TransitionId};
use fcpn_qss::{FiniteCompleteCycle, ValidSchedule};
use std::collections::BTreeSet;

/// Options controlling software synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthesisOptions {
    /// Reserved for future tuning knobs (e.g. code-sharing via labels); present so the
    /// signature of [`synthesize`] stays stable.
    _reserved: (),
}

/// A task's view of one cycle: the transitions it must execute (in first-occurrence
/// order) and how many times each fires per cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TaskSlice {
    /// Transitions in first-occurrence order.
    order: Vec<TransitionId>,
    /// Firing counts per parent transition.
    counts: Vec<u64>,
}

/// Synthesises the task-level software implementation of `net` from its valid schedule.
///
/// # Errors
///
/// Returns [`CodegenError::EmptySchedule`] if the schedule has no cycles.
///
/// # Examples
///
/// ```
/// use fcpn_petri::gallery;
/// use fcpn_qss::{quasi_static_schedule, QssOptions};
/// use fcpn_codegen::{synthesize, SynthesisOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = gallery::figure5();
/// let schedule = quasi_static_schedule(&net, &QssOptions::default())?
///     .schedule()
///     .expect("figure 5 is schedulable");
/// let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
/// // Two inputs with independent rates (t1 and t8) give exactly two tasks.
/// assert_eq!(program.task_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(
    net: &PetriNet,
    schedule: &ValidSchedule,
    _options: SynthesisOptions,
) -> Result<Program> {
    if schedule.cycles.is_empty() {
        return Err(CodegenError::EmptySchedule);
    }
    let counter_places = counter_places(net);
    let sources = net.source_transitions();

    let mut tasks = Vec::new();
    if sources.is_empty() {
        // Closed nets (no environment inputs) become a single task running one full cycle
        // per invocation.
        let slices: Vec<TaskSlice> = schedule
            .cycles
            .iter()
            .map(|cycle| TaskSlice {
                order: causal_order(net, &cycle.counts, None),
                counts: cycle.counts.clone(),
            })
            .collect();
        tasks.push(Task {
            name: "task_main".to_string(),
            source: None,
            body: build_segment(net, &counter_places, &slices, None),
        });
    } else {
        for &source in &sources {
            let mut slices = Vec::new();
            for cycle in &schedule.cycles {
                let slice =
                    slice_for(cycle, source).ok_or(CodegenError::MissingSlice { source })?;
                let order = causal_order(net, &slice, Some(source));
                slices.push(TaskSlice {
                    order,
                    counts: slice,
                });
            }
            dedup_slices(&mut slices);
            tasks.push(Task {
                name: format!("task_{}", net.transition_name(source)),
                source: Some(source),
                body: build_segment(net, &counter_places, &slices, None),
            });
        }
    }

    Ok(Program {
        name: net.name().to_string(),
        tasks,
        counter_places,
    })
}

/// Places implemented as software counters: every non-choice place with a weighted arc or
/// with more than one producer (merge). Choice places carry the run-time decision value
/// instead and are compiled to if/else tests.
fn counter_places(net: &PetriNet) -> Vec<PlaceId> {
    net.places()
        .filter(|&p| {
            if net.is_choice_place(p) {
                return false;
            }
            let weighted = net
                .producers(p)
                .iter()
                .chain(net.consumers(p).iter())
                .any(|&(_, w)| w != 1);
            weighted || net.producers(p).len() > 1
        })
        .collect()
}

/// Extracts the slice of `cycle` attributed to `source`, i.e. the firing counts of the
/// transitions whose rate depends on that input.
fn slice_for(cycle: &FiniteCompleteCycle, source: TransitionId) -> Option<Vec<u64>> {
    cycle
        .source_slices
        .iter()
        .find(|&&(s, _)| s == source)
        .map(|(_, counts)| counts.clone())
}

/// Orders the transitions in the support of `counts` causally within the task: the task's
/// own source first, then every transition once all of its in-support producers have been
/// placed. This is the order in which the task's code executes the computations when its
/// input event arrives, independent of how the full cycle interleaves other tasks.
fn causal_order(net: &PetriNet, counts: &[u64], source: Option<TransitionId>) -> Vec<TransitionId> {
    let support: Vec<TransitionId> = net
        .transitions()
        .filter(|t| counts[t.index()] > 0)
        .collect();
    let in_support: BTreeSet<TransitionId> = support.iter().copied().collect();
    let mut order: Vec<TransitionId> = Vec::with_capacity(support.len());
    let mut placed: BTreeSet<TransitionId> = BTreeSet::new();
    if let Some(source) = source {
        if in_support.contains(&source) {
            order.push(source);
            placed.insert(source);
        }
    }
    while order.len() < support.len() {
        let mut added = false;
        for &t in &support {
            if placed.contains(&t) {
                continue;
            }
            let ready = net.inputs(t).iter().all(|&(p, _)| {
                let producers_in_support: Vec<TransitionId> = net
                    .producers(p)
                    .iter()
                    .map(|&(producer, _)| producer)
                    .filter(|producer| in_support.contains(producer))
                    .collect();
                producers_in_support.is_empty()
                    || producers_in_support
                        .iter()
                        .any(|producer| placed.contains(producer))
                    || net.initial_marking().tokens(p) > 0
            });
            if ready {
                order.push(t);
                placed.insert(t);
                added = true;
            }
        }
        if !added {
            // Break structural cycles deterministically by index order.
            if let Some(&t) = support.iter().find(|t| !placed.contains(t)) {
                order.push(t);
                placed.insert(t);
            }
        }
    }
    order
}

/// Zeroes the counts of transitions outside `order`, so that continuations that only
/// differ in the counts of already-emitted transitions compare (and deduplicate) as equal.
fn restrict_counts(counts: &[u64], order: &[TransitionId]) -> Vec<u64> {
    let mut restricted = vec![0u64; counts.len()];
    for &t in order {
        restricted[t.index()] = counts[t.index()];
    }
    restricted
}

fn dedup_slices(slices: &mut Vec<TaskSlice>) {
    let mut unique: Vec<TaskSlice> = Vec::new();
    for slice in slices.drain(..) {
        if !unique.contains(&slice) {
            unique.push(slice);
        }
    }
    *slices = unique;
}

/// Recursively builds the statements shared by `slices`: the common prefix is emitted
/// linearly, and the first divergence becomes an if/else-if over the choice that caused
/// it.
fn build_segment(
    net: &PetriNet,
    counters: &[PlaceId],
    slices: &[TaskSlice],
    prev: Option<(TransitionId, u64)>,
) -> Vec<Stmt> {
    let slices: Vec<&TaskSlice> = slices.iter().filter(|s| !s.order.is_empty()).collect();
    if slices.is_empty() {
        return Vec::new();
    }
    // Length of the common prefix (by transition identity).
    let mut prefix_len = 0;
    while let Some(&candidate) = slices[0].order.get(prefix_len) {
        if slices
            .iter()
            .any(|s| s.order.get(prefix_len) != Some(&candidate))
        {
            break;
        }
        prefix_len += 1;
    }

    let mut statements = Vec::new();
    let mut prev = prev;
    // Emit the common prefix. Counts may differ between slices for the same transition
    // (e.g. `t1` fires twice per cycle in one resolution and once in another); the rate
    // comparison uses the maximum, which is the sustained requirement.
    let mut sink: &mut Vec<Stmt> = &mut statements;
    for position in 0..prefix_len {
        let transition = slices[0].order[position];
        let count = slices
            .iter()
            .map(|s| s.counts[transition.index()])
            .max()
            .unwrap_or(1);
        sink = emit_transition(net, counters, sink, transition, count, &mut prev);
    }

    // Emit the divergence, if any, as a choice over the conflicting transitions.
    let remaining: Vec<(&TaskSlice, Option<&TransitionId>)> = slices
        .iter()
        .map(|s| (*s, s.order.get(prefix_len)))
        .collect();
    if remaining.iter().all(|(_, next)| next.is_none()) {
        return statements;
    }
    // Group the slices by the transition they fire at the divergence point.
    let mut arms: Vec<(TransitionId, Vec<TaskSlice>)> = Vec::new();
    for (slice, next) in remaining {
        let Some(&next) = next else { continue };
        let rest = TaskSlice {
            order: slice.order[prefix_len..].to_vec(),
            counts: slice.counts.clone(),
        };
        match arms.iter_mut().find(|(t, _)| *t == next) {
            Some((_, group)) => group.push(rest),
            None => arms.push((next, vec![rest])),
        }
    }
    if arms.len() == 1 {
        // Not an actual data-dependent divergence (all slices continue identically); keep
        // emitting linearly.
        let (_, group) = &arms[0];
        let tail = build_segment(net, counters, group, prev);
        sink.extend(tail);
        return statements;
    }

    // Reconvergence detection: if after `split` steps every arm leads to the same set of
    // continuations, the choice only affects those `split` steps and the continuation is
    // emitted once after the if/else-if chain. This is the structured counterpart of the
    // paper's merge-place labels/gotos and is what keeps the generated code linear in the
    // size of the net even though the number of T-reductions is exponential.
    let max_len = arms
        .iter()
        .flat_map(|(_, group)| group.iter().map(|s| s.order.len()))
        .max()
        .unwrap_or(0);
    let mut chosen_split = None;
    'split: for split in 1..max_len {
        let mut reference: Option<Vec<(Vec<TransitionId>, Vec<u64>)>> = None;
        for (_, group) in &arms {
            let mut continuations: Vec<(Vec<TransitionId>, Vec<u64>)> = group
                .iter()
                .map(|s| {
                    let suffix = s.order.get(split..).unwrap_or(&[]).to_vec();
                    let counts = restrict_counts(&s.counts, &suffix);
                    (suffix, counts)
                })
                .collect();
            continuations.sort();
            continuations.dedup();
            match &reference {
                None => reference = Some(continuations),
                Some(r) if *r != continuations => continue 'split,
                Some(_) => {}
            }
        }
        chosen_split = Some(split);
        break;
    }

    // The diverging transitions share a choice place in a free-choice net.
    let choice_place = arms
        .first()
        .and_then(|(t, _)| net.inputs(*t).first().map(|&(p, _)| p))
        .unwrap_or(PlaceId::new(0));

    match chosen_split {
        Some(split) => {
            let continuation: Vec<TaskSlice> = {
                let mut all: Vec<TaskSlice> = arms
                    .iter()
                    .flat_map(|(_, group)| group.iter())
                    .map(|s| {
                        let order = s.order.get(split..).unwrap_or(&[]).to_vec();
                        let counts = restrict_counts(&s.counts, &order);
                        TaskSlice { order, counts }
                    })
                    .collect();
                dedup_slices(&mut all);
                all
            };
            let arm_prev = prev;
            let divergent_count = arms
                .iter()
                .flat_map(|(t, group)| group.iter().map(|s| s.counts[t.index()]))
                .max()
                .unwrap_or(1);
            let first_arm_transition = arms[0].0;
            let choice_arms = arms
                .into_iter()
                .map(|(transition, group)| {
                    let heads: Vec<TaskSlice> = group
                        .iter()
                        .map(|s| TaskSlice {
                            order: s
                                .order
                                .get(..split.min(s.order.len()))
                                .unwrap_or(&[])
                                .to_vec(),
                            counts: s.counts.clone(),
                        })
                        .collect();
                    ChoiceArm {
                        transition,
                        body: build_segment(net, counters, &heads, arm_prev),
                    }
                })
                .collect();
            sink.push(Stmt::Choice {
                place: choice_place,
                arms: choice_arms,
            });
            let continuation_prev = Some((first_arm_transition, divergent_count));
            let tail = build_segment(net, counters, &continuation, continuation_prev);
            sink.extend(tail);
        }
        None => {
            let choice_arms = arms
                .into_iter()
                .map(|(transition, group)| ChoiceArm {
                    transition,
                    body: build_segment(net, counters, &group, prev),
                })
                .collect();
            sink.push(Stmt::Choice {
                place: choice_place,
                arms: choice_arms,
            });
        }
    }
    statements
}

/// Emits one transition (and its counter bookkeeping), returning the statement list into
/// which subsequent statements should be emitted (the body of the guard when one was
/// created, so downstream consumers nest inside the producing loop).
fn emit_transition<'a>(
    net: &PetriNet,
    counters: &[PlaceId],
    sink: &'a mut Vec<Stmt>,
    transition: TransitionId,
    count: u64,
    prev: &mut Option<(TransitionId, u64)>,
) -> &'a mut Vec<Stmt> {
    let is_counter = |p: PlaceId| counters.contains(&p);
    let counter_inputs: Vec<(PlaceId, u64)> = net
        .inputs(transition)
        .iter()
        .copied()
        .filter(|&(p, _)| is_counter(p))
        .collect();
    let counter_outputs: Vec<(PlaceId, u64)> = net
        .outputs(transition)
        .iter()
        .copied()
        .filter(|&(p, _)| is_counter(p))
        .collect();

    let mut body = Vec::new();
    body.push(Stmt::Fire(transition));
    for &(place, amount) in &counter_inputs {
        body.push(Stmt::DecCount { place, amount });
    }
    for &(place, amount) in &counter_outputs {
        body.push(Stmt::IncCount { place, amount });
    }

    let previous = *prev;
    *prev = Some((transition, count));

    if counter_inputs.is_empty() {
        sink.extend(body);
        return sink;
    }

    // Guard on the place connecting the previous transition to this one when it is a
    // counter; otherwise on the first counted input.
    let connecting = previous.and_then(|(p_t, _)| {
        counter_inputs
            .iter()
            .copied()
            .find(|&(place, _)| net.arc_weight_tp(p_t, place) > 0)
    });
    let (guard_place, guard_amount) = connecting.unwrap_or(counter_inputs[0]);
    let fires_less_often = previous.map(|(_, c)| count < c).unwrap_or(false);
    let guarded = if fires_less_often {
        Stmt::IfCount {
            place: guard_place,
            at_least: guard_amount,
            body,
        }
    } else {
        Stmt::WhileCount {
            place: guard_place,
            at_least: guard_amount,
            body,
        }
    };
    sink.push(guarded);
    match sink.last_mut() {
        Some(Stmt::IfCount { body, .. }) | Some(Stmt::WhileCount { body, .. }) => body,
        _ => unreachable!("a guard statement was just pushed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::gallery;
    use fcpn_qss::{quasi_static_schedule, QssOptions};

    fn program_for(net: &PetriNet) -> Program {
        let schedule = quasi_static_schedule(net, &QssOptions::default())
            .unwrap()
            .schedule()
            .expect("net must be schedulable");
        synthesize(net, &schedule, SynthesisOptions::default()).unwrap()
    }

    #[test]
    fn figure4_program_matches_paper_structure() {
        let net = gallery::figure4();
        let program = program_for(&net);
        // One source (t1) -> one task.
        assert_eq!(program.task_count(), 1);
        let task = &program.tasks[0];
        assert_eq!(task.name, "task_t1");
        // Body: fire t1, then the choice between t2 and t3.
        assert!(matches!(task.body[0], Stmt::Fire(t) if net.transition_name(t) == "t1"));
        let Stmt::Choice { place, arms } = &task.body[1] else {
            panic!("expected a choice, got {:?}", task.body[1]);
        };
        assert_eq!(net.place_name(*place), "p1");
        assert_eq!(arms.len(), 2);
        // Arm for t2: fire t2, count(p2)++, if (count(p2) >= 2) { t4; count -= 2 }.
        let arm_t2 = arms
            .iter()
            .find(|a| net.transition_name(a.transition) == "t2")
            .unwrap();
        assert!(matches!(arm_t2.body[0], Stmt::Fire(_)));
        assert!(matches!(arm_t2.body[1], Stmt::IncCount { amount: 1, .. }));
        assert!(matches!(arm_t2.body[2], Stmt::IfCount { at_least: 2, .. }));
        // Arm for t3: fire t3, count(p3) += 2, while (count(p3) >= 1) { t5; count -= 1 }.
        let arm_t3 = arms
            .iter()
            .find(|a| net.transition_name(a.transition) == "t3")
            .unwrap();
        assert!(matches!(arm_t3.body[1], Stmt::IncCount { amount: 2, .. }));
        assert!(matches!(
            arm_t3.body[2],
            Stmt::WhileCount { at_least: 1, .. }
        ));
    }

    #[test]
    fn figure5_has_one_task_per_independent_input() {
        let net = gallery::figure5();
        let program = program_for(&net);
        assert_eq!(program.task_count(), 2);
        let names: Vec<&str> = program.tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["task_t1", "task_t8"]);
        // The t8 task handles the tick-like input: t8, t9, and the shared t6.
        let t8_task = &program.tasks[1];
        let fired = t8_task.transitions();
        let fired_names: Vec<&str> = fired.iter().map(|&t| net.transition_name(t)).collect();
        assert_eq!(fired_names, vec!["t8", "t9", "t6"]);
        // t6 is shared between both tasks (merge place p4), as the paper notes.
        let t1_task = &program.tasks[0];
        assert!(t1_task
            .transitions()
            .iter()
            .any(|&t| net.transition_name(t) == "t6"));
    }

    #[test]
    fn figure3a_tasks_have_no_counters() {
        let net = gallery::figure3a();
        let program = program_for(&net);
        assert_eq!(program.task_count(), 1);
        assert!(program.counter_places.is_empty());
        let task = &program.tasks[0];
        // fire t1; if choice { t2; t4 } else { t3; t5 } — 6 IR statements.
        assert_eq!(task.size(), 6);
        assert_eq!(task.depth(), 2);
    }

    #[test]
    fn marked_graph_yields_single_linear_task() {
        let net = gallery::figure2();
        let program = program_for(&net);
        assert_eq!(program.task_count(), 1);
        let task = &program.tasks[0];
        // t1 plain, then t2 nested in a guard on p1, then t3 nested in a guard on p2.
        assert!(matches!(task.body[0], Stmt::Fire(_)));
        assert_eq!(task.depth(), 3);
        let fired_names: Vec<&str> = task
            .transitions()
            .iter()
            .map(|&t| net.transition_name(t))
            .collect();
        assert_eq!(fired_names, vec!["t1", "t2", "t3"]);
    }

    #[test]
    fn empty_schedule_is_rejected() {
        let net = gallery::figure2();
        let empty = ValidSchedule { cycles: vec![] };
        assert_eq!(
            synthesize(&net, &empty, SynthesisOptions::default()).unwrap_err(),
            CodegenError::EmptySchedule
        );
    }

    #[test]
    fn counter_places_are_weighted_or_merge_places() {
        let net = gallery::figure5();
        let program = program_for(&net);
        let counters: Vec<&str> = program
            .counter_places
            .iter()
            .map(|&p| net.place_name(p))
            .collect();
        // p2 (weight 2), p4 (merge + weight 2), p5 and p6 (weight 2); p1 is a choice, p3
        // and p7 are unit-rate single-producer places.
        assert_eq!(counters, vec!["p2", "p4", "p5", "p6"]);
    }
}
