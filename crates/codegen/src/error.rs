//! Errors reported by the software synthesis stage.

use fcpn_petri::{PetriError, PlaceId, TransitionId};
use std::fmt;

/// Errors produced while partitioning tasks, building the task IR or executing it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodegenError {
    /// The valid schedule contains no cycles, so there is nothing to synthesise.
    EmptySchedule,
    /// A cycle in the schedule does not cover the source transition that a task is rooted
    /// at, which breaks the per-input task partitioning.
    MissingSlice {
        /// The source transition with no slice in some cycle.
        source: TransitionId,
    },
    /// The interpreter was asked to run a task index that does not exist.
    UnknownTask(usize),
    /// While executing generated code a counter (software buffer) went negative, which
    /// means the generated guards do not protect a multirate place correctly.
    NegativeCounter {
        /// The place whose counter underflowed.
        place: PlaceId,
    },
    /// A `Choice` statement has no arms, so there is nothing a resolver could pick.
    EmptyChoice {
        /// The choice place with no arms.
        place: PlaceId,
    },
    /// A choice resolver returned a transition that is not an arm of the choice.
    InvalidChoiceResolution {
        /// The choice place being resolved.
        place: PlaceId,
        /// The transition the resolver returned.
        chosen: TransitionId,
    },
    /// An underlying Petri-net operation failed.
    Petri(PetriError),
    /// Executing generated code was abandoned because a charge against the session's
    /// [`MemoryBudget`](fcpn_petri::MemoryBudget) failed — a caller-imposed resource
    /// decision, not a property of the program. The session stays usable.
    ResourceExhausted(fcpn_petri::ResourceExhausted),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::EmptySchedule => write!(f, "valid schedule has no cycles"),
            CodegenError::MissingSlice { source } => {
                write!(f, "schedule has no slice for source transition {source}")
            }
            CodegenError::UnknownTask(i) => write!(f, "unknown task index {i}"),
            CodegenError::NegativeCounter { place } => {
                write!(f, "counter for place {place} went negative")
            }
            CodegenError::EmptyChoice { place } => {
                write!(f, "choice at place {place} has no arms")
            }
            CodegenError::InvalidChoiceResolution { place, chosen } => {
                write!(
                    f,
                    "transition {chosen} is not an arm of the choice at {place}"
                )
            }
            CodegenError::Petri(e) => write!(f, "petri net error: {e}"),
            CodegenError::ResourceExhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Petri(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for CodegenError {
    fn from(e: PetriError) -> Self {
        CodegenError::Petri(e)
    }
}

impl From<fcpn_petri::ResourceExhausted> for CodegenError {
    fn from(e: fcpn_petri::ResourceExhausted) -> Self {
        CodegenError::ResourceExhausted(e)
    }
}

/// Result alias for the crate.
pub type Result<T, E = CodegenError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CodegenError::EmptySchedule
            .to_string()
            .contains("no cycles"));
        let e = CodegenError::NegativeCounter {
            place: PlaceId::new(3),
        };
        assert!(e.to_string().contains("p3"));
        let e = CodegenError::InvalidChoiceResolution {
            place: PlaceId::new(1),
            chosen: TransitionId::new(2),
        };
        assert!(e.to_string().contains("t2"));
        let e = CodegenError::EmptyChoice {
            place: PlaceId::new(5),
        };
        assert!(e.to_string().contains("p5"));
        assert!(e.to_string().contains("no arms"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<CodegenError>();
    }
}
