//! # fcpn-codegen — software synthesis from quasi-static schedules
//!
//! The back end of the reproduction of *Synthesis of Embedded Software Using Free-Choice
//! Petri Nets* (DAC 1999): given a [`fcpn_qss::ValidSchedule`], it partitions the system
//! into one task per input with independent firing rate, builds a structured task IR
//! ([`Program`], [`Task`], [`Stmt`]) with if/else for data-dependent choices and counting
//! variables for multirate places, renders it to C ([`emit_c`]), and can execute it
//! directly — either with the tree-walking [`Interpreter`] (the pinned oracle) or with
//! the flat-bytecode streaming runtime ([`CompiledProgram`] + [`ExecSession`]) — so the
//! generated code can be validated against the token game and fed to the RTOS simulator.
//!
//! ```
//! use fcpn_petri::gallery;
//! use fcpn_qss::{quasi_static_schedule, QssOptions};
//! use fcpn_codegen::{synthesize, CodeMetrics, SynthesisOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = gallery::figure4();
//! let schedule = quasi_static_schedule(&net, &QssOptions::default())?.schedule().unwrap();
//! let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
//! let metrics = CodeMetrics::of(&program, &net);
//! assert_eq!(metrics.tasks, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod build;
mod c_emit;
mod error;
mod exec;
mod interp;
mod metrics;
mod rust_emit;
mod task_ir;

pub use build::{synthesize, SynthesisOptions};
pub use c_emit::{emit_c, CEmitOptions};
pub use error::{CodegenError, Result};
pub use exec::{CompiledProgram, ExecSession};
pub use interp::{ChoiceResolver, FixedResolver, Interpreter, InvocationTrace, RoundRobinResolver};
pub use metrics::CodeMetrics;
pub use rust_emit::{emit_rust, RustEmitOptions};
pub use task_ir::{ChoiceArm, Program, Stmt, Task};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
        assert_send_sync::<Stmt>();
        assert_send_sync::<CodegenError>();
        assert_send_sync::<CodeMetrics>();
    }
}
