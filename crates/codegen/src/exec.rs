//! The compiled schedule executor: the task IR lowered to flat bytecode and pumped
//! through pre-allocated buffers.
//!
//! [`crate::Interpreter`] walks the [`Stmt`] tree directly (and clones every block it
//! enters), which is the right shape for an oracle but not for a runtime. This module is
//! the production path: [`CompiledProgram::compile`] lowers each task once into a flat
//! array of [`Op`]s with **resolved jump offsets** — `Choice` arms become an arm table
//! plus jumps, `IfCount`/`WhileCount` guards become conditional branches — and places
//! implemented as software counters are assigned **dense slots** in one pre-sized
//! buffer pool. [`ExecSession`] then owns every run-time buffer (counter pool, peak
//! tracking, fire counts, the fire log, the resolver's candidate scratch) so that
//! pumping events through the schedule performs **no allocation after setup**:
//! [`ExecSession::run_batch`] drives N task activations per call and returns the reused
//! fire-log buffer.
//!
//! The executor is pinned bit-for-bit against the tree-walking interpreter — same fire
//! logs, same counters, same peaks, same resolver call sequence — by
//! `tests/exec_equivalence.rs`, and `fcpn-rtos` can run its cycle-cost accounting on
//! either backend.
//!
//! ```
//! use fcpn_petri::gallery;
//! use fcpn_qss::{quasi_static_schedule, QssOptions};
//! use fcpn_codegen::{synthesize, CompiledProgram, ExecSession, RoundRobinResolver,
//!                    SynthesisOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = gallery::figure4();
//! let schedule = quasi_static_schedule(&net, &QssOptions::default())?.schedule().unwrap();
//! let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
//! let compiled = CompiledProgram::compile(&program, &net);
//! let mut session = ExecSession::new(&compiled);
//! let mut resolver = RoundRobinResolver::default();
//! let fired = session.run_batch(0, 100, &mut resolver)?;
//! assert!(!fired.is_empty());
//! assert_eq!(session.invocations(), 100);
//! # Ok(())
//! # }
//! ```

use crate::{ChoiceResolver, CodegenError, Program, Result, Stmt};
use fcpn_petri::{MemoryBudget, PetriNet, PlaceId, TransitionId};

/// Budget stage reported when growing the fire log exceeds the session's budget.
const STAGE_FIRE_LOG: &str = "fire-log";

/// Sentinel for "this place has no counter slot".
const NO_SLOT: u32 = u32::MAX;

/// One flat bytecode instruction. Jump targets are absolute program counters within the
/// owning task's code array; counter operands are dense slots into the session's
/// buffer pool, resolved at compile time so the hot loop never maps a [`PlaceId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Record one firing of the transition (the "call the user's C function" step).
    Fire(TransitionId),
    /// `pool[slot] += amount`, tracking the peak (an `IncCount`).
    Add { slot: u32, amount: i64 },
    /// `pool[slot] -= amount`, failing typed on underflow (a `DecCount`).
    Sub { slot: u32, amount: i64 },
    /// `if pool[slot] < at_least { pc = target }` — the compiled form of an
    /// `IfCount`/`WhileCount` guard test.
    JumpIfLess {
        slot: u32,
        at_least: i64,
        target: u32,
    },
    /// Unconditional branch (loop back-edge or arm exit).
    Jump { target: u32 },
    /// Resolve the choice described by the indexed [`ChoiceTableEntry`] and branch to
    /// the chosen arm's body.
    Choice { entry: u32 },
}

/// Compile-time description of one `Choice` site: the place whose run-time value is
/// inspected and the slice of the task's arm table holding `(transition, target)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChoiceTableEntry {
    place: PlaceId,
    arm_start: u32,
    arm_len: u32,
}

/// One task lowered to executable form: a flat code array plus its choice/arm side
/// tables. Falling off the end of `code` ends the invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CompiledTask {
    name: String,
    source: Option<TransitionId>,
    code: Vec<Op>,
    choices: Vec<ChoiceTableEntry>,
    /// `(arm transition, absolute target pc)`, grouped per choice via
    /// [`ChoiceTableEntry`] ranges. Arm order is the IR's arm order, so a resolver sees
    /// the exact candidate sequence the interpreter presents.
    arms: Vec<(TransitionId, u32)>,
}

/// A [`Program`] compiled to flat bytecode over a dense counter pool.
///
/// Compilation is a one-time cost; the result is immutable and can back any number of
/// concurrently running [`ExecSession`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    name: String,
    tasks: Vec<CompiledTask>,
    /// `place.index()` → dense counter slot, [`NO_SLOT`] for places without a counter.
    slot_of_place: Vec<u32>,
    /// Dense slot → place, for error reporting and per-place readback.
    place_of_slot: Vec<PlaceId>,
    transition_count: usize,
}

/// Incremental lowering state shared by all tasks of one program (the counter-slot
/// assignment must be program-wide because tasks share the buffer pool).
struct Lowering {
    slot_of_place: Vec<u32>,
    place_of_slot: Vec<PlaceId>,
}

impl Lowering {
    fn slot(&mut self, place: PlaceId) -> u32 {
        let entry = &mut self.slot_of_place[place.index()];
        if *entry == NO_SLOT {
            *entry = self.place_of_slot.len() as u32;
            self.place_of_slot.push(place);
        }
        *entry
    }

    fn lower_block(&mut self, block: &[Stmt], task: &mut CompiledTask) {
        for stmt in block {
            self.lower_stmt(stmt, task);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt, task: &mut CompiledTask) {
        match stmt {
            Stmt::Fire(t) => task.code.push(Op::Fire(*t)),
            Stmt::IncCount { place, amount } => {
                let slot = self.slot(*place);
                task.code.push(Op::Add {
                    slot,
                    amount: *amount as i64,
                });
            }
            Stmt::DecCount { place, amount } => {
                let slot = self.slot(*place);
                task.code.push(Op::Sub {
                    slot,
                    amount: *amount as i64,
                });
            }
            Stmt::Choice { place, arms } => {
                let entry = task.choices.len() as u32;
                task.code.push(Op::Choice { entry });
                let arm_start = task.arms.len() as u32;
                for arm in arms {
                    // Targets are patched below, once each arm's body has a pc.
                    task.arms.push((arm.transition, u32::MAX));
                }
                task.choices.push(ChoiceTableEntry {
                    place: *place,
                    arm_start,
                    arm_len: arms.len() as u32,
                });
                let mut exit_jumps = Vec::new();
                for (i, arm) in arms.iter().enumerate() {
                    task.arms[arm_start as usize + i].1 = task.code.len() as u32;
                    self.lower_block(&arm.body, task);
                    if i + 1 < arms.len() {
                        // All arms but the last jump over their siblings to the shared
                        // exit; the last one falls through to it.
                        exit_jumps.push(task.code.len());
                        task.code.push(Op::Jump { target: u32::MAX });
                    }
                }
                let exit = task.code.len() as u32;
                for pc in exit_jumps {
                    task.code[pc] = Op::Jump { target: exit };
                }
            }
            Stmt::IfCount {
                place,
                at_least,
                body,
            } => {
                let slot = self.slot(*place);
                let guard = task.code.len();
                task.code.push(Op::JumpIfLess {
                    slot,
                    at_least: *at_least as i64,
                    target: u32::MAX,
                });
                self.lower_block(body, task);
                let exit = task.code.len() as u32;
                if let Op::JumpIfLess { target, .. } = &mut task.code[guard] {
                    *target = exit;
                }
            }
            Stmt::WhileCount {
                place,
                at_least,
                body,
            } => {
                let slot = self.slot(*place);
                let test = task.code.len();
                task.code.push(Op::JumpIfLess {
                    slot,
                    at_least: *at_least as i64,
                    target: u32::MAX,
                });
                self.lower_block(body, task);
                task.code.push(Op::Jump {
                    target: test as u32,
                });
                let exit = task.code.len() as u32;
                if let Op::JumpIfLess { target, .. } = &mut task.code[test] {
                    *target = exit;
                }
            }
        }
    }
}

impl CompiledProgram {
    /// Lowers `program` to flat bytecode for a net with `net.place_count()` places.
    ///
    /// Counter slots are assigned to the program's declared counter places first (in
    /// ascending place order) and then, defensively, to any further place a count
    /// statement touches, so hand-built IR executes under the same rules as synthesised
    /// IR.
    pub fn compile(program: &Program, net: &PetriNet) -> CompiledProgram {
        let mut lowering = Lowering {
            slot_of_place: vec![NO_SLOT; net.place_count()],
            place_of_slot: Vec::with_capacity(program.counter_places.len()),
        };
        for &place in &program.counter_places {
            lowering.slot(place);
        }
        let tasks = program
            .tasks
            .iter()
            .map(|task| {
                let mut compiled = CompiledTask {
                    name: task.name.clone(),
                    source: task.source,
                    code: Vec::with_capacity(task.size()),
                    choices: Vec::new(),
                    arms: Vec::new(),
                };
                lowering.lower_block(&task.body, &mut compiled);
                compiled
            })
            .collect();
        CompiledProgram {
            name: program.name.clone(),
            tasks,
            slot_of_place: lowering.slot_of_place,
            place_of_slot: lowering.place_of_slot,
            transition_count: net.transition_count(),
        }
    }

    /// Program name (taken from the net at synthesis time).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compiled tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total number of bytecode instructions across tasks (jumps included).
    pub fn op_count(&self) -> usize {
        self.tasks.iter().map(|t| t.code.len()).sum()
    }

    /// Number of dense counter slots in the shared buffer pool.
    pub fn pool_size(&self) -> usize {
        self.place_of_slot.len()
    }

    /// The dense counter slot assigned to `place`, if it has one.
    pub fn slot_of(&self, place: PlaceId) -> Option<usize> {
        match self.slot_of_place.get(place.index()) {
            Some(&slot) if slot != NO_SLOT => Some(slot as usize),
            _ => None,
        }
    }

    /// Index of the task rooted at `source`, if any.
    pub fn task_for_source(&self, source: TransitionId) -> Option<usize> {
        self.tasks.iter().position(|t| t.source == Some(source))
    }

    /// Name of the task at `task_index`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn task_name(&self, task_index: usize) -> &str {
        &self.tasks[task_index].name
    }
}

/// A running instance of a [`CompiledProgram`]: the counter buffer pool plus cumulative
/// statistics, with every run-time buffer pre-allocated at construction.
///
/// The session mirrors the [`crate::Interpreter`] observables one for one — counters,
/// peak counters, fire counts, invocation count — and adds the reused fire log that
/// [`run_task`](ExecSession::run_task) / [`run_batch`](ExecSession::run_batch) return
/// slices of.
#[derive(Debug, Clone)]
pub struct ExecSession<'p> {
    compiled: &'p CompiledProgram,
    /// The shared buffer pool: one `i64` counter per dense slot.
    counters: Vec<i64>,
    peaks: Vec<i64>,
    fire_counts: Vec<u64>,
    invocations: u64,
    /// Reused across calls: cleared at the start of each `run_task`/`run_batch`.
    fire_log: Vec<TransitionId>,
    /// Reused scratch presented to the resolver (the choice candidates, in arm order).
    candidates: Vec<TransitionId>,
    /// Byte budget charged as the fire log grows past its previous high-water mark.
    memory: MemoryBudget,
    /// Fire-log entries already charged — the log's capacity is reused across runs, so
    /// only growth beyond the historical maximum costs new bytes.
    charged_log_entries: usize,
}

impl<'p> ExecSession<'p> {
    /// Creates a session with zeroed counters and statistics.
    pub fn new(compiled: &'p CompiledProgram) -> Self {
        ExecSession {
            compiled,
            counters: vec![0; compiled.pool_size()],
            peaks: vec![0; compiled.pool_size()],
            fire_counts: vec![0; compiled.transition_count],
            invocations: 0,
            fire_log: Vec::new(),
            candidates: Vec::new(),
            memory: MemoryBudget::unlimited(),
            charged_log_entries: 0,
        }
    }

    /// Attaches a [`MemoryBudget`], charged per entry whenever the fire log
    /// grows past its previous high-water mark — the one session buffer whose size is
    /// workload-dependent rather than fixed at construction. A failed charge aborts the
    /// current run with [`CodegenError::ResourceExhausted`] (stage `"fire-log"`); the
    /// session itself stays usable, and runs that fit within the already-paid-for
    /// high-water mark keep succeeding.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// The program this session executes.
    pub fn compiled(&self) -> &'p CompiledProgram {
        self.compiled
    }

    /// Current counter value of `place` (0 for places without a counter slot, exactly
    /// as the interpreter reports untouched counters).
    pub fn counter(&self, place: PlaceId) -> i64 {
        self.compiled
            .slot_of(place)
            .map_or(0, |slot| self.counters[slot])
    }

    /// Largest value the counter of `place` ever reached.
    pub fn peak_counter(&self, place: PlaceId) -> i64 {
        self.compiled
            .slot_of(place)
            .map_or(0, |slot| self.peaks[slot])
    }

    /// The dense peak pool (one entry per counter slot); the maximum over it equals the
    /// maximum over the interpreter's per-place peaks.
    pub fn peaks_dense(&self) -> &[i64] {
        &self.peaks
    }

    /// How many times each transition has fired since construction (or [`reset`]).
    ///
    /// [`reset`]: ExecSession::reset
    pub fn fire_counts(&self) -> &[u64] {
        &self.fire_counts
    }

    /// Total number of task activations executed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Zeroes counters, peaks, fire counts and the invocation total, keeping every
    /// buffer's capacity (the pool is reused, not reallocated).
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.peaks.fill(0);
        self.fire_counts.fill(0);
        self.invocations = 0;
        self.fire_log.clear();
    }

    /// Runs one invocation of the task at `task_index`, resolving choices with
    /// `resolver`, and returns the transitions fired by this invocation in execution
    /// order (a slice of the session's reused fire-log buffer — copy it out if it must
    /// survive the next run).
    ///
    /// # Errors
    ///
    /// * [`CodegenError::UnknownTask`] for an out-of-range index.
    /// * [`CodegenError::NegativeCounter`] if a counter underflows (a synthesis bug).
    /// * [`CodegenError::EmptyChoice`] for a choice with no arms.
    /// * [`CodegenError::InvalidChoiceResolution`] when the resolver picks a transition
    ///   that is not an arm of the choice — hostile resolvers get a typed error, never
    ///   a panic.
    pub fn run_task<R: ChoiceResolver + ?Sized>(
        &mut self,
        task_index: usize,
        resolver: &mut R,
    ) -> Result<&[TransitionId]> {
        let compiled = self.compiled;
        let task = compiled
            .tasks
            .get(task_index)
            .ok_or(CodegenError::UnknownTask(task_index))?;
        self.fire_log.clear();
        self.exec(task, resolver)?;
        self.invocations += 1;
        Ok(&self.fire_log)
    }

    /// Runs the task rooted at `source`, if any.
    ///
    /// # Errors
    ///
    /// Same as [`ExecSession::run_task`]; an unknown source maps to
    /// [`CodegenError::UnknownTask`].
    pub fn run_task_for_source<R: ChoiceResolver + ?Sized>(
        &mut self,
        source: TransitionId,
        resolver: &mut R,
    ) -> Result<&[TransitionId]> {
        let index = self
            .compiled
            .task_for_source(source)
            .ok_or(CodegenError::UnknownTask(usize::MAX))?;
        self.run_task(index, resolver)
    }

    /// The batch event pump: drives `activations` invocations of the task at
    /// `task_index` through the compiled code and returns every transition fired by the
    /// whole batch, in execution order, as one slice of the reused fire-log buffer.
    ///
    /// This is the line-rate entry point: one bounds check per batch, no allocation,
    /// counters carried across activations exactly as consecutive
    /// [`run_task`](ExecSession::run_task) calls would.
    ///
    /// # Errors
    ///
    /// Same as [`ExecSession::run_task`]. On error the session's counters reflect the
    /// activations completed before the failure.
    pub fn run_batch<R: ChoiceResolver + ?Sized>(
        &mut self,
        task_index: usize,
        activations: u64,
        resolver: &mut R,
    ) -> Result<&[TransitionId]> {
        let compiled = self.compiled;
        let task = compiled
            .tasks
            .get(task_index)
            .ok_or(CodegenError::UnknownTask(task_index))?;
        self.fire_log.clear();
        for _ in 0..activations {
            self.exec(task, resolver)?;
            self.invocations += 1;
        }
        Ok(&self.fire_log)
    }

    /// The bytecode dispatch loop: executes one invocation of `task`, appending fired
    /// transitions to the session fire log.
    fn exec<R: ChoiceResolver + ?Sized>(
        &mut self,
        task: &'p CompiledTask,
        resolver: &mut R,
    ) -> Result<()> {
        let code = &task.code;
        let mut pc = 0usize;
        while let Some(&op) = code.get(pc) {
            match op {
                Op::Fire(t) => {
                    if self.fire_log.len() >= self.charged_log_entries {
                        // Charge *before* growing past the paid-for high-water mark.
                        self.memory
                            .charge(std::mem::size_of::<TransitionId>() as u64, STAGE_FIRE_LOG)?;
                        self.charged_log_entries += 1;
                    }
                    self.fire_counts[t.index()] += 1;
                    self.fire_log.push(t);
                    pc += 1;
                }
                Op::Add { slot, amount } => {
                    let slot = slot as usize;
                    let value = self.counters[slot] + amount;
                    self.counters[slot] = value;
                    if value > self.peaks[slot] {
                        self.peaks[slot] = value;
                    }
                    pc += 1;
                }
                Op::Sub { slot, amount } => {
                    let slot = slot as usize;
                    let value = self.counters[slot] - amount;
                    if value < 0 {
                        return Err(CodegenError::NegativeCounter {
                            place: self.compiled.place_of_slot[slot],
                        });
                    }
                    self.counters[slot] = value;
                    pc += 1;
                }
                Op::JumpIfLess {
                    slot,
                    at_least,
                    target,
                } => {
                    pc = if self.counters[slot as usize] < at_least {
                        target as usize
                    } else {
                        pc + 1
                    };
                }
                Op::Jump { target } => pc = target as usize,
                Op::Choice { entry } => {
                    let entry = task.choices[entry as usize];
                    let arms = &task.arms
                        [entry.arm_start as usize..(entry.arm_start + entry.arm_len) as usize];
                    if arms.is_empty() {
                        return Err(CodegenError::EmptyChoice { place: entry.place });
                    }
                    self.candidates.clear();
                    self.candidates.extend(arms.iter().map(|&(t, _)| t));
                    let chosen = resolver.resolve(entry.place, &self.candidates);
                    match arms.iter().find(|&&(t, _)| t == chosen) {
                        Some(&(_, target)) => pc = target as usize,
                        None => {
                            return Err(CodegenError::InvalidChoiceResolution {
                                place: entry.place,
                                chosen,
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        synthesize, ChoiceArm, FixedResolver, Interpreter, RoundRobinResolver, SynthesisOptions,
        Task,
    };
    use fcpn_petri::gallery;
    use fcpn_qss::{quasi_static_schedule, QssOptions};

    fn program_for(net: &PetriNet) -> Program {
        let schedule = quasi_static_schedule(net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        synthesize(net, &schedule, SynthesisOptions::default()).unwrap()
    }

    #[test]
    fn compiled_layout_is_flat_and_counters_are_dense() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        assert_eq!(compiled.task_count(), 1);
        // Jumps add instructions beyond the IR statement count, but the code stays flat
        // and small.
        assert!(compiled.op_count() >= program.size());
        // Exactly the program's counter places get slots, densely packed.
        assert_eq!(compiled.pool_size(), program.counter_places.len());
        for (i, &place) in program.counter_places.iter().enumerate() {
            assert_eq!(compiled.slot_of(place), Some(i));
        }
        let p1 = net.place_by_name("p1").unwrap(); // choice place: no slot
        assert_eq!(compiled.slot_of(p1), None);
    }

    #[test]
    fn batch_pump_matches_repeated_single_invocations() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);

        let mut singles = ExecSession::new(&compiled);
        let mut single_log = Vec::new();
        let mut resolver = RoundRobinResolver::default();
        for _ in 0..50 {
            single_log.extend_from_slice(singles.run_task(0, &mut resolver).unwrap());
        }

        let mut batch = ExecSession::new(&compiled);
        let mut resolver = RoundRobinResolver::default();
        let batch_log = batch.run_batch(0, 50, &mut resolver).unwrap().to_vec();
        assert_eq!(single_log, batch_log);
        assert_eq!(singles.fire_counts(), batch.fire_counts());
        assert_eq!(singles.invocations(), batch.invocations());
        for p in net.places() {
            assert_eq!(singles.counter(p), batch.counter(p));
            assert_eq!(singles.peak_counter(p), batch.peak_counter(p));
        }
    }

    #[test]
    fn executor_matches_interpreter_on_figure4() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        let mut interp = Interpreter::new(&program, &net);
        let mut exec_resolver = RoundRobinResolver::default();
        let mut interp_resolver = RoundRobinResolver::default();
        for _ in 0..100 {
            let trace = interp.run_task(0, &mut interp_resolver).unwrap();
            let fired = session.run_task(0, &mut exec_resolver).unwrap();
            assert_eq!(trace.fired, fired);
        }
        assert_eq!(interp.fire_counts(), session.fire_counts());
        for p in net.places() {
            assert_eq!(interp.counter(p), session.counter(p));
            assert_eq!(interp.peak_counters()[p.index()], session.peak_counter(p));
        }
    }

    #[test]
    fn unknown_task_and_source_are_reported() {
        let net = gallery::figure2();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        let mut resolver = FixedResolver::default();
        assert!(matches!(
            session.run_task(9, &mut resolver),
            Err(CodegenError::UnknownTask(9))
        ));
        assert!(matches!(
            session.run_batch(9, 3, &mut resolver),
            Err(CodegenError::UnknownTask(9))
        ));
        let bogus = TransitionId::new(77);
        assert!(matches!(
            session.run_task_for_source(bogus, &mut resolver),
            Err(CodegenError::UnknownTask(_))
        ));
    }

    #[test]
    fn hostile_resolver_pick_is_a_typed_error() {
        let net = gallery::figure3a();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        // A resolver that ignores the candidates and returns an out-of-range id.
        let mut hostile = |_place: PlaceId, _candidates: &[TransitionId]| TransitionId::new(10_000);
        let err = session.run_task(0, &mut hostile).unwrap_err();
        assert!(matches!(err, CodegenError::InvalidChoiceResolution { .. }));
    }

    #[test]
    fn empty_choice_is_a_typed_error() {
        let net = gallery::figure3a();
        let program = Program {
            name: "empty-choice".to_string(),
            tasks: vec![Task {
                name: "task".to_string(),
                source: None,
                body: vec![Stmt::Choice {
                    place: PlaceId::new(0),
                    arms: vec![],
                }],
            }],
            counter_places: vec![],
        };
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        let mut resolver = FixedResolver::default();
        assert_eq!(
            session.run_task(0, &mut resolver).unwrap_err(),
            CodegenError::EmptyChoice {
                place: PlaceId::new(0)
            }
        );
    }

    #[test]
    fn reset_restores_a_fresh_session() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        let mut resolver = RoundRobinResolver::default();
        let first = session.run_batch(0, 20, &mut resolver).unwrap().to_vec();
        session.reset();
        assert_eq!(session.invocations(), 0);
        assert!(session.fire_counts().iter().all(|&c| c == 0));
        let mut resolver = RoundRobinResolver::default();
        let again = session.run_batch(0, 20, &mut resolver).unwrap().to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn hand_built_counter_ir_gets_a_lazy_slot() {
        // An IR touching a counter place the program does not declare still executes:
        // the compiler assigns the slot lazily.
        let net = gallery::figure2();
        let p0 = PlaceId::new(0);
        let program = Program {
            name: "lazy".to_string(),
            tasks: vec![Task {
                name: "task".to_string(),
                source: None,
                body: vec![
                    Stmt::IncCount {
                        place: p0,
                        amount: 3,
                    },
                    Stmt::WhileCount {
                        place: p0,
                        at_least: 2,
                        body: vec![Stmt::DecCount {
                            place: p0,
                            amount: 2,
                        }],
                    },
                ],
            }],
            counter_places: vec![],
        };
        let compiled = CompiledProgram::compile(&program, &net);
        assert_eq!(compiled.pool_size(), 1);
        let mut session = ExecSession::new(&compiled);
        let mut resolver = FixedResolver::default();
        session.run_task(0, &mut resolver).unwrap();
        assert_eq!(session.counter(p0), 1);
        assert_eq!(session.peak_counter(p0), 3);
    }

    #[test]
    fn exhausted_fire_log_budget_is_typed_and_leaves_the_session_usable() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let compiled = CompiledProgram::compile(&program, &net);

        // A fixed resolver makes every invocation log the same entry count; find it,
        // then fund exactly one run's worth.
        let mut probe = ExecSession::new(&compiled);
        let mut resolver = FixedResolver::default();
        let per_run = probe.run_task(0, &mut resolver).unwrap().len();
        assert!(per_run > 0);
        let entry = std::mem::size_of::<TransitionId>() as u64;
        let budget = fcpn_petri::MemoryBudget::with_limit(per_run as u64 * entry);

        let mut session = ExecSession::new(&compiled).with_memory(budget.clone());
        let mut resolver = FixedResolver::default();
        // One run fits the paid-for high-water mark exactly.
        assert_eq!(session.run_task(0, &mut resolver).unwrap().len(), per_run);
        // A batch of two must grow the log past it: typed error, no panic.
        let err = session.run_batch(0, 2, &mut resolver).unwrap_err();
        match err {
            CodegenError::ResourceExhausted(e) => {
                assert_eq!(e.stage, "fire-log");
                assert_eq!(e.limit_bytes, budget.limit_bytes().unwrap());
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // The session stays usable: after a reset (which keeps the paid-for capacity),
        // runs within the high-water mark keep working.
        session.reset();
        let mut resolver = FixedResolver::default();
        let fired = session.run_task(0, &mut resolver).unwrap();
        assert_eq!(fired.len(), per_run);
    }

    #[test]
    fn choice_arms_fall_through_to_shared_exit() {
        // Both arms must converge on the statement after the choice exactly once.
        let net = gallery::figure3a();
        let t9 = TransitionId::new(net.transition_count() - 1);
        let program = Program {
            name: "converge".to_string(),
            tasks: vec![Task {
                name: "task".to_string(),
                source: None,
                body: vec![
                    Stmt::Choice {
                        place: PlaceId::new(0),
                        arms: vec![
                            ChoiceArm {
                                transition: TransitionId::new(1),
                                body: vec![Stmt::Fire(TransitionId::new(1))],
                            },
                            ChoiceArm {
                                transition: TransitionId::new(2),
                                body: vec![Stmt::Fire(TransitionId::new(2))],
                            },
                        ],
                    },
                    Stmt::Fire(t9),
                ],
            }],
            counter_places: vec![],
        };
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        for arm in 0..2usize {
            let mut resolver = FixedResolver { arm };
            let fired = session.run_task(0, &mut resolver).unwrap();
            assert_eq!(fired.len(), 2, "arm {arm}: {fired:?}");
            assert_eq!(fired[1], t9, "arm {arm}");
        }
    }
}
