//! An interpreter for the task IR.
//!
//! The interpreter executes synthesised tasks exactly as the generated C would: counters
//! are global software buffers shared by all tasks, choices are resolved by a caller
//! supplied policy (the "token value" the real system would inspect), and every executed
//! `Fire` is recorded. Tests use it to check that the generated code preserves the
//! schedule's guarantees — counters stay non-negative and bounded, and firing rates match
//! the valid schedule — and the RTOS simulator uses the fire log for its cycle-cost
//! accounting.

use crate::{CodegenError, Program, Result, Stmt, Task};
use fcpn_petri::{PetriNet, PlaceId, TransitionId};

/// Resolves data-dependent choices while interpreting a task.
///
/// The resolver is called with the choice place and the candidate transitions (the arms)
/// and must return one of the candidates.
pub trait ChoiceResolver {
    /// Picks the arm to execute for the choice at `place`.
    fn resolve(&mut self, place: PlaceId, candidates: &[TransitionId]) -> TransitionId;
}

/// Always selects the same arm index (useful for worst-case analysis and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedResolver {
    /// Index of the arm to pick (clamped to the number of arms).
    pub arm: usize,
}

impl ChoiceResolver for FixedResolver {
    fn resolve(&mut self, _place: PlaceId, candidates: &[TransitionId]) -> TransitionId {
        // An empty candidate slice can only come from direct misuse of the trait (the
        // interpreter and executor reject empty choices before calling any resolver).
        // Return a sentinel the caller's arm lookup will reject with a typed
        // `InvalidChoiceResolution` instead of panicking on index underflow.
        candidates
            .get(self.arm.min(candidates.len().saturating_sub(1)))
            .copied()
            .unwrap_or(TransitionId::new(usize::MAX))
    }
}

/// Cycles deterministically through the arms of every choice (round robin), exercising
/// all branches over a long run.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinResolver {
    counter: usize,
}

impl ChoiceResolver for RoundRobinResolver {
    fn resolve(&mut self, _place: PlaceId, candidates: &[TransitionId]) -> TransitionId {
        let pick = candidates[self.counter % candidates.len()];
        self.counter += 1;
        pick
    }
}

impl<F> ChoiceResolver for F
where
    F: FnMut(PlaceId, &[TransitionId]) -> TransitionId,
{
    fn resolve(&mut self, place: PlaceId, candidates: &[TransitionId]) -> TransitionId {
        self(place, candidates)
    }
}

/// Execution statistics of one task invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvocationTrace {
    /// Transitions fired by this invocation, in execution order.
    pub fired: Vec<TransitionId>,
}

/// The interpreter state: counter values shared across tasks plus cumulative statistics.
#[derive(Debug, Clone)]
pub struct Interpreter<'a> {
    program: &'a Program,
    counters: Vec<i64>,
    peak_counters: Vec<i64>,
    fire_counts: Vec<u64>,
    invocations: u64,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter for `program` over a net with `net.place_count()` places and
    /// `net.transition_count()` transitions.
    pub fn new(program: &'a Program, net: &PetriNet) -> Self {
        Interpreter {
            program,
            counters: vec![0; net.place_count()],
            peak_counters: vec![0; net.place_count()],
            fire_counts: vec![0; net.transition_count()],
            invocations: 0,
        }
    }

    /// Current counter value of `place`.
    pub fn counter(&self, place: PlaceId) -> i64 {
        self.counters[place.index()]
    }

    /// Largest value each counter ever reached (software buffer bound actually used).
    pub fn peak_counters(&self) -> &[i64] {
        &self.peak_counters
    }

    /// How many times each transition has fired since construction.
    pub fn fire_counts(&self) -> &[u64] {
        &self.fire_counts
    }

    /// Total number of task invocations executed.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Runs one invocation of the task at `task_index`, resolving choices with `resolver`.
    ///
    /// # Errors
    ///
    /// * [`CodegenError::UnknownTask`] for an out-of-range index.
    /// * [`CodegenError::NegativeCounter`] if the generated guards fail to protect a
    ///   counter (this indicates a synthesis bug and is asserted against in tests).
    pub fn run_task<R: ChoiceResolver + ?Sized>(
        &mut self,
        task_index: usize,
        resolver: &mut R,
    ) -> Result<InvocationTrace> {
        let task: &Task = self
            .program
            .tasks
            .get(task_index)
            .ok_or(CodegenError::UnknownTask(task_index))?;
        let mut trace = InvocationTrace::default();
        let body = task.body.clone();
        self.run_block(&body, resolver, &mut trace)?;
        self.invocations += 1;
        Ok(trace)
    }

    /// Runs the task rooted at `source`, if any.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::run_task`]; an unknown source maps to
    /// [`CodegenError::UnknownTask`].
    pub fn run_task_for_source<R: ChoiceResolver + ?Sized>(
        &mut self,
        source: TransitionId,
        resolver: &mut R,
    ) -> Result<InvocationTrace> {
        let index = self
            .program
            .tasks
            .iter()
            .position(|t| t.source == Some(source))
            .ok_or(CodegenError::UnknownTask(usize::MAX))?;
        self.run_task(index, resolver)
    }

    fn run_block<R: ChoiceResolver + ?Sized>(
        &mut self,
        block: &[Stmt],
        resolver: &mut R,
        trace: &mut InvocationTrace,
    ) -> Result<()> {
        for stmt in block {
            self.run_stmt(stmt, resolver, trace)?;
        }
        Ok(())
    }

    fn run_stmt<R: ChoiceResolver + ?Sized>(
        &mut self,
        stmt: &Stmt,
        resolver: &mut R,
        trace: &mut InvocationTrace,
    ) -> Result<()> {
        match stmt {
            Stmt::Fire(t) => {
                self.fire_counts[t.index()] += 1;
                trace.fired.push(*t);
            }
            Stmt::IncCount { place, amount } => {
                let slot = &mut self.counters[place.index()];
                *slot += *amount as i64;
                if *slot > self.peak_counters[place.index()] {
                    self.peak_counters[place.index()] = *slot;
                }
            }
            Stmt::DecCount { place, amount } => {
                let slot = &mut self.counters[place.index()];
                *slot -= *amount as i64;
                if *slot < 0 {
                    return Err(CodegenError::NegativeCounter { place: *place });
                }
            }
            Stmt::Choice { place, arms } => {
                if arms.is_empty() {
                    return Err(CodegenError::EmptyChoice { place: *place });
                }
                let candidates: Vec<TransitionId> = arms.iter().map(|a| a.transition).collect();
                let chosen = resolver.resolve(*place, &candidates);
                let arm = arms.iter().find(|a| a.transition == chosen).ok_or(
                    CodegenError::InvalidChoiceResolution {
                        place: *place,
                        chosen,
                    },
                )?;
                let body = arm.body.clone();
                self.run_block(&body, resolver, trace)?;
            }
            Stmt::IfCount {
                place,
                at_least,
                body,
            } => {
                if self.counters[place.index()] >= *at_least as i64 {
                    let body = body.clone();
                    self.run_block(&body, resolver, trace)?;
                }
            }
            Stmt::WhileCount {
                place,
                at_least,
                body,
            } => {
                while self.counters[place.index()] >= *at_least as i64 {
                    let body = body.clone();
                    self.run_block(&body, resolver, trace)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fcpn_petri::gallery;
    use fcpn_qss::{quasi_static_schedule, QssOptions};

    fn program_for(net: &fcpn_petri::PetriNet) -> Program {
        let schedule = quasi_static_schedule(net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        synthesize(net, &schedule, SynthesisOptions::default()).unwrap()
    }

    #[test]
    fn figure2_task_preserves_rates() {
        // Per 4 invocations (4 input samples), t2 must run twice and t3 once.
        let net = gallery::figure2();
        let program = program_for(&net);
        let mut interp = Interpreter::new(&program, &net);
        let mut resolver = FixedResolver::default();
        for _ in 0..4 {
            interp.run_task(0, &mut resolver).unwrap();
        }
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        assert_eq!(interp.fire_counts()[t1.index()], 4);
        assert_eq!(interp.fire_counts()[t2.index()], 2);
        assert_eq!(interp.fire_counts()[t3.index()], 1);
        // After a whole period the counters are back to zero (bounded memory).
        assert_eq!(interp.counter(net.place_by_name("p1").unwrap()), 0);
        assert_eq!(interp.counter(net.place_by_name("p2").unwrap()), 0);
    }

    #[test]
    fn figure4_matches_paper_c_semantics() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let mut interp = Interpreter::new(&program, &net);
        let t2 = net.transition_by_name("t2").unwrap();
        let t4 = net.transition_by_name("t4").unwrap();
        let t5 = net.transition_by_name("t5").unwrap();
        // Always take the t2 branch: t4 fires every second invocation.
        let mut take_t2 = FixedResolver { arm: 0 };
        for _ in 0..6 {
            interp.run_task(0, &mut take_t2).unwrap();
        }
        assert_eq!(interp.fire_counts()[t2.index()], 6);
        assert_eq!(interp.fire_counts()[t4.index()], 3);
        // Now always take the t3 branch: each invocation produces two t5 firings.
        let mut take_t3 = FixedResolver { arm: 1 };
        for _ in 0..3 {
            interp.run_task(0, &mut take_t3).unwrap();
        }
        assert_eq!(interp.fire_counts()[t5.index()], 6);
        // Counters never exceeded the schedule's buffer bound of 2.
        let p2 = net.place_by_name("p2").unwrap();
        let p3 = net.place_by_name("p3").unwrap();
        assert!(interp.peak_counters()[p2.index()] <= 2);
        assert!(interp.peak_counters()[p3.index()] <= 2);
    }

    #[test]
    fn figure4_alternating_choices_stay_bounded() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let mut interp = Interpreter::new(&program, &net);
        let mut resolver = RoundRobinResolver::default();
        for _ in 0..100 {
            interp.run_task(0, &mut resolver).unwrap();
        }
        // The paper notes a token can linger in p2 while the other branch runs, but the
        // count never grows without bound (it is consumed as soon as it reaches 2).
        for &peak in interp.peak_counters() {
            assert!(peak <= 2, "peak counter {peak} exceeded bound");
        }
        assert_eq!(interp.invocations(), 100);
    }

    #[test]
    fn figure5_two_tasks_share_the_merge_counter() {
        let net = gallery::figure5();
        let program = program_for(&net);
        let mut interp = Interpreter::new(&program, &net);
        let t1 = net.transition_by_name("t1").unwrap();
        let t8 = net.transition_by_name("t8").unwrap();
        let t6 = net.transition_by_name("t6").unwrap();
        let mut resolver = RoundRobinResolver::default();
        for _ in 0..10 {
            interp.run_task_for_source(t1, &mut resolver).unwrap();
            interp.run_task_for_source(t8, &mut resolver).unwrap();
        }
        // Each t8 event contributes exactly one t6 firing; each t1 event taking the t2
        // branch contributes four. With round-robin choices, 5 of the 10 t1 events take
        // the t2 branch: 5 * 4 + 10 = 30.
        assert_eq!(interp.fire_counts()[t6.index()], 30);
        // All counters bounded.
        for &peak in interp.peak_counters() {
            assert!(peak <= 4);
        }
    }

    #[test]
    fn unknown_task_is_reported() {
        let net = gallery::figure2();
        let program = program_for(&net);
        let mut interp = Interpreter::new(&program, &net);
        let mut resolver = FixedResolver::default();
        assert!(matches!(
            interp.run_task(7, &mut resolver),
            Err(CodegenError::UnknownTask(7))
        ));
    }

    #[test]
    fn fixed_resolver_survives_an_empty_candidate_slice() {
        // Direct misuse of the trait must not panic with an index underflow; the
        // sentinel it returns fails the arm lookup as a typed error instead.
        let mut resolver = FixedResolver { arm: 3 };
        let pick = resolver.resolve(PlaceId::new(0), &[]);
        assert_eq!(pick, TransitionId::new(usize::MAX));
    }

    #[test]
    fn empty_choice_is_rejected_before_the_resolver_runs() {
        let net = gallery::figure2();
        let program = Program {
            name: "empty-choice".to_string(),
            tasks: vec![crate::Task {
                name: "task".to_string(),
                source: None,
                body: vec![Stmt::Choice {
                    place: PlaceId::new(1),
                    arms: vec![],
                }],
            }],
            counter_places: vec![],
        };
        let mut interp = Interpreter::new(&program, &net);
        // A resolver that panics if consulted: the guard must fire first.
        let mut resolver = |_: PlaceId, _: &[TransitionId]| -> TransitionId {
            panic!("resolver must not be called for an empty choice")
        };
        assert_eq!(
            interp.run_task(0, &mut resolver).unwrap_err(),
            CodegenError::EmptyChoice {
                place: PlaceId::new(1)
            }
        );
    }

    #[test]
    fn closure_resolver_is_accepted() {
        let net = gallery::figure3a();
        let program = program_for(&net);
        let mut interp = Interpreter::new(&program, &net);
        let t3 = net.transition_by_name("t3").unwrap();
        let mut resolver =
            move |_place: PlaceId, candidates: &[TransitionId]| *candidates.last().unwrap();
        let trace = interp.run_task(0, &mut resolver).unwrap();
        assert!(trace.fired.contains(&t3));
    }
}
