//! Code metrics: the static columns of the paper's Table I (number of tasks and lines of
//! C code).

use crate::{CEmitOptions, Program};
use fcpn_petri::PetriNet;

/// Static metrics of a synthesised implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeMetrics {
    /// Number of software tasks (Table I row "Number of tasks").
    pub tasks: usize,
    /// Non-blank lines of the emitted C translation unit (Table I row "Lines of C code").
    pub lines_of_c: usize,
    /// Number of IR statements (a compiler-independent size proxy).
    pub ir_statements: usize,
    /// Maximum nesting depth across tasks.
    pub max_nesting: usize,
    /// Flat bytecode instructions after compiling the IR with
    /// [`crate::CompiledProgram::compile`] (jumps included — the executable footprint of
    /// the streaming runtime).
    pub bytecode_ops: usize,
}

impl CodeMetrics {
    /// Computes the metrics of `program` for the given net.
    pub fn of(program: &Program, net: &PetriNet) -> Self {
        let c = crate::emit_c(program, net, CEmitOptions::default());
        let compiled = crate::CompiledProgram::compile(program, net);
        CodeMetrics {
            tasks: program.task_count(),
            lines_of_c: c.lines().filter(|l| !l.trim().is_empty()).count(),
            ir_statements: program.size(),
            max_nesting: program.tasks.iter().map(|t| t.depth()).max().unwrap_or(0),
            bytecode_ops: compiled.op_count(),
        }
    }
}

impl std::fmt::Display for CodeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} task(s), {} lines of C, {} IR statements, nesting {}, {} bytecode ops",
            self.tasks, self.lines_of_c, self.ir_statements, self.max_nesting, self.bytecode_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthesisOptions};
    use fcpn_petri::gallery;
    use fcpn_qss::{quasi_static_schedule, QssOptions};

    fn metrics_for(net: &PetriNet) -> CodeMetrics {
        let schedule = quasi_static_schedule(net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        let program = synthesize(net, &schedule, SynthesisOptions::default()).unwrap();
        CodeMetrics::of(&program, net)
    }

    #[test]
    fn figure4_metrics_are_consistent() {
        let net = gallery::figure4();
        let m = metrics_for(&net);
        assert_eq!(m.tasks, 1);
        assert!(m.lines_of_c > 10);
        assert!(m.ir_statements >= 8);
        assert!(m.max_nesting >= 3);
        // The compiled form adds jump instructions on top of the IR statements.
        assert!(m.bytecode_ops >= m.ir_statements);
        assert!(m.to_string().contains("1 task(s)"));
        assert!(m.to_string().contains("bytecode ops"));
    }

    #[test]
    fn figure5_is_larger_than_figure4() {
        let f4 = metrics_for(&gallery::figure4());
        let f5 = metrics_for(&gallery::figure5());
        assert!(f5.tasks > f4.tasks);
        assert!(f5.lines_of_c > f4.lines_of_c);
        assert!(f5.ir_statements > f4.ir_statements);
    }

    #[test]
    fn code_size_grows_linearly_with_choice_chain_length() {
        // The paper's complexity claim: generated code is linear in the size of the net,
        // even though the number of T-reductions is exponential.
        let sizes: Vec<usize> = [2usize, 4, 8]
            .iter()
            .map(|&n| metrics_for(&gallery::choice_chain(n)).ir_statements)
            .collect();
        // Doubling the chain roughly doubles the code, far from the 2^n reduction count.
        assert!(sizes[1] < sizes[0] * 3);
        assert!(sizes[2] < sizes[1] * 3);
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
    }
}
