//! The task intermediate representation produced by software synthesis.
//!
//! A [`Program`] is a set of [`Task`]s, one per input with independent firing rate.
//! Each task body is structured code over three primitives: firing a transition (calling
//! the user's C function for that computation), counting tokens in a software buffer
//! (a multirate place), and branching on the run-time resolution of a data-dependent
//! choice. The same IR is rendered to C text by [`crate::emit_c`] and executed directly
//! by [`crate::Interpreter`], so tests can validate the synthesised code against the
//! token game of the original net.

use fcpn_petri::{PetriNet, PlaceId, TransitionId};

/// One arm of a data-dependent choice: taken when the run-time value routed through the
/// choice place selects `transition`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoiceArm {
    /// The conflict transition this arm fires first.
    pub transition: TransitionId,
    /// The statements executed when this arm is selected.
    pub body: Vec<Stmt>,
}

/// A statement of the task IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Execute the data computation associated with a transition.
    Fire(TransitionId),
    /// Increment the counter of a multirate place after producing tokens into it.
    IncCount {
        /// The counted place.
        place: PlaceId,
        /// Number of tokens produced.
        amount: u64,
    },
    /// Decrement the counter of a multirate place after consuming tokens from it.
    DecCount {
        /// The counted place.
        place: PlaceId,
        /// Number of tokens consumed.
        amount: u64,
    },
    /// Branch on the run-time resolution of the choice at `place` (if / else-if chain).
    Choice {
        /// The free-choice place whose token value decides the branch.
        place: PlaceId,
        /// One arm per conflicting transition.
        arms: Vec<ChoiceArm>,
    },
    /// Execute `body` once if the counter of `place` holds at least `at_least` tokens
    /// (generated when the consumer fires less often than its producer).
    IfCount {
        /// The counted place guarding the body.
        place: PlaceId,
        /// Minimum counter value required.
        at_least: u64,
        /// Guarded statements.
        body: Vec<Stmt>,
    },
    /// Execute `body` repeatedly while the counter of `place` holds at least `at_least`
    /// tokens (generated when the consumer fires more often than its producer).
    WhileCount {
        /// The counted place guarding the loop.
        place: PlaceId,
        /// Minimum counter value required to iterate.
        at_least: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Number of statements in this statement and its children.
    pub fn size(&self) -> usize {
        match self {
            Stmt::Fire(_) | Stmt::IncCount { .. } | Stmt::DecCount { .. } => 1,
            Stmt::Choice { arms, .. } => {
                1 + arms
                    .iter()
                    .map(|a| a.body.iter().map(Stmt::size).sum::<usize>())
                    .sum::<usize>()
            }
            Stmt::IfCount { body, .. } | Stmt::WhileCount { body, .. } => {
                1 + body.iter().map(Stmt::size).sum::<usize>()
            }
        }
    }

    /// Maximum nesting depth of this statement.
    pub fn depth(&self) -> usize {
        match self {
            Stmt::Fire(_) | Stmt::IncCount { .. } | Stmt::DecCount { .. } => 1,
            Stmt::Choice { arms, .. } => {
                1 + arms
                    .iter()
                    .flat_map(|a| a.body.iter().map(Stmt::depth))
                    .max()
                    .unwrap_or(0)
            }
            Stmt::IfCount { body, .. } | Stmt::WhileCount { body, .. } => {
                1 + body.iter().map(Stmt::depth).max().unwrap_or(0)
            }
        }
    }

    /// All transitions fired (statically) within this statement.
    pub fn fired_transitions(&self, into: &mut Vec<TransitionId>) {
        match self {
            Stmt::Fire(t) => into.push(*t),
            Stmt::IncCount { .. } | Stmt::DecCount { .. } => {}
            Stmt::Choice { arms, .. } => {
                for arm in arms {
                    for s in &arm.body {
                        s.fired_transitions(into);
                    }
                }
            }
            Stmt::IfCount { body, .. } | Stmt::WhileCount { body, .. } => {
                for s in body {
                    s.fired_transitions(into);
                }
            }
        }
    }
}

/// A software task: the code executed when one invocation of its root input arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name (derived from the root source transition).
    pub name: String,
    /// The source transition whose events activate this task, if the net has sources.
    pub source: Option<TransitionId>,
    /// The task body.
    pub body: Vec<Stmt>,
}

impl Task {
    /// Number of IR statements in the task.
    pub fn size(&self) -> usize {
        self.body.iter().map(Stmt::size).sum()
    }

    /// Maximum nesting depth of the task body.
    pub fn depth(&self) -> usize {
        self.body.iter().map(Stmt::depth).max().unwrap_or(0)
    }

    /// Transitions that appear (statically) in the task body, with duplicates, in source
    /// order.
    pub fn transitions(&self) -> Vec<TransitionId> {
        let mut out = Vec::new();
        for s in &self.body {
            s.fired_transitions(&mut out);
        }
        out
    }
}

/// A complete synthesised program: the set of concurrent tasks invoked by the RTOS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (taken from the net).
    pub name: String,
    /// The synthesised tasks, one per independent-rate input.
    pub tasks: Vec<Task>,
    /// Places that are implemented as software counters (multirate buffers), ascending.
    pub counter_places: Vec<PlaceId>,
}

impl Program {
    /// Number of tasks (the paper's "number of tasks" row in Table I).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total number of IR statements across tasks.
    pub fn size(&self) -> usize {
        self.tasks.iter().map(Task::size).sum()
    }

    /// Returns `true` if `place` is implemented as a counter.
    pub fn is_counter_place(&self, place: PlaceId) -> bool {
        self.counter_places.binary_search(&place).is_ok()
    }

    /// Renders a short human-readable summary using the net's names.
    pub fn describe(&self, net: &PetriNet) -> String {
        let tasks: Vec<String> = self
            .tasks
            .iter()
            .map(|t| format!("{} ({} stmts)", t.name, t.size()))
            .collect();
        let counters: Vec<&str> = self
            .counter_places
            .iter()
            .map(|&p| net.place_name(p))
            .collect();
        format!(
            "program {}: {} task(s) [{}], counters [{}]",
            self.name,
            self.task_count(),
            tasks.join(", "),
            counters.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task() -> Task {
        Task {
            name: "task_t1".to_string(),
            source: Some(TransitionId::new(0)),
            body: vec![
                Stmt::Fire(TransitionId::new(0)),
                Stmt::Choice {
                    place: PlaceId::new(0),
                    arms: vec![
                        ChoiceArm {
                            transition: TransitionId::new(1),
                            body: vec![
                                Stmt::Fire(TransitionId::new(1)),
                                Stmt::IncCount {
                                    place: PlaceId::new(1),
                                    amount: 1,
                                },
                                Stmt::IfCount {
                                    place: PlaceId::new(1),
                                    at_least: 2,
                                    body: vec![
                                        Stmt::Fire(TransitionId::new(3)),
                                        Stmt::DecCount {
                                            place: PlaceId::new(1),
                                            amount: 2,
                                        },
                                    ],
                                },
                            ],
                        },
                        ChoiceArm {
                            transition: TransitionId::new(2),
                            body: vec![Stmt::Fire(TransitionId::new(2))],
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn sizes_and_depths() {
        let task = sample_task();
        // 1 (fire) + 1 (choice) + arm1: fire+inc+if(+fire+dec) = 5, arm2: 1 => total 8.
        assert_eq!(task.size(), 8);
        assert_eq!(task.depth(), 3);
        let fired = task.transitions();
        assert_eq!(fired.len(), 4);
    }

    #[test]
    fn program_summary() {
        let program = Program {
            name: "demo".to_string(),
            tasks: vec![sample_task()],
            counter_places: vec![PlaceId::new(1)],
        };
        assert_eq!(program.task_count(), 1);
        assert_eq!(program.size(), 8);
        assert!(program.is_counter_place(PlaceId::new(1)));
        assert!(!program.is_counter_place(PlaceId::new(0)));
    }
}
