//! Differential suite: the compiled executor versus the tree-walking interpreter.
//!
//! The [`Interpreter`] is the pinned oracle for the task IR's semantics; the
//! flat-bytecode [`ExecSession`] must be observationally indistinguishable from it.
//! This suite pins the two bit-for-bit — per-invocation fire logs, final counters,
//! peak counters, cumulative fire counts and invocation totals — across every
//! schedulable gallery net and at least 64 seeded random schedulable free-choice nets,
//! under three resolver families (fixed-arm, round-robin and seeded-random), including
//! long multi-cycle runs that repeatedly cross the counter guard boundaries of
//! `IfCount`/`WhileCount` statements.

use fcpn_codegen::{
    synthesize, ChoiceResolver, CompiledProgram, ExecSession, FixedResolver, Interpreter, Program,
    RoundRobinResolver, SynthesisOptions,
};
use fcpn_petri::{gallery, NetBuilder, PetriNet, PlaceId, TransitionId};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random free-choice net in the same family the scheduler equivalence suite uses: a
/// source transition feeding a tree of choices whose branches produce with random
/// weights into unit-rate drains, with optional continuation places between levels.
fn random_free_choice(rng: &mut StdRng) -> PetriNet {
    let depth = rng.gen_range(1..4usize);
    let mut b = NetBuilder::new("random-fc");
    let source = b.transition("src");
    let root = b.place("root", rng.gen_range(0..2u64));
    b.arc_t_p(source, root, 1).expect("arc");
    let mut frontier: Vec<PlaceId> = vec![root];
    let mut counter = 0usize;
    for level in 0..depth {
        let branches = rng.gen_range(2..4usize);
        let weight = rng.gen_range(1..4u64);
        let mut next = Vec::new();
        for place in frontier {
            for branch in 0..branches {
                counter += 1;
                let t = b.transition(format!("t{level}_{branch}_{counter}"));
                b.arc_p_t(place, t, 1).expect("arc");
                let out = b.place(format!("p{level}_{branch}_{counter}"), 0);
                b.arc_t_p(t, out, weight).expect("arc");
                let drain = b.transition(format!("d{level}_{branch}_{counter}"));
                b.arc_p_t(out, drain, 1).expect("arc");
                if level + 1 < depth && rng.gen_bool(0.5) {
                    let cont = b.place(format!("c{level}_{branch}_{counter}"), 0);
                    b.arc_t_p(drain, cont, 1).expect("arc");
                    next.push(cont);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    b.build().expect("random free-choice net is valid")
}

/// Schedules and synthesises `net`, returning `None` when it is not quasi-statically
/// schedulable (random nets legitimately include unschedulable instances).
fn synthesized(net: &PetriNet) -> Option<Program> {
    let schedule = quasi_static_schedule(net, &QssOptions::default())
        .ok()?
        .schedule()?;
    synthesize(net, &schedule, SynthesisOptions::default()).ok()
}

fn gallery_nets() -> Vec<PetriNet> {
    vec![
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
        gallery::choice_chain(5),
        gallery::choice_chain(8),
        gallery::marked_ring(6, 3),
        gallery::cycle_bank(5),
    ]
}

/// Runs `invocations` rounds over every task of `program` (round-robin across tasks) on
/// both engines with the given resolver pair, asserting bit-identical observables at
/// every step: the per-invocation fire log, and afterwards the final counters, peaks,
/// fire counts and invocation totals for every place and transition of the net.
fn assert_equivalent<RA, RB>(
    net: &PetriNet,
    program: &Program,
    interp_resolver: &mut RA,
    exec_resolver: &mut RB,
    invocations: usize,
    label: &str,
) where
    RA: ChoiceResolver + ?Sized,
    RB: ChoiceResolver + ?Sized,
{
    let compiled = CompiledProgram::compile(program, net);
    let mut interp = Interpreter::new(program, net);
    let mut session = ExecSession::new(&compiled);
    let task_count = program.task_count();
    for i in 0..invocations * task_count {
        let task = i % task_count;
        let trace = interp
            .run_task(task, interp_resolver)
            .unwrap_or_else(|e| panic!("{label}: interpreter invocation {i}: {e}"));
        let fired = session
            .run_task(task, exec_resolver)
            .unwrap_or_else(|e| panic!("{label}: executor invocation {i}: {e}"));
        assert_eq!(trace.fired, fired, "{label}: fire log of invocation {i}");
    }
    assert_eq!(
        interp.fire_counts(),
        session.fire_counts(),
        "{label}: fire counts"
    );
    assert_eq!(
        interp.invocations(),
        session.invocations(),
        "{label}: invocation totals"
    );
    for p in net.places() {
        assert_eq!(
            interp.counter(p),
            session.counter(p),
            "{label}: final counter of {p}"
        );
        assert_eq!(
            interp.peak_counters()[p.index()],
            session.peak_counter(p),
            "{label}: peak counter of {p}"
        );
    }
}

/// The full resolver matrix for one net: three fixed arms, round-robin, and four
/// seeded-random streams, each driven as an identically-seeded pair.
fn assert_equivalent_across_resolvers(
    net: &PetriNet,
    program: &Program,
    invocations: usize,
    label: &str,
) {
    for arm in 0..3usize {
        assert_equivalent(
            net,
            program,
            &mut FixedResolver { arm },
            &mut FixedResolver { arm },
            invocations,
            &format!("{label} / fixed arm {arm}"),
        );
    }
    assert_equivalent(
        net,
        program,
        &mut RoundRobinResolver::default(),
        &mut RoundRobinResolver::default(),
        invocations,
        &format!("{label} / round-robin"),
    );
    for seed in 0..4u64 {
        let mut rng_a = StdRng::seed_from_u64(0xE0_0C ^ seed);
        let mut rng_b = StdRng::seed_from_u64(0xE0_0C ^ seed);
        let mut random_a = move |_place: PlaceId, candidates: &[TransitionId]| {
            candidates[rng_a.gen_range(0..candidates.len())]
        };
        let mut random_b = move |_place: PlaceId, candidates: &[TransitionId]| {
            candidates[rng_b.gen_range(0..candidates.len())]
        };
        assert_equivalent(
            net,
            program,
            &mut random_a,
            &mut random_b,
            invocations,
            &format!("{label} / seeded-random {seed}"),
        );
    }
}

#[test]
fn executor_matches_interpreter_on_every_schedulable_gallery_net() {
    let mut covered = 0usize;
    for net in gallery_nets() {
        let Some(program) = synthesized(&net) else {
            continue;
        };
        covered += 1;
        assert_equivalent_across_resolvers(&net, &program, 40, net.name());
    }
    assert!(
        covered >= 6,
        "only {covered} gallery nets were schedulable — the suite lost coverage"
    );
}

#[test]
fn executor_matches_interpreter_on_64_seeded_random_nets() {
    let mut covered = 0usize;
    let mut seed = 0u64;
    while covered < 64 {
        assert!(
            seed < 4096,
            "only {covered} schedulable random nets within 4096 seeds"
        );
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ seed);
        let net = random_free_choice(&mut rng);
        seed += 1;
        let Some(program) = synthesized(&net) else {
            continue;
        };
        covered += 1;
        assert_equivalent_across_resolvers(&net, &program, 12, &format!("random seed {seed}"));
    }
}

#[test]
fn long_runs_cross_counter_guard_boundaries_identically() {
    // Multirate gallery nets accumulate counters across invocations and drain them
    // through IfCount/WhileCount guards; hundreds of invocations cross those guard
    // boundaries many times on both engines. figure2 and figure4 need 2 invocations per
    // counter drain, choice_chain stacks nested guards.
    for net in [
        gallery::figure2(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::choice_chain(8),
    ] {
        let program = synthesized(&net).expect("gallery net is schedulable");
        assert_equivalent_across_resolvers(&net, &program, 250, net.name());
    }
}

#[test]
fn batch_pump_matches_interpreter_invocation_by_invocation() {
    // run_batch accumulates one fire log across the whole batch; it must equal the
    // concatenation of the interpreter's per-invocation traces with a shared resolver.
    for net in [gallery::figure2(), gallery::figure4(), gallery::figure5()] {
        let program = synthesized(&net).expect("gallery net is schedulable");
        let compiled = CompiledProgram::compile(&program, &net);
        for task in 0..program.task_count() {
            let mut interp = Interpreter::new(&program, &net);
            let mut expected = Vec::new();
            let mut interp_resolver = RoundRobinResolver::default();
            for _ in 0..300 {
                expected.extend(interp.run_task(task, &mut interp_resolver).unwrap().fired);
            }
            let mut session = ExecSession::new(&compiled);
            let mut exec_resolver = RoundRobinResolver::default();
            let batch = session.run_batch(task, 300, &mut exec_resolver).unwrap();
            assert_eq!(expected, batch, "{}: task {task}", net.name());
            assert_eq!(session.invocations(), 300);
        }
    }
}

#[test]
fn source_routing_matches_the_interpreter() {
    // Multi-task programs route events by source transition; both engines must agree on
    // the mapping and on the resulting interleaved execution.
    let net = gallery::figure5();
    let program = synthesized(&net).expect("figure5 is schedulable");
    let compiled = CompiledProgram::compile(&program, &net);
    let sources: Vec<TransitionId> = program.tasks.iter().filter_map(|t| t.source).collect();
    assert!(sources.len() >= 2, "figure5 synthesises two tasks");
    let mut interp = Interpreter::new(&program, &net);
    let mut session = ExecSession::new(&compiled);
    let mut interp_resolver = RoundRobinResolver::default();
    let mut exec_resolver = RoundRobinResolver::default();
    let mut rng = StdRng::seed_from_u64(0x50_0E);
    for i in 0..400 {
        let source = sources[rng.gen_range(0..sources.len())];
        let trace = interp
            .run_task_for_source(source, &mut interp_resolver)
            .unwrap();
        let fired = session
            .run_task_for_source(source, &mut exec_resolver)
            .unwrap();
        assert_eq!(trace.fired, fired, "event {i} from {source}");
    }
    assert_eq!(interp.fire_counts(), session.fire_counts());
}
