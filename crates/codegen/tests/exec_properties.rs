//! Property suite for the compiled executor's safety guarantees.
//!
//! Whatever a resolver decides — fixed, alternating, adversarially skewed or random —
//! the executor must uphold the schedule's proofs: counters never go negative (the
//! generated guards protect every `DecCount`), and no counter ever exceeds the bound
//! the valid schedule proved for its place ([`ValidSchedule::buffer_bounds`]). Hostile
//! resolvers that return out-of-range picks are rejected with a typed error, never a
//! panic.

use fcpn_codegen::{
    synthesize, CodegenError, CompiledProgram, ExecSession, Program, SynthesisOptions,
};
use fcpn_petri::{gallery, PetriNet, PlaceId, TransitionId};
use fcpn_qss::{quasi_static_schedule, QssOptions, ValidSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scheduled(net: &PetriNet) -> Option<(ValidSchedule, Program)> {
    let schedule = quasi_static_schedule(net, &QssOptions::default())
        .ok()?
        .schedule()?;
    let program = synthesize(net, &schedule, SynthesisOptions::default()).ok()?;
    Some((schedule, program))
}

fn bounded_gallery() -> Vec<PetriNet> {
    // figure3b and figure7 are the paper's *non*-schedulable examples; the bound
    // property only exists for nets with a valid schedule.
    vec![
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::choice_chain(6),
    ]
}

#[test]
fn counters_stay_non_negative_and_within_the_proven_bound() {
    // 32 random resolver streams per net, checking after *every* invocation that every
    // counter is non-negative and no larger than the schedule's proven buffer bound for
    // its place. A violation would mean the compiled guards diverge from the proof.
    for net in bounded_gallery() {
        let (schedule, program) = scheduled(&net).expect("gallery net is schedulable");
        let bounds = schedule.buffer_bounds(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        for stream in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(0xB0_0B5 ^ stream);
            let mut resolver = move |_place: PlaceId, candidates: &[TransitionId]| {
                candidates[rng.gen_range(0..candidates.len())]
            };
            let mut session = ExecSession::new(&compiled);
            for i in 0..120usize {
                let task = i % program.task_count();
                session
                    .run_task(task, &mut resolver)
                    .unwrap_or_else(|e| panic!("{}: stream {stream}: {e}", net.name()));
                for p in net.places() {
                    let value = session.counter(p);
                    assert!(
                        value >= 0,
                        "{}: stream {stream}: counter of {p} went negative",
                        net.name()
                    );
                    assert!(
                        value <= bounds[p.index()] as i64,
                        "{}: stream {stream}: counter of {p} is {value}, bound {}",
                        net.name(),
                        bounds[p.index()]
                    );
                }
            }
            // Peaks are the running maxima of the same counters, so they obey the same
            // proven bounds.
            for p in net.places() {
                assert!(
                    session.peak_counter(p) <= bounds[p.index()] as i64,
                    "{}: stream {stream}: peak of {p} exceeds the proven bound",
                    net.name()
                );
            }
        }
    }
}

#[test]
fn adversarially_skewed_resolvers_stay_within_bounds() {
    // Starving one arm for long stretches is how a counter would overflow its bound if
    // the guards were wrong; sweep heavy skews in both directions.
    for net in bounded_gallery() {
        let (schedule, program) = scheduled(&net).expect("gallery net is schedulable");
        let bounds = schedule.buffer_bounds(&net);
        let compiled = CompiledProgram::compile(&program, &net);
        for period in [2usize, 7, 31] {
            for favored_last in [false, true] {
                let mut calls = 0usize;
                let mut resolver = move |_place: PlaceId, candidates: &[TransitionId]| {
                    calls += 1;
                    // One call in `period` deviates to the other end of the arm list.
                    let deviate = calls.is_multiple_of(period);
                    if favored_last != deviate {
                        *candidates.last().unwrap()
                    } else {
                        candidates[0]
                    }
                };
                let mut session = ExecSession::new(&compiled);
                for i in 0..200usize {
                    let task = i % program.task_count();
                    session.run_task(task, &mut resolver).unwrap();
                }
                for p in net.places() {
                    assert!(
                        session.peak_counter(p) <= bounds[p.index()] as i64,
                        "{}: period {period} favored_last {favored_last}: \
                         peak of {p} exceeds bound {}",
                        net.name(),
                        bounds[p.index()]
                    );
                }
            }
        }
    }
}

#[test]
fn hostile_out_of_range_picks_are_typed_errors_not_panics() {
    // A resolver returning ids that are not arms of the choice — including absurd
    // out-of-net ids — must surface as InvalidChoiceResolution and leave the session
    // usable for the next (well-behaved) run.
    for net in [gallery::figure3a(), gallery::figure4(), gallery::figure5()] {
        let (_, program) = scheduled(&net).expect("gallery net is schedulable");
        let compiled = CompiledProgram::compile(&program, &net);
        let mut session = ExecSession::new(&compiled);
        for bogus in [usize::MAX, 10_000, net.transition_count() + 1] {
            let mut hostile =
                move |_place: PlaceId, _candidates: &[TransitionId]| TransitionId::new(bogus);
            let mut failed = 0usize;
            for task in 0..program.task_count() {
                match session.run_task(task, &mut hostile) {
                    Err(CodegenError::InvalidChoiceResolution { chosen, .. }) => {
                        assert_eq!(chosen, TransitionId::new(bogus));
                        failed += 1;
                    }
                    Err(e) => panic!("{}: unexpected error {e}", net.name()),
                    // Tasks without data-dependent choices never consult the resolver.
                    Ok(_) => {}
                }
            }
            assert!(
                failed > 0,
                "{}: no task consulted the hostile resolver",
                net.name()
            );
        }
        // The session is not poisoned: a well-behaved resolver still runs afterwards.
        session.reset();
        let mut fair = |_place: PlaceId, candidates: &[TransitionId]| candidates[0];
        for task in 0..program.task_count() {
            session.run_task(task, &mut fair).unwrap();
        }
    }
}

#[test]
fn hostile_in_net_but_out_of_choice_picks_are_rejected() {
    // Subtler hostility: return a *valid* transition of the net that is just not an arm
    // of the choice being resolved (here, the task's own source).
    let net = gallery::figure4();
    let (_, program) = scheduled(&net).expect("figure4 is schedulable");
    let source = program.tasks[0].source.expect("figure4 task has a source");
    let compiled = CompiledProgram::compile(&program, &net);
    let mut session = ExecSession::new(&compiled);
    let mut hostile = move |_place: PlaceId, _candidates: &[TransitionId]| source;
    let err = session.run_task(0, &mut hostile).unwrap_err();
    assert!(matches!(
        err,
        CodegenError::InvalidChoiceResolution { chosen, .. } if chosen == source
    ));
}
