//! Looped (single-appearance) schedules: the compact nested-loop form of a static
//! schedule, trading buffer memory for code size.
//!
//! The paper's conclusions mention exploring "tradeoffs between code and buffer size";
//! for the fully static (SDF) part of a specification the classical instrument is the
//! *single-appearance schedule*: every actor appears exactly once inside nested loops,
//! e.g. Figure 2's `t1 t1 t1 t1 t2 t2 t3` becomes `(4 t1)(2 t2)(1 t3)`. Code size becomes
//! linear in the number of actors (each actor is emitted once), while buffers grow to the
//! full per-period token volume; the flat schedule is the opposite corner.

use crate::{Result, SdfError, SdfGraph, StaticSchedule};
use fcpn_petri::{PetriNet, TransitionId};
use std::fmt;

/// One term of a looped schedule: `count` repetitions of either a single actor firing or
/// a nested loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopTerm {
    /// `count` consecutive firings of one transition.
    Fire {
        /// The transition fired.
        transition: TransitionId,
        /// Number of consecutive firings.
        count: u64,
    },
    /// `count` repetitions of a sub-schedule.
    Loop {
        /// Number of repetitions.
        count: u64,
        /// The repeated body.
        body: Vec<LoopTerm>,
    },
}

/// A looped schedule: a sequence of loop terms whose expansion is a finite complete
/// cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopedSchedule {
    /// Top-level terms.
    pub terms: Vec<LoopTerm>,
}

impl LoopedSchedule {
    /// Builds the flat single-appearance schedule of a graph in topological order: one
    /// `(q_i  a_i)` term per actor, where `q` is the repetition vector.
    ///
    /// This is the minimal-code-size corner of the design space and is valid for acyclic
    /// graphs (and for cyclic graphs whose delays make the topological order feasible —
    /// feasibility is re-checked by expansion).
    ///
    /// # Errors
    ///
    /// * [`SdfError::InconsistentRates`] / [`SdfError::Empty`] from the repetition vector.
    /// * [`SdfError::Deadlock`] if the single-appearance expansion is not fireable (e.g. a
    ///   delay-free cycle).
    pub fn single_appearance(graph: &SdfGraph) -> Result<LoopedSchedule> {
        let repetition = graph.repetition_vector()?;
        let net = graph.to_petri_net()?;
        let order = topological_order(&net);
        let terms: Vec<LoopTerm> = order
            .into_iter()
            .filter(|t| repetition[t.index()] > 0)
            .map(|transition| LoopTerm::Fire {
                transition,
                count: repetition[transition.index()],
            })
            .collect();
        let schedule = LoopedSchedule { terms };
        // Validate by expansion against the token game.
        let flat = schedule.expand();
        let mut marking = net.initial_marking().clone();
        for &t in &flat {
            if net.fire(&mut marking, t).is_err() {
                let mut remaining = repetition.clone();
                for &fired in &flat {
                    if remaining[fired.index()] > 0 {
                        remaining[fired.index()] -= 1;
                    }
                }
                return Err(SdfError::Deadlock {
                    remaining,
                    fired: flat,
                });
            }
        }
        Ok(schedule)
    }

    /// Expands the looped schedule into the flat firing sequence it denotes.
    pub fn expand(&self) -> Vec<TransitionId> {
        fn expand_terms(terms: &[LoopTerm], into: &mut Vec<TransitionId>) {
            for term in terms {
                match term {
                    LoopTerm::Fire { transition, count } => {
                        for _ in 0..*count {
                            into.push(*transition);
                        }
                    }
                    LoopTerm::Loop { count, body } => {
                        for _ in 0..*count {
                            expand_terms(body, into);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        expand_terms(&self.terms, &mut out);
        out
    }

    /// Number of actor appearances in the schedule text (the code-size proxy: each
    /// appearance becomes one inlined code block).
    pub fn appearances(&self) -> usize {
        fn count(terms: &[LoopTerm]) -> usize {
            terms
                .iter()
                .map(|t| match t {
                    LoopTerm::Fire { .. } => 1,
                    LoopTerm::Loop { body, .. } => count(body),
                })
                .sum()
        }
        count(&self.terms)
    }

    /// Buffer bounds implied by executing the expansion on `net` (indexed by place).
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::Petri`] if the expansion is not fireable on `net`.
    pub fn buffer_bounds(&self, net: &PetriNet) -> Result<Vec<u64>> {
        Ok(net.peak_tokens(net.initial_marking(), &self.expand())?)
    }

    /// Renders the schedule with net names, e.g. `(4 t1)(2 t2)(1 t3)`.
    pub fn describe(&self, net: &PetriNet) -> String {
        fn render(terms: &[LoopTerm], net: &PetriNet, out: &mut String) {
            for term in terms {
                match term {
                    LoopTerm::Fire { transition, count } => {
                        out.push_str(&format!("({count} {})", net.transition_name(*transition)));
                    }
                    LoopTerm::Loop { count, body } => {
                        out.push_str(&format!("({count} "));
                        render(body, net, out);
                        out.push(')');
                    }
                }
            }
        }
        let mut out = String::new();
        render(&self.terms, net, &mut out);
        out
    }
}

impl fmt::Display for LoopedSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "looped schedule with {} appearance(s)",
            self.appearances()
        )
    }
}

/// Compares the two corners of the code-size / buffer-size design space for a graph: the
/// flat (interleaved) schedule and the single-appearance schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTradeoff {
    /// Actor appearances in the flat schedule (its length) — the code-size proxy.
    pub flat_appearances: usize,
    /// Total buffer tokens required by the flat schedule.
    pub flat_buffer_tokens: u64,
    /// Actor appearances in the single-appearance schedule (= number of actors).
    pub looped_appearances: usize,
    /// Total buffer tokens required by the single-appearance schedule.
    pub looped_buffer_tokens: u64,
}

impl ScheduleTradeoff {
    /// Evaluates both corners for `graph`, scheduling the flat corner with `policy`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures from either corner.
    pub fn evaluate(graph: &SdfGraph, flat: &StaticSchedule) -> Result<ScheduleTradeoff> {
        let net = graph.to_petri_net()?;
        let looped = LoopedSchedule::single_appearance(graph)?;
        let looped_bounds = looped.buffer_bounds(&net)?;
        Ok(ScheduleTradeoff {
            flat_appearances: flat.length(),
            flat_buffer_tokens: flat.total_buffer_tokens(),
            looped_appearances: looped.appearances(),
            looped_buffer_tokens: looped_bounds.iter().sum(),
        })
    }
}

/// A topological order of the transitions (actors) of a marked graph; cycles are broken
/// at initially marked places, falling back to index order.
fn topological_order(net: &PetriNet) -> Vec<TransitionId> {
    let mut order = Vec::with_capacity(net.transition_count());
    let mut placed = vec![false; net.transition_count()];
    while order.len() < net.transition_count() {
        let mut progressed = false;
        for t in net.transitions() {
            if placed[t.index()] {
                continue;
            }
            let ready = net.inputs(t).iter().all(|&(p, _)| {
                net.initial_marking().tokens(p) > 0
                    || net
                        .producers(p)
                        .iter()
                        .all(|&(producer, _)| placed[producer.index()])
            });
            if ready {
                placed[t.index()] = true;
                order.push(t);
                progressed = true;
            }
        }
        if !progressed {
            if let Some(t) = net.transitions().find(|t| !placed[t.index()]) {
                placed[t.index()] = true;
                order.push(t);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FiringPolicy;

    fn figure2_graph() -> SdfGraph {
        let mut g = SdfGraph::new("figure2");
        let t1 = g.actor("t1");
        let t2 = g.actor("t2");
        let t3 = g.actor("t3");
        g.channel(t1, 1, t2, 2, 0).unwrap();
        g.channel(t2, 1, t3, 2, 0).unwrap();
        g
    }

    #[test]
    fn figure2_single_appearance_schedule() {
        let graph = figure2_graph();
        let net = graph.to_petri_net().unwrap();
        let looped = LoopedSchedule::single_appearance(&graph).unwrap();
        assert_eq!(looped.describe(&net), "(4 t1)(2 t2)(1 t3)");
        assert_eq!(looped.appearances(), 3);
        let flat = looped.expand();
        assert_eq!(flat.len(), 7);
        assert!(net.is_finite_complete_cycle(net.initial_marking(), &flat));
        assert_eq!(looped.buffer_bounds(&net).unwrap(), vec![4, 2]);
    }

    #[test]
    fn tradeoff_flat_vs_looped() {
        let graph = figure2_graph();
        let flat = graph.static_schedule(FiringPolicy::DemandDriven).unwrap();
        let tradeoff = ScheduleTradeoff::evaluate(&graph, &flat).unwrap();
        // The flat schedule pays code size (7 appearances) but needs smaller buffers; the
        // looped schedule has one appearance per actor but larger buffers.
        assert_eq!(tradeoff.flat_appearances, 7);
        assert_eq!(tradeoff.looped_appearances, 3);
        assert!(tradeoff.flat_buffer_tokens <= tradeoff.looped_buffer_tokens);
    }

    #[test]
    fn delay_free_cycle_is_rejected() {
        let mut g = SdfGraph::new("cycle");
        let a = g.actor("a");
        let b = g.actor("b");
        g.channel(a, 1, b, 1, 0).unwrap();
        g.channel(b, 1, a, 1, 0).unwrap();
        assert!(matches!(
            LoopedSchedule::single_appearance(&g),
            Err(SdfError::Deadlock { .. })
        ));
    }

    #[test]
    fn cycle_with_delay_is_accepted() {
        let mut g = SdfGraph::new("loop");
        let a = g.actor("a");
        let b = g.actor("b");
        g.channel(a, 1, b, 1, 0).unwrap();
        g.channel(b, 1, a, 1, 1).unwrap();
        let looped = LoopedSchedule::single_appearance(&g).unwrap();
        assert_eq!(looped.appearances(), 2);
    }

    #[test]
    fn nested_loops_expand_correctly() {
        let t0 = TransitionId::new(0);
        let t1 = TransitionId::new(1);
        let schedule = LoopedSchedule {
            terms: vec![LoopTerm::Loop {
                count: 2,
                body: vec![
                    LoopTerm::Fire {
                        transition: t0,
                        count: 2,
                    },
                    LoopTerm::Fire {
                        transition: t1,
                        count: 1,
                    },
                ],
            }],
        };
        assert_eq!(schedule.expand(), vec![t0, t0, t1, t0, t0, t1]);
        assert_eq!(schedule.appearances(), 2);
        assert!(schedule.to_string().contains("2 appearance(s)"));
    }
}
