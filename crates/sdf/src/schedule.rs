//! Static schedule construction by simulation (the PASS of Lee & Messerschmitt).
//!
//! Given a target firing-count vector (a T-invariant / repetition vector), the scheduler
//! simulates the token game, firing transitions that are enabled and still owe firings,
//! until every count is exhausted (success: the sequence is a finite complete cycle) or
//! nothing can fire (deadlock). For conflict-free nets — which is all the quasi-static
//! scheduler ever asks about — greedy simulation is sufficient, because conflict-free
//! nets are persistent: firing one enabled transition can never disable another.

use crate::{Result, SdfError, SdfGraph};
use fcpn_petri::{Marking, PetriNet, TransitionId};

/// A static (fully compile-time) schedule: one period of a periodic admissible sequential
/// schedule, together with the buffer bounds it implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSchedule {
    /// The firing sequence of one period (a finite complete cycle).
    pub sequence: Vec<TransitionId>,
    /// How many times each transition fires per period (indexed by transition).
    pub repetition: Vec<u64>,
    /// Peak number of tokens observed in each place during the period (indexed by place),
    /// i.e. the buffer capacity a software implementation must reserve.
    pub buffer_bounds: Vec<u64>,
}

impl StaticSchedule {
    /// Total number of firings per period.
    pub fn length(&self) -> usize {
        self.sequence.len()
    }

    /// Total buffer capacity (sum of per-place bounds), the paper's memory-size metric.
    pub fn total_buffer_tokens(&self) -> u64 {
        self.buffer_bounds.iter().sum()
    }
}

/// Scheduling policy used when several transitions are simultaneously fireable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FiringPolicy {
    /// Scan transitions in index order and fire each as many times as currently possible.
    /// This reproduces the burst-style sequences the paper prints (e.g.
    /// `t1 t1 t1 t1 t2 t2 t3` for Figure 2) and is the default.
    #[default]
    Eager,
    /// At every step fire a single firing of the enabled transition with the *highest*
    /// index that still owes firings. With the usual upstream-to-downstream declaration
    /// order this drains data as soon as it is produced and keeps buffers small.
    DemandDriven,
}

/// Simulates `net` from its initial marking until each transition `t` has fired exactly
/// `counts[t]` times.
///
/// # Errors
///
/// * [`SdfError::CountLengthMismatch`] if `counts` has the wrong length.
/// * [`SdfError::NotConflictFree`] if the net has a choice place (the greedy simulation
///   would then not be adequate).
/// * [`SdfError::Deadlock`] if the simulation gets stuck before exhausting the counts —
///   the T-invariant is not realisable from the initial marking (Definition 3.5(3) fails).
pub fn schedule_conflict_free(
    net: &PetriNet,
    counts: &[u64],
    policy: FiringPolicy,
) -> Result<StaticSchedule> {
    if counts.len() != net.transition_count() {
        return Err(SdfError::CountLengthMismatch {
            expected: net.transition_count(),
            found: counts.len(),
        });
    }
    if !net.is_conflict_free() {
        return Err(SdfError::NotConflictFree);
    }
    let mut remaining: Vec<u64> = counts.to_vec();
    let mut marking: Marking = net.initial_marking().clone();
    let mut sequence = Vec::new();
    let mut peaks: Vec<u64> = marking.as_slice().to_vec();
    let total: u64 = remaining.iter().sum();
    let mut fired_total = 0u64;

    let fire_one = |t: TransitionId,
                    marking: &mut Marking,
                    remaining: &mut Vec<u64>,
                    sequence: &mut Vec<TransitionId>,
                    peaks: &mut Vec<u64>|
     -> Result<()> {
        net.fire(marking, t)?;
        remaining[t.index()] -= 1;
        sequence.push(t);
        for (i, &k) in marking.as_slice().iter().enumerate() {
            if k > peaks[i] {
                peaks[i] = k;
            }
        }
        Ok(())
    };

    while fired_total < total {
        let mut progress = 0u64;
        match policy {
            FiringPolicy::Eager => {
                for t in net.transitions() {
                    while remaining[t.index()] > 0 && net.is_enabled(&marking, t) {
                        fire_one(t, &mut marking, &mut remaining, &mut sequence, &mut peaks)?;
                        progress += 1;
                    }
                }
            }
            FiringPolicy::DemandDriven => {
                let candidate = net
                    .transitions()
                    .filter(|&t| remaining[t.index()] > 0 && net.is_enabled(&marking, t))
                    .last();
                if let Some(t) = candidate {
                    fire_one(t, &mut marking, &mut remaining, &mut sequence, &mut peaks)?;
                    progress += 1;
                }
            }
        }
        if progress == 0 {
            return Err(SdfError::Deadlock {
                remaining,
                fired: sequence,
            });
        }
        fired_total += progress;
    }

    Ok(StaticSchedule {
        sequence,
        repetition: counts.to_vec(),
        buffer_bounds: peaks,
    })
}

impl SdfGraph {
    /// Computes a complete static schedule for the graph: repetition vector, firing
    /// sequence and buffer bounds.
    ///
    /// # Errors
    ///
    /// Propagates rate inconsistency ([`SdfError::InconsistentRates`]) and simulation
    /// deadlock ([`SdfError::Deadlock`], e.g. a delay-free cycle).
    pub fn static_schedule(&self, policy: FiringPolicy) -> Result<StaticSchedule> {
        let repetition = self.repetition_vector()?;
        let net = self.to_petri_net()?;
        schedule_conflict_free(&net, &repetition, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::gallery;

    #[test]
    fn figure2_eager_schedule_matches_paper_sequence() {
        let net = gallery::figure2();
        let schedule = schedule_conflict_free(&net, &[4, 2, 1], FiringPolicy::Eager).unwrap();
        let names: Vec<&str> = schedule
            .sequence
            .iter()
            .map(|&t| net.transition_name(t))
            .collect();
        // The paper's σ = t1 t1 t1 t1 t2 t2 t3.
        assert_eq!(names, vec!["t1", "t1", "t1", "t1", "t2", "t2", "t3"]);
        assert_eq!(schedule.repetition, vec![4, 2, 1]);
        assert!(net.is_finite_complete_cycle(net.initial_marking(), &schedule.sequence));
        assert_eq!(schedule.buffer_bounds, vec![4, 2]);
        assert_eq!(schedule.total_buffer_tokens(), 6);
        assert_eq!(schedule.length(), 7);
    }

    #[test]
    fn demand_driven_policy_reduces_buffer_bounds() {
        let net = gallery::figure2();
        let schedule =
            schedule_conflict_free(&net, &[4, 2, 1], FiringPolicy::DemandDriven).unwrap();
        assert!(net.is_finite_complete_cycle(net.initial_marking(), &schedule.sequence));
        // Data is consumed as soon as possible: p1 never holds more than 2 tokens.
        assert_eq!(schedule.buffer_bounds, vec![2, 2]);
        assert!(schedule.total_buffer_tokens() < 6);
    }

    #[test]
    fn count_length_is_validated() {
        let net = gallery::figure2();
        assert!(matches!(
            schedule_conflict_free(&net, &[1, 2], FiringPolicy::default()),
            Err(SdfError::CountLengthMismatch {
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn choice_nets_are_rejected() {
        let net = gallery::figure3a();
        let counts = vec![1; net.transition_count()];
        assert_eq!(
            schedule_conflict_free(&net, &counts, FiringPolicy::default()).unwrap_err(),
            SdfError::NotConflictFree
        );
    }

    #[test]
    fn delay_free_cycle_deadlocks() {
        let mut g = SdfGraph::new("deadlock");
        let a = g.actor("a");
        let b = g.actor("b");
        g.channel(a, 1, b, 1, 0).unwrap();
        g.channel(b, 1, a, 1, 0).unwrap();
        let err = g.static_schedule(FiringPolicy::default()).unwrap_err();
        match err {
            SdfError::Deadlock { remaining, fired } => {
                assert_eq!(remaining, vec![1, 1]);
                assert!(fired.is_empty());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_with_delay_schedules() {
        let mut g = SdfGraph::new("loop");
        let a = g.actor("a");
        let b = g.actor("b");
        g.channel(a, 1, b, 1, 0).unwrap();
        g.channel(b, 1, a, 1, 1).unwrap();
        let s = g.static_schedule(FiringPolicy::default()).unwrap();
        assert_eq!(s.repetition, vec![1, 1]);
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn downsampler_end_to_end() {
        let mut g = SdfGraph::new("downsample");
        let src = g.actor("src");
        let ds = g.actor("ds");
        let sink = g.actor("sink");
        g.channel(src, 1, ds, 4, 0).unwrap();
        g.channel(ds, 1, sink, 1, 0).unwrap();
        let s = g.static_schedule(FiringPolicy::default()).unwrap();
        assert_eq!(s.repetition, vec![4, 1, 1]);
        assert_eq!(s.length(), 6);
        let net = g.to_petri_net().unwrap();
        assert!(net.is_finite_complete_cycle(net.initial_marking(), &s.sequence));
    }

    #[test]
    fn multiples_of_the_repetition_vector_also_schedule() {
        let net = gallery::figure2();
        let s = schedule_conflict_free(&net, &[8, 4, 2], FiringPolicy::Eager).unwrap();
        assert_eq!(s.length(), 14);
        assert!(net.is_finite_complete_cycle(net.initial_marking(), &s.sequence));
    }
}
