//! Errors reported by the static scheduler.

use fcpn_petri::{PetriError, TransitionId};
use std::fmt;

/// Errors produced while building SDF graphs or computing static schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// The graph's balance equations only admit the trivial all-zero solution, so no
    /// repetition vector exists (the graph has inconsistent sample rates).
    InconsistentRates,
    /// The graph (or net) contains no actors/transitions.
    Empty,
    /// A deadlock was reached while simulating the candidate schedule: the remaining
    /// firing counts are non-zero but no transition is enabled.
    Deadlock {
        /// Firing counts still owed when the simulation got stuck.
        remaining: Vec<u64>,
        /// The partial sequence fired before the deadlock.
        fired: Vec<TransitionId>,
    },
    /// The requested firing-count vector has the wrong length for the net.
    CountLengthMismatch {
        /// Entries expected (one per transition).
        expected: usize,
        /// Entries provided.
        found: usize,
    },
    /// The net passed to the conflict-free scheduler contains a choice place.
    NotConflictFree,
    /// An actor or channel index was out of range.
    UnknownActor(usize),
    /// An underlying Petri-net operation failed.
    Petri(PetriError),
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::InconsistentRates => {
                write!(
                    f,
                    "graph has inconsistent rates: no repetition vector exists"
                )
            }
            SdfError::Empty => write!(f, "graph has no actors"),
            SdfError::Deadlock { remaining, .. } => write!(
                f,
                "schedule simulation deadlocked with {} firings remaining",
                remaining.iter().sum::<u64>()
            ),
            SdfError::CountLengthMismatch { expected, found } => write!(
                f,
                "firing count vector has {found} entries but the net has {expected} transitions"
            ),
            SdfError::NotConflictFree => {
                write!(
                    f,
                    "net contains a choice place; static scheduling requires a conflict-free net"
                )
            }
            SdfError::UnknownActor(i) => write!(f, "unknown actor index {i}"),
            SdfError::Petri(e) => write!(f, "petri net error: {e}"),
        }
    }
}

impl std::error::Error for SdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdfError::Petri(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for SdfError {
    fn from(e: PetriError) -> Self {
        SdfError::Petri(e)
    }
}

/// Result alias for the crate.
pub type Result<T, E = SdfError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SdfError::InconsistentRates
            .to_string()
            .contains("repetition"));
        assert!(SdfError::NotConflictFree.to_string().contains("choice"));
        let e = SdfError::Deadlock {
            remaining: vec![1, 2],
            fired: vec![],
        };
        assert!(e.to_string().contains("3 firings"));
    }

    #[test]
    fn petri_errors_convert() {
        let e: SdfError = PetriError::ZeroWeightArc.into();
        assert!(matches!(e, SdfError::Petri(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
