//! Repetition vectors: the balance-equation solution that fixes how many times each actor
//! fires per schedule period.

use crate::{Result, SdfError, SdfGraph};
use fcpn_petri::analysis::{lcm_u64, Rational};

impl SdfGraph {
    /// Computes the smallest positive repetition vector of the graph: for every channel
    /// `produce · r[from] = consume · r[to]`, scaled per connected component so that the
    /// entries are coprime integers.
    ///
    /// # Errors
    ///
    /// * [`SdfError::Empty`] if the graph has no actors.
    /// * [`SdfError::InconsistentRates`] if the balance equations admit only the zero
    ///   solution (sample-rate inconsistency), in which case unbounded token accumulation
    ///   is unavoidable.
    pub fn repetition_vector(&self) -> Result<Vec<u64>> {
        let n = self.actor_count();
        if n == 0 {
            return Err(SdfError::Empty);
        }
        // Propagate rational rates over each connected component.
        let mut rate: Vec<Option<Rational>> = vec![None; n];
        let mut component: Vec<usize> = vec![usize::MAX; n];
        let mut adjacency: Vec<Vec<(usize, Rational)>> = vec![Vec::new(); n];
        for ch in self.channels() {
            // r[to] = r[from] * produce / consume
            let forward = Rational::new(ch.produce as i128, ch.consume as i128);
            adjacency[ch.from.0].push((ch.to.0, forward));
            adjacency[ch.to.0].push((ch.from.0, forward.recip()));
        }
        let mut component_count = 0;
        for start in 0..n {
            if rate[start].is_some() {
                continue;
            }
            rate[start] = Some(Rational::ONE);
            component[start] = component_count;
            let mut stack = vec![start];
            while let Some(current) = stack.pop() {
                let current_rate = rate[current].expect("visited actors have a rate");
                for &(next, factor) in &adjacency[current] {
                    let implied = current_rate * factor;
                    match rate[next] {
                        None => {
                            rate[next] = Some(implied);
                            component[next] = component_count;
                            stack.push(next);
                        }
                        Some(existing) if existing != implied => {
                            return Err(SdfError::InconsistentRates);
                        }
                        Some(_) => {}
                    }
                }
            }
            component_count += 1;
        }
        // Scale each connected component to its smallest integer vector independently.
        let rates: Vec<Rational> = rate.into_iter().map(|r| r.expect("all visited")).collect();
        let mut result = vec![0u64; n];
        for comp in 0..component_count {
            let members: Vec<usize> = (0..n).filter(|&i| component[i] == comp).collect();
            let mut lcm_den: u64 = 1;
            for &i in &members {
                lcm_den = lcm_u64(lcm_den, rates[i].denom() as u64);
            }
            let mut scaled: Vec<u64> = members
                .iter()
                .map(|&i| (rates[i].numer() as u64) * (lcm_den / rates[i].denom() as u64))
                .collect();
            let mut g = 0u64;
            for &v in &scaled {
                g = fcpn_petri::analysis::gcd_u64(g, v);
            }
            let g = g.max(1);
            for v in &mut scaled {
                *v /= g;
            }
            for (&i, &v) in members.iter().zip(scaled.iter()) {
                result[i] = v;
            }
        }
        Ok(result)
    }

    /// Verifies that the balance equations hold for a candidate repetition vector.
    pub fn is_repetition_vector(&self, candidate: &[u64]) -> bool {
        if candidate.len() != self.actor_count() || candidate.iter().all(|&c| c == 0) {
            return false;
        }
        self.channels()
            .iter()
            .all(|ch| ch.produce * candidate[ch.from.0] == ch.consume * candidate[ch.to.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_chain_repetition_vector() {
        // Figure 2 of the paper as an SDF graph: rates 1 -> 2, 1 -> 2.
        let mut g = SdfGraph::new("figure2");
        let t1 = g.actor("t1");
        let t2 = g.actor("t2");
        let t3 = g.actor("t3");
        g.channel(t1, 1, t2, 2, 0).unwrap();
        g.channel(t2, 1, t3, 2, 0).unwrap();
        let r = g.repetition_vector().unwrap();
        assert_eq!(r, vec![4, 2, 1]);
        assert!(g.is_repetition_vector(&r));
        assert!(g.is_repetition_vector(&[8, 4, 2]));
        assert!(!g.is_repetition_vector(&[1, 1, 1]));
    }

    #[test]
    fn inconsistent_rates_are_detected() {
        // Classic inconsistent triangle: a->b 1:1, b->c 1:1, a->c 2:1.
        let mut g = SdfGraph::new("bad");
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        g.channel(a, 1, b, 1, 0).unwrap();
        g.channel(b, 1, c, 1, 0).unwrap();
        g.channel(a, 2, c, 1, 0).unwrap();
        assert_eq!(
            g.repetition_vector().unwrap_err(),
            SdfError::InconsistentRates
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = SdfGraph::new("empty");
        assert_eq!(g.repetition_vector().unwrap_err(), SdfError::Empty);
    }

    #[test]
    fn disconnected_components_are_each_minimal() {
        let mut g = SdfGraph::new("two");
        let a = g.actor("a");
        let b = g.actor("b");
        let c = g.actor("c");
        let d = g.actor("d");
        g.channel(a, 1, b, 3, 0).unwrap();
        g.channel(c, 2, d, 1, 0).unwrap();
        let r = g.repetition_vector().unwrap();
        assert_eq!(r, vec![3, 1, 1, 2]);
    }

    #[test]
    fn isolated_actor_fires_once() {
        let mut g = SdfGraph::new("solo");
        g.actor("only");
        assert_eq!(g.repetition_vector().unwrap(), vec![1]);
    }

    #[test]
    fn candidate_with_wrong_length_rejected() {
        let mut g = SdfGraph::new("g");
        g.actor("a");
        assert!(!g.is_repetition_vector(&[]));
        assert!(!g.is_repetition_vector(&[0]));
    }
}
