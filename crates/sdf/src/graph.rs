//! Synchronous Dataflow graphs and their translation to marked graphs.
//!
//! SDF graphs (Lee & Messerschmitt) are the "pure dataflow" specification style the paper
//! contrasts with FCPNs: every actor produces and consumes a fixed number of tokens per
//! firing, so a fully static schedule can be computed at compile time. As Section 2 of the
//! paper notes, an SDF graph is exactly a *marked graph* when mapped to a Petri net:
//! actors become transitions and channels become places.

use crate::{Result, SdfError};
use fcpn_petri::{NetBuilder, PetriNet};
use std::fmt;

/// Identifier of an actor within an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An SDF actor: a computation that fires atomically with fixed rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Actor {
    /// Actor name, unique within the graph.
    pub name: String,
}

/// A channel between two actors with fixed production/consumption rates and an initial
/// number of tokens (delays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Producing actor.
    pub from: ActorId,
    /// Consuming actor.
    pub to: ActorId,
    /// Tokens produced per firing of `from`.
    pub produce: u64,
    /// Tokens consumed per firing of `to`.
    pub consume: u64,
    /// Initial tokens (delays) on the channel.
    pub initial_tokens: u64,
}

/// A Synchronous Dataflow graph.
///
/// # Examples
///
/// The two-actor downsampler (`src` produces 1, `ds` consumes 2):
///
/// ```
/// use fcpn_sdf::SdfGraph;
///
/// # fn main() -> Result<(), fcpn_sdf::SdfError> {
/// let mut g = SdfGraph::new("downsample");
/// let src = g.actor("src");
/// let ds = g.actor("ds");
/// g.channel(src, 1, ds, 2, 0)?;
/// let r = g.repetition_vector()?;
/// assert_eq!(r, vec![2, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfGraph {
    name: String,
    actors: Vec<Actor>,
    channels: Vec<Channel>,
}

impl SdfGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        SdfGraph {
            name: name.into(),
            actors: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Name of the graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an actor and returns its identifier.
    pub fn actor(&mut self, name: impl Into<String>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Actor { name: name.into() });
        id
    }

    /// Adds a channel from `from` to `to` with the given rates and initial tokens.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::UnknownActor`] if either endpoint has not been declared, and
    /// [`SdfError::Petri`] if a rate is zero.
    pub fn channel(
        &mut self,
        from: ActorId,
        produce: u64,
        to: ActorId,
        consume: u64,
        initial_tokens: u64,
    ) -> Result<()> {
        if from.0 >= self.actors.len() {
            return Err(SdfError::UnknownActor(from.0));
        }
        if to.0 >= self.actors.len() {
            return Err(SdfError::UnknownActor(to.0));
        }
        if produce == 0 || consume == 0 {
            return Err(SdfError::Petri(fcpn_petri::PetriError::ZeroWeightArc));
        }
        self.channels.push(Channel {
            from,
            to,
            produce,
            consume,
            initial_tokens,
        });
        Ok(())
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Actor metadata.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// Channel metadata.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Name of `actor`.
    ///
    /// # Panics
    ///
    /// Panics if the actor does not belong to this graph.
    pub fn actor_name(&self, actor: ActorId) -> &str {
        &self.actors[actor.0].name
    }

    /// Translates the graph to the equivalent marked graph: one transition per actor and
    /// one place per channel, with arc weights equal to the rates.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::Petri`] if the underlying builder rejects the structure.
    pub fn to_petri_net(&self) -> Result<PetriNet> {
        let mut b = NetBuilder::new(self.name.clone());
        let transitions: Vec<_> = self
            .actors
            .iter()
            .map(|a| b.transition(a.name.clone()))
            .collect();
        for (i, ch) in self.channels.iter().enumerate() {
            b.channel_weighted(
                format!("ch{i}"),
                transitions[ch.from.0],
                ch.produce,
                transitions[ch.to.0],
                ch.consume,
                ch.initial_tokens,
            )?;
        }
        Ok(b.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::analysis::Classification;

    #[test]
    fn graph_construction_and_lookup() {
        let mut g = SdfGraph::new("g");
        let a = g.actor("a");
        let b = g.actor("b");
        g.channel(a, 2, b, 3, 1).unwrap();
        assert_eq!(g.actor_count(), 2);
        assert_eq!(g.channel_count(), 1);
        assert_eq!(g.actor_name(a), "a");
        assert_eq!(g.channels()[0].initial_tokens, 1);
        assert_eq!(g.name(), "g");
    }

    #[test]
    fn unknown_actor_is_rejected() {
        let mut g = SdfGraph::new("g");
        let a = g.actor("a");
        assert_eq!(
            g.channel(a, 1, ActorId(7), 1, 0).unwrap_err(),
            SdfError::UnknownActor(7)
        );
    }

    #[test]
    fn zero_rate_is_rejected() {
        let mut g = SdfGraph::new("g");
        let a = g.actor("a");
        let b = g.actor("b");
        assert!(matches!(g.channel(a, 0, b, 1, 0), Err(SdfError::Petri(_))));
    }

    #[test]
    fn conversion_yields_a_marked_graph() {
        let mut g = SdfGraph::new("fft");
        let src = g.actor("src");
        let fft = g.actor("fft");
        let sink = g.actor("sink");
        g.channel(src, 1, fft, 64, 0).unwrap();
        g.channel(fft, 64, sink, 1, 0).unwrap();
        let net = g.to_petri_net().unwrap();
        assert!(Classification::of(&net).is_marked_graph());
        assert_eq!(net.transition_count(), 3);
        assert_eq!(net.place_count(), 2);
        let src_t = net.transition_by_name("src").unwrap();
        let ch0 = net.place_by_name("ch0").unwrap();
        assert_eq!(net.arc_weight_tp(src_t, ch0), 1);
    }

    #[test]
    fn initial_tokens_become_initial_marking() {
        let mut g = SdfGraph::new("loop");
        let a = g.actor("a");
        let b = g.actor("b");
        g.channel(a, 1, b, 1, 0).unwrap();
        g.channel(b, 1, a, 1, 3).unwrap();
        let net = g.to_petri_net().unwrap();
        assert_eq!(net.initial_marking().total_tokens(), 3);
    }
}
