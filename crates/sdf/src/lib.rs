//! # fcpn-sdf — static scheduling of Synchronous Dataflow graphs
//!
//! The fully static scheduling baseline of the reproduction of *Synthesis of Embedded
//! Software Using Free-Choice Petri Nets* (DAC 1999). Section 2 of the paper recalls the
//! Lee–Messerschmitt result that pure dataflow specifications (SDF graphs, equivalently
//! marked graphs) admit a compile-time schedule: solve the balance equations for the
//! repetition vector, then simulate one period to obtain a finite complete cycle and the
//! buffer bounds it implies. The quasi-static scheduler in `fcpn-qss` reuses
//! [`schedule_conflict_free`] to schedule each conflict-free component it extracts from a
//! Free-Choice net.
//!
//! # Example
//!
//! ```
//! use fcpn_sdf::{FiringPolicy, SdfGraph};
//!
//! # fn main() -> Result<(), fcpn_sdf::SdfError> {
//! // Figure 2 of the paper as an SDF chain with a 2:1 downsampling at each hop.
//! let mut g = SdfGraph::new("figure2");
//! let t1 = g.actor("t1");
//! let t2 = g.actor("t2");
//! let t3 = g.actor("t3");
//! g.channel(t1, 1, t2, 2, 0)?;
//! g.channel(t2, 1, t3, 2, 0)?;
//! let schedule = g.static_schedule(FiringPolicy::Eager)?;
//! assert_eq!(schedule.repetition, vec![4, 2, 1]);
//! assert_eq!(schedule.length(), 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod graph;
mod looped;
mod repetition;
mod schedule;

pub use error::{Result, SdfError};
pub use graph::{Actor, ActorId, Channel, SdfGraph};
pub use looped::{LoopTerm, LoopedSchedule, ScheduleTradeoff};
pub use schedule::{schedule_conflict_free, FiringPolicy, StaticSchedule};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SdfGraph>();
        assert_send_sync::<StaticSchedule>();
        assert_send_sync::<SdfError>();
    }
}
