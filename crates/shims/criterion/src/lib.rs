//! Offline stand-in for the `criterion` crate covering the API subset this
//! workspace uses: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `criterion_group!` / `criterion_main!` and `black_box`.
//!
//! Unlike a mock, the shim genuinely measures: each benchmark is warmed up,
//! then timed over `sample_size` samples with an iteration count calibrated so
//! a sample lasts at least ~2 ms, and the median/min per-iteration time is
//! printed. `FCPN_BENCH_SAMPLES` overrides the sample count (CI smoke runs set
//! it to 3). See `crates/shims/README.md` for why this shim exists.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call, if any.
    result: Option<MeasuredTime>,
}

#[derive(Debug, Clone, Copy)]
struct MeasuredTime {
    median: Duration,
    min: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until ~TARGET_SAMPLE_TIME is filled to
        // pick the per-sample iteration count.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < TARGET_SAMPLE_TIME {
            black_box(routine());
            calibration_iters += 1;
        }
        let iters = calibration_iters.max(1);

        let mut per_iteration: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iteration.push(start.elapsed() / iters as u32);
        }
        per_iteration.sort();
        self.result = Some(MeasuredTime {
            median: per_iteration[per_iteration.len() / 2],
            min: per_iteration[0],
            iters_per_sample: iters,
        });
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("FCPN_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Configures the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Configures the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(m) => println!(
            "bench {id:<48} median {:>12?}  min {:>12?}  ({} samples x {} iters)",
            m.median, m.min, samples, m.iters_per_sample
        ),
        None => println!("bench {id:<48} (no measurement: closure never called iter)"),
    }
}

/// Collects benchmark functions into a runnable group, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
