//! Offline stand-in for the `rand` crate covering the API subset this workspace
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for workload generation and
//! property tests, deterministic per seed, and dependency-free. See
//! `crates/shims/README.md` for why this shim exists.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: the subset of `rand_core::RngCore` we need.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, usize, u32);

/// The user-facing sampling trait, matching the `rand::Rng` methods in use.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of entropy gives a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // p = 0.5 lands strictly between the extremes over many draws.
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads));
    }
}
