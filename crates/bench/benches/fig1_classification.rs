//! Figure 1: free-choice classification of the two example nets (and of the larger ATM
//! model, as a size reference). Prints the class of each net and times the classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use fcpn_atm::{AtmConfig, AtmModel};
use fcpn_petri::analysis::Classification;
use fcpn_petri::gallery;
use std::hint::black_box;

fn bench_classification(c: &mut Criterion) {
    let fig1a = gallery::figure1a();
    let fig1b = gallery::figure1b();
    let atm = AtmModel::build(AtmConfig::paper())
        .expect("atm model builds")
        .net;
    println!("figure 1a -> {}", Classification::of(&fig1a).class);
    println!("figure 1b -> {}", Classification::of(&fig1b).class);
    println!("atm-server -> {}", Classification::of(&atm).class);

    let mut group = c.benchmark_group("fig1_classification");
    group.bench_function("figure1a_free_choice", |b| {
        b.iter(|| Classification::of(black_box(&fig1a)))
    });
    group.bench_function("figure1b_not_free_choice", |b| {
        b.iter(|| Classification::of(black_box(&fig1b)))
    });
    group.bench_function("atm_server_49_transitions", |b| {
        b.iter(|| Classification::of(black_box(&atm)))
    });
    group.finish();
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
