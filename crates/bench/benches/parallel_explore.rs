//! Parallel-explorer scaling: the sharded explorer at 1/2/4 workers against the
//! sequential engine (u64 and adaptive narrow arenas) on the truncated open nets and
//! the bounded hypercube.
//!
//! The multi-thread points are meaningful only relative to the host's core count
//! (printed first): on a single-core host the sharded explorer serialises onto one CPU
//! and the measurement shows pure coordination overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_petri::analysis::ReachabilityOptions;
use fcpn_petri::gallery;
use fcpn_petri::statespace::{ExploreOptions, StateSpace, TokenWidth};
use std::hint::black_box;

fn open_net_options() -> ReachabilityOptions {
    ReachabilityOptions {
        max_markings: 60_000,
        max_tokens_per_place: 8,
    }
}

fn bench_parallel_explore(c: &mut Criterion) {
    println!(
        "host cores: {}",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    );
    let mut group = c.benchmark_group("parallel_explore");
    let cases = [
        (
            "choice_chain_8",
            gallery::choice_chain(8),
            open_net_options(),
        ),
        ("figure5", gallery::figure5(), open_net_options()),
        (
            "cycle_bank_14",
            gallery::cycle_bank(14),
            ReachabilityOptions::default(),
        ),
    ];
    for (name, net, reach) in &cases {
        let configs = [
            ("seq_u64", 1, TokenWidth::U64),
            ("seq_narrow", 1, TokenWidth::Auto),
            ("par2", 2, TokenWidth::Auto),
            ("par4", 4, TokenWidth::Auto),
        ];
        for (label, threads, width) in configs {
            let options = ExploreOptions {
                reach: *reach,
                threads,
                width,
                ..ExploreOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(label, name), net, |b, net| {
                b.iter(|| StateSpace::explore_with(black_box(net), &options))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_explore);
criterion_main!(benches);
