//! Complexity ablation (Section 3's closing remark): the number of T-reductions is
//! exponential in the number of conflicting choices, the per-reduction static scheduling
//! is polynomial, and the generated code stays linear in the size of the net. The bench
//! sweeps a chain of free choices and prints the three series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_bench::program_of;
use fcpn_codegen::CodeMetrics;
use fcpn_petri::gallery;
use fcpn_qss::{quasi_static_schedule, QssOptions};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    println!("choices | T-reductions (cycles) | IR statements | lines of C");
    for n in [1usize, 2, 4, 6, 8] {
        let net = gallery::choice_chain(n);
        let (schedule, program) = program_of(&net);
        let metrics = CodeMetrics::of(&program, &net);
        println!(
            "{n:>7} | {:>21} | {:>13} | {:>10}",
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c
        );
    }

    let mut group = c.benchmark_group("scaling_choices");
    for n in [1usize, 2, 4, 6, 8] {
        let net = gallery::choice_chain(n);
        group.bench_with_input(BenchmarkId::new("qss_schedule", n), &net, |b, net| {
            b.iter(|| quasi_static_schedule(black_box(net), &QssOptions::default()))
        });
    }
    for n in [1usize, 2, 4, 6] {
        let net = gallery::choice_chain(n);
        group.bench_with_input(
            BenchmarkId::new("schedule_plus_codegen", n),
            &net,
            |b, net| b.iter(|| program_of(black_box(net))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
