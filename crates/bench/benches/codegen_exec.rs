//! Sustained events/sec of the compiled schedule executor versus the tree-walking
//! interpreter — the throughput claim of the paper's synthesized software, made
//! measurable.
//!
//! Both engines pump the same activation stream ([`fcpn_bench::pump_interpreter`] /
//! [`fcpn_bench::pump_compiled`]) with the same round-robin choice resolution; the
//! firing totals and per-transition fire counts are asserted identical before anything
//! is timed, so the comparison is pure execution machinery: `Vec<Stmt>` tree walking
//! with per-entry block clones versus flat jump-resolved bytecode over a dense counter
//! pool. The recorded baseline lives in the `executor` section of
//! `BENCH_statespace.json` (regenerate with
//! `cargo run --release -p fcpn-bench --example scaling_table -- --out BENCH_statespace.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_bench::{program_of, pump_compiled, pump_interpreter};
use fcpn_codegen::CompiledProgram;
use fcpn_petri::gallery;
use std::hint::black_box;

const ACTIVATIONS: usize = 20_000;

fn bench_event_pump(c: &mut Criterion) {
    let cases = [
        ("figure3a", gallery::figure3a()),
        ("figure4", gallery::figure4()),
        ("figure5", gallery::figure5()),
        ("choice_chain_8", gallery::choice_chain(8)),
    ];
    let mut group = c.benchmark_group("codegen_exec");
    for (name, net) in &cases {
        let (_, program) = program_of(net);
        let compiled = CompiledProgram::compile(&program, net);

        // Identical work on both sides before any timing.
        let (interp_fired, interp_counts) = pump_interpreter(&program, net, ACTIVATIONS);
        let (exec_fired, exec_counts) = pump_compiled(&compiled, ACTIVATIONS);
        assert_eq!(interp_fired, exec_fired, "{name}: firing totals diverged");
        assert_eq!(interp_counts, exec_counts, "{name}: fire counts diverged");
        println!(
            "{name}: {} tasks, {} bytecode ops, {interp_fired} firings per pump",
            compiled.task_count(),
            compiled.op_count()
        );

        group.bench_function(BenchmarkId::new("interpreter", name), |b| {
            b.iter(|| pump_interpreter(black_box(&program), black_box(net), ACTIVATIONS))
        });
        group.bench_function(BenchmarkId::new("compiled", name), |b| {
            b.iter(|| pump_compiled(black_box(&compiled), ACTIVATIONS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_pump);
criterion_main!(benches);
