//! Table I: QSS (2 tasks) versus functional task partitioning (5 tasks) on the ATM server
//! with the 50-cell testbench. Prints the reproduced table next to the paper's numbers and
//! times the two simulations separately so the overhead gap is visible in the report.
//!
//! `--seeds N` switches to the Monte-Carlo mode: the functional baseline is re-simulated
//! under `N` different traffic seeds on **one** [`FunctionalSimBatch`] — the firing
//! session and cost tables are built once and the session is restored through its
//! checkpoint arena between seeds — and the per-seed median wall times are reported
//! (each seed's runs are verified bit-for-bit against a fresh simulator first):
//!
//! ```text
//! cargo bench -p fcpn-bench --bench table1_qss_vs_functional -- --seeds 16
//! ```

use criterion::{criterion_group, Criterion};
use fcpn_atm::{
    functional_partition, generate_workload, run_table1, AtmChoicePolicy, AtmConfig, AtmModel,
    Table1Config, TrafficConfig,
};
use fcpn_codegen::{synthesize, SynthesisOptions};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use fcpn_rtos::{simulate_functional_partition, simulate_program, CostModel, FunctionalSimBatch};
use std::time::Instant;

fn bench_table1(c: &mut Criterion) {
    let model = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
    let table = run_table1(&model, &Table1Config::default()).expect("table 1 runs");
    println!("--- Table I (reproduction) ---");
    println!("{table}");
    println!("paper: tasks 2 vs 5 | lines 1664 vs 2187 | cycles 197526 vs 249726");
    println!(
        "reproduced shape: qss_wins = {}, cycle ratio = {:.2} (paper 1.26)",
        table.qss_wins(),
        table.cycle_ratio()
    );

    // Pre-compute the two implementations once; the timed region is the simulation of the
    // 50-cell testbench, which is the quantity Table I reports.
    let schedule = quasi_static_schedule(&model.net, &QssOptions::default())
        .expect("fc input")
        .schedule()
        .expect("atm model is schedulable");
    let program =
        synthesize(&model.net, &schedule, SynthesisOptions::default()).expect("synthesis");
    let tasks = functional_partition(&model);
    let traffic = TrafficConfig::paper();
    let workload = generate_workload(&model, &traffic, 1999);
    let cost = CostModel::default();

    let mut group = c.benchmark_group("table1_qss_vs_functional");
    group.sample_size(20);
    group.bench_function("qss_2_tasks_50_cells", |b| {
        b.iter(|| {
            let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
            simulate_program(&program, &model.net, &cost, &workload, &mut policy)
                .expect("simulation")
                .total_cycles
        })
    });
    group.bench_function("functional_5_tasks_50_cells", |b| {
        b.iter(|| {
            let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
            simulate_functional_partition(&model.net, &tasks, &cost, &workload, &mut policy)
                .expect("simulation")
                .total_cycles
        })
    });
    group.bench_function("qss_full_flow_schedule_synthesise", |b| {
        b.iter(|| {
            let schedule = quasi_static_schedule(&model.net, &QssOptions::default())
                .expect("fc input")
                .schedule()
                .expect("schedulable");
            synthesize(&model.net, &schedule, SynthesisOptions::default()).expect("synthesis")
        })
    });
    group.finish();
}

/// The Monte-Carlo seed sweep: one [`FunctionalSimBatch`] across `n` traffic seeds,
/// per-seed medians, batch results pinned against fresh simulators before timing.
fn run_seed_sweep(n: u64) {
    let samples: usize = std::env::var("FCPN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let model = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
    let tasks = functional_partition(&model);
    let traffic = TrafficConfig::paper();
    let cost = CostModel::default();
    let mut batch = FunctionalSimBatch::new(&model.net, &tasks, &cost).expect("sources are owned");

    println!("--- Table I functional baseline, {n} traffic seeds on one shared session ---");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>12}",
        "seed", "events", "cycles", "cyc/event", "median_ms"
    );
    let base_seed = 1999u64;
    for seed in (0..n).map(|i| base_seed + i) {
        let workload = generate_workload(&model, &traffic, seed);
        // Equivalence gate per seed: the rolled-back shared session must reproduce a
        // fresh simulator's report exactly before anything is timed.
        let mut batch_policy = AtmChoicePolicy::new(&model, traffic, seed);
        let report = batch.run(&workload, &mut batch_policy).expect("simulation");
        let mut fresh_policy = AtmChoicePolicy::new(&model, traffic, seed);
        let fresh =
            simulate_functional_partition(&model.net, &tasks, &cost, &workload, &mut fresh_policy)
                .expect("simulation");
        assert_eq!(
            report, fresh,
            "seed {seed} diverged between batch and fresh"
        );

        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let mut policy = AtmChoicePolicy::new(&model, traffic, seed);
                let start = Instant::now();
                criterion::black_box(batch.run(&workload, &mut policy).expect("simulation"));
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_ms = times[times.len() / 2] * 1e3;
        println!(
            "{:>6} {:>8} {:>12} {:>14.1} {:>12.4}",
            seed,
            report.events_processed,
            report.total_cycles,
            report.cycles_per_event(),
            median_ms
        );
    }
}

criterion_group!(benches, bench_table1);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--seeds") {
        let n = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--seeds takes a positive integer");
        run_seed_sweep(n);
        return;
    }
    benches();
}
