//! Table I: QSS (2 tasks) versus functional task partitioning (5 tasks) on the ATM server
//! with the 50-cell testbench. Prints the reproduced table next to the paper's numbers and
//! times the two simulations separately so the overhead gap is visible in the report.

use criterion::{criterion_group, criterion_main, Criterion};
use fcpn_atm::{
    functional_partition, generate_workload, run_table1, AtmChoicePolicy, AtmConfig, AtmModel,
    Table1Config, TrafficConfig,
};
use fcpn_codegen::{synthesize, SynthesisOptions};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use fcpn_rtos::{simulate_functional_partition, simulate_program, CostModel};

fn bench_table1(c: &mut Criterion) {
    let model = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
    let table = run_table1(&model, &Table1Config::default()).expect("table 1 runs");
    println!("--- Table I (reproduction) ---");
    println!("{table}");
    println!("paper: tasks 2 vs 5 | lines 1664 vs 2187 | cycles 197526 vs 249726");
    println!(
        "reproduced shape: qss_wins = {}, cycle ratio = {:.2} (paper 1.26)",
        table.qss_wins(),
        table.cycle_ratio()
    );

    // Pre-compute the two implementations once; the timed region is the simulation of the
    // 50-cell testbench, which is the quantity Table I reports.
    let schedule = quasi_static_schedule(&model.net, &QssOptions::default())
        .expect("fc input")
        .schedule()
        .expect("atm model is schedulable");
    let program =
        synthesize(&model.net, &schedule, SynthesisOptions::default()).expect("synthesis");
    let tasks = functional_partition(&model);
    let traffic = TrafficConfig::paper();
    let workload = generate_workload(&model, &traffic, 1999);
    let cost = CostModel::default();

    let mut group = c.benchmark_group("table1_qss_vs_functional");
    group.sample_size(20);
    group.bench_function("qss_2_tasks_50_cells", |b| {
        b.iter(|| {
            let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
            simulate_program(&program, &model.net, &cost, &workload, &mut policy)
                .expect("simulation")
                .total_cycles
        })
    });
    group.bench_function("functional_5_tasks_50_cells", |b| {
        b.iter(|| {
            let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
            simulate_functional_partition(&model.net, &tasks, &cost, &workload, &mut policy)
                .expect("simulation")
                .total_cycles
        })
    });
    group.bench_function("qss_full_flow_schedule_synthesise", |b| {
        b.iter(|| {
            let schedule = quasi_static_schedule(&model.net, &QssOptions::default())
                .expect("fc input")
                .schedule()
                .expect("schedulable");
            synthesize(&model.net, &schedule, SynthesisOptions::default()).expect("synthesis")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
