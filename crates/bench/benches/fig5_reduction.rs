//! Figure 5 / Figure 6: T-allocation enumeration, the Reduction Algorithm and component
//! scheduling on the nine-transition example. Prints the two reductions' cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use fcpn_petri::gallery;
use fcpn_qss::{
    check_component, enumerate_allocations, AllocationOptions, ComponentVerdict, TReduction,
};
use std::hint::black_box;

fn bench_figure5(c: &mut Criterion) {
    let net = gallery::figure5();
    let allocations =
        enumerate_allocations(&net, AllocationOptions::default()).expect("figure 5 is FC");
    for allocation in &allocations {
        let reduction = TReduction::compute(&net, allocation.clone()).expect("reduction succeeds");
        if let ComponentVerdict::Schedulable(cycle) = check_component(&net, &reduction) {
            println!(
                "figure 5, allocation [{}]: cycle ({})",
                allocation.describe(&net),
                net.format_sequence(&cycle.sequence)
            );
        }
    }

    let mut group = c.benchmark_group("fig5_reduction");
    group.bench_function("enumerate_allocations", |b| {
        b.iter(|| enumerate_allocations(black_box(&net), AllocationOptions::default()))
    });
    group.bench_function("reduction_algorithm", |b| {
        b.iter(|| {
            allocations
                .iter()
                .map(|a| TReduction::compute(&net, a.clone()).expect("reduction succeeds"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("component_schedulability", |b| {
        let reductions: Vec<TReduction> = allocations
            .iter()
            .map(|a| TReduction::compute(&net, a.clone()).expect("reduction succeeds"))
            .collect();
        b.iter(|| {
            reductions
                .iter()
                .map(|r| check_component(&net, r).is_schedulable())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
