//! Figure 3: quasi-static schedulability of the schedulable net (3a) versus the
//! non-schedulable one (3b). Prints the verdict and the valid schedule of 3a.

use criterion::{criterion_group, criterion_main, Criterion};
use fcpn_petri::gallery;
use fcpn_qss::{quasi_static_schedule, QssOptions, QssOutcome};
use std::hint::black_box;

fn bench_schedulability(c: &mut Criterion) {
    let fig3a = gallery::figure3a();
    let fig3b = gallery::figure3b();
    match quasi_static_schedule(&fig3a, &QssOptions::default()).expect("fc input") {
        QssOutcome::Schedulable(s) => {
            println!("figure 3a: schedulable, S = {}", s.describe(&fig3a))
        }
        QssOutcome::NotSchedulable(_) => println!("figure 3a: UNEXPECTEDLY not schedulable"),
    }
    match quasi_static_schedule(&fig3b, &QssOptions::default()).expect("fc input") {
        QssOutcome::Schedulable(_) => println!("figure 3b: UNEXPECTEDLY schedulable"),
        QssOutcome::NotSchedulable(report) => println!("figure 3b: not schedulable ({report})"),
    }

    let mut group = c.benchmark_group("fig3_schedulability");
    group.bench_function("figure3a_schedulable", |b| {
        b.iter(|| quasi_static_schedule(black_box(&fig3a), &QssOptions::default()))
    });
    group.bench_function("figure3b_not_schedulable", |b| {
        b.iter(|| quasi_static_schedule(black_box(&fig3b), &QssOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_schedulability);
criterion_main!(benches);
