//! The zero-allocation scheduling pipeline against the retained seed pipeline.
//!
//! `quasi_static_schedule` sweeps the allocation space in gray-code order on workspace
//! reductions, 128-bit streamed component fingerprints and the sparse fraction-free
//! Farkas elimination; `quasi_static_schedule_naive` is the seed path (counting-order
//! enumeration, per-call `BTreeSet` reductions, `Vec<u64>` cache keys, dense Farkas).
//! Both outcomes are asserted bit-for-bit identical — including at 2 and 4 sweep
//! threads — before anything is timed.
//!
//! The uncached rows disable the component cache, so every allocation pays the full
//! reduction + invariant analysis + cycle simulation: that is the configuration that
//! isolates the per-allocation pipeline win (the `scheduler` section of
//! `BENCH_statespace.json` records the same comparison at larger sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_petri::analysis::{IncidenceMatrix, InvariantAnalysis};
use fcpn_petri::gallery;
use fcpn_qss::{
    allocation_iter, allocation_iter_gray, quasi_static_schedule, quasi_static_schedule_naive,
    AllocationOptions, QssOptions, ReductionWorkspace, TReduction,
};

fn options(reuse_component_cache: bool, threads: usize) -> QssOptions {
    QssOptions {
        reuse_component_cache,
        threads,
        ..QssOptions::default()
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let net = gallery::choice_chain(10);
    // Equivalence gate across the whole configuration matrix before timing.
    let reference = quasi_static_schedule_naive(&net, &options(false, 1)).expect("fc");
    for threads in [1usize, 2, 4] {
        for cache in [true, false] {
            let outcome = quasi_static_schedule(&net, &options(cache, threads)).expect("fc");
            assert_eq!(reference, outcome, "threads={threads} cache={cache}");
        }
    }
    assert_eq!(
        reference,
        quasi_static_schedule_naive(&net, &options(true, 1)).expect("fc")
    );

    let mut group = c.benchmark_group("qss_pipeline/choice_chain(10)");
    group.sample_size(10);
    group.bench_function("naive_uncached", |b| {
        b.iter(|| quasi_static_schedule_naive(&net, &options(false, 1)).expect("fc"))
    });
    group.bench_function("fast_uncached", |b| {
        b.iter(|| quasi_static_schedule(&net, &options(false, 1)).expect("fc"))
    });
    group.bench_function("naive_cached", |b| {
        b.iter(|| quasi_static_schedule_naive(&net, &options(true, 1)).expect("fc"))
    });
    group.bench_function("fast_cached", |b| {
        b.iter(|| quasi_static_schedule(&net, &options(true, 1)).expect("fc"))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("fast_cached_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| quasi_static_schedule(&net, &options(true, threads)).expect("fc"))
            },
        );
    }
    group.finish();
}

fn bench_reduction_layer(c: &mut Criterion) {
    // The reduction layer alone: enumerate every allocation and reduce it, seed
    // (counting order + BTreeSets) versus fast (gray order + workspace, no trace).
    let net = gallery::choice_chain(10);
    let mut group = c.benchmark_group("qss_pipeline/reductions(choice_chain(10))");
    group.sample_size(10);
    group.bench_function("seed_compute", |b| {
        b.iter(|| {
            let mut kept = 0usize;
            for allocation in allocation_iter(&net, AllocationOptions::default()).expect("fc") {
                let reduction = TReduction::compute(&net, allocation).expect("reduce");
                kept += reduction.net.transition_count();
            }
            kept
        })
    });
    group.bench_function("gray_workspace", |b| {
        b.iter(|| {
            let mut ws = ReductionWorkspace::new();
            let mut kept = 0usize;
            for (_, allocation) in
                allocation_iter_gray(&net, AllocationOptions::default()).expect("fc")
            {
                ws.reduce(&net, &allocation, false);
                kept += ws.kept_transitions().len();
            }
            kept
        })
    });
    group.finish();
}

fn bench_farkas_layer(c: &mut Criterion) {
    // The invariant-analysis layer alone, on a representative component: the reduction
    // of choice_chain(12)'s first allocation (every allocation of a symmetric chain
    // reduces to this shape) and the full figure5 net.
    let chain = gallery::choice_chain(12);
    let allocation = allocation_iter(&chain, AllocationOptions::default())
        .expect("fc")
        .next()
        .expect("at least one allocation");
    let component = TReduction::compute(&chain, allocation).expect("reduce").net;
    let cases = [
        (
            "choice_chain(12)_component",
            IncidenceMatrix::from_net(&component),
        ),
        ("figure5", IncidenceMatrix::from_net(&gallery::figure5())),
    ];
    let mut group = c.benchmark_group("qss_pipeline/farkas");
    group.sample_size(10);
    for (label, d) in &cases {
        let sparse = InvariantAnalysis::of_matrix(d);
        let dense = InvariantAnalysis::of_matrix_naive(d);
        assert_eq!(sparse, dense, "{label}: semiflow bases diverged");
        group.bench_with_input(BenchmarkId::new("dense_naive", label), d, |b, d| {
            b.iter(|| InvariantAnalysis::of_matrix_naive(d))
        });
        group.bench_with_input(
            BenchmarkId::new("sparse_fraction_free", label),
            d,
            |b, d| b.iter(|| InvariantAnalysis::of_matrix(d)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_reduction_layer,
    bench_farkas_layer
);
criterion_main!(benches);
