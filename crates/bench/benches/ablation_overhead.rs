//! Ablation: how the Table I cycle advantage of QSS depends on the RTOS activation
//! overhead. The paper measures one operating point (ratio ≈ 1.26); this sweep shows the
//! whole curve — with zero activation overhead the two implementations converge (both do
//! the same computations), and the gap widens as context switches get more expensive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_atm::{
    functional_partition, generate_workload, AtmChoicePolicy, AtmConfig, AtmModel, TrafficConfig,
};
use fcpn_codegen::{synthesize, SynthesisOptions};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use fcpn_rtos::{simulate_functional_partition, simulate_program, CostModel};

fn bench_overhead_ablation(c: &mut Criterion) {
    let model = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
    let schedule = quasi_static_schedule(&model.net, &QssOptions::default())
        .expect("fc input")
        .schedule()
        .expect("schedulable");
    let program =
        synthesize(&model.net, &schedule, SynthesisOptions::default()).expect("synthesis");
    let tasks = functional_partition(&model);
    let traffic = TrafficConfig::paper();
    let workload = generate_workload(&model, &traffic, 1999);

    println!("activation overhead | QSS cycles | functional cycles | ratio");
    for overhead in [0u64, 50, 100, 250, 500, 1000] {
        let cost = CostModel::new(overhead, 40, 4, 12);
        let mut qss_policy = AtmChoicePolicy::new(&model, traffic, 1999);
        let qss = simulate_program(&program, &model.net, &cost, &workload, &mut qss_policy)
            .expect("simulation")
            .total_cycles;
        let mut functional_policy = AtmChoicePolicy::new(&model, traffic, 1999);
        let functional = simulate_functional_partition(
            &model.net,
            &tasks,
            &cost,
            &workload,
            &mut functional_policy,
        )
        .expect("simulation")
        .total_cycles;
        println!(
            "{overhead:>19} | {qss:>10} | {functional:>17} | {:.2}",
            functional as f64 / qss.max(1) as f64
        );
    }

    let mut group = c.benchmark_group("ablation_overhead");
    group.sample_size(20);
    for overhead in [0u64, 250, 1000] {
        let cost = CostModel::new(overhead, 40, 4, 12);
        group.bench_with_input(
            BenchmarkId::new("qss_simulation", overhead),
            &cost,
            |b, cost| {
                b.iter(|| {
                    let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
                    simulate_program(&program, &model.net, cost, &workload, &mut policy)
                        .expect("simulation")
                        .total_cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead_ablation);
criterion_main!(benches);
