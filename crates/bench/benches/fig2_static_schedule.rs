//! Figure 2: fully static scheduling of the multirate chain — repetition vector via the
//! state equation plus PASS construction by simulation. Prints the invariant and the
//! schedule the paper shows ((4, 2, 1) and `t1 t1 t1 t1 t2 t2 t3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_petri::analysis::InvariantAnalysis;
use fcpn_petri::gallery;
use fcpn_sdf::{schedule_conflict_free, FiringPolicy, SdfGraph};
use std::hint::black_box;

fn multirate_chain(actors: usize) -> SdfGraph {
    let mut graph = SdfGraph::new(format!("chain-{actors}"));
    let ids: Vec<_> = (0..actors).map(|i| graph.actor(format!("a{i}"))).collect();
    for window in ids.windows(2) {
        graph
            .channel(window[0], 1, window[1], 2, 0)
            .expect("valid channel");
    }
    graph
}

fn bench_static_schedule(c: &mut Criterion) {
    let figure2 = gallery::figure2();
    let invariants = InvariantAnalysis::of(&figure2);
    let schedule =
        schedule_conflict_free(&figure2, &[4, 2, 1], FiringPolicy::Eager).expect("schedules");
    println!(
        "figure 2: f(sigma) = {:?}, sigma = {}",
        invariants.t_semiflows[0].vector,
        figure2.format_sequence(&schedule.sequence)
    );

    let mut group = c.benchmark_group("fig2_static_schedule");
    group.bench_function("figure2_invariant", |b| {
        b.iter(|| InvariantAnalysis::of(black_box(&figure2)))
    });
    group.bench_function("figure2_pass_simulation", |b| {
        b.iter(|| {
            schedule_conflict_free(black_box(&figure2), &[4, 2, 1], FiringPolicy::Eager)
                .expect("schedules")
        })
    });
    for actors in [4usize, 8, 16] {
        let graph = multirate_chain(actors);
        group.bench_with_input(
            BenchmarkId::new("downsampling_chain", actors),
            &graph,
            |b, graph| {
                b.iter(|| {
                    graph
                        .static_schedule(FiringPolicy::Eager)
                        .expect("schedules")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_static_schedule);
criterion_main!(benches);
