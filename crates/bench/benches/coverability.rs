//! Coverability-graph construction: the interned build (hash-of-slice lookup per
//! successor) against the retained naive build (`nodes.iter().position(..)`, O(V) per
//! successor). The gap widens superlinearly with the node count — the asymptotic win of
//! porting node identity onto the state-space interner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_petri::analysis::{CoverabilityGraph, CoverabilityOptions};
use fcpn_petri::gallery;
use std::hint::black_box;

fn bench_coverability(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverability_build");
    // Bounded rings: the coverability graph equals the reachability graph, giving a
    // clean node-count sweep (715 and 12 376 nodes).
    let cases = [
        ("marked_ring_10_4", gallery::marked_ring(10, 4)),
        ("marked_ring_12_6", gallery::marked_ring(12, 6)),
    ];
    for (name, net) in &cases {
        let graph = CoverabilityGraph::build(net, CoverabilityOptions::default());
        println!(
            "{name}: {} nodes, {} edges",
            graph.nodes.len(),
            graph.edges.len()
        );
        group.bench_with_input(BenchmarkId::new("interned", name), net, |b, net| {
            b.iter(|| CoverabilityGraph::build(black_box(net), CoverabilityOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("naive", name), net, |b, net| {
            b.iter(|| {
                CoverabilityGraph::build_naive(black_box(net), CoverabilityOptions::default())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coverability);
criterion_main!(benches);
