//! Figure 4 (and the Section 4 C listing): scheduling the weighted net, synthesising its
//! task and executing the generated code. Prints the valid schedule and the C text size.

use criterion::{criterion_group, criterion_main, Criterion};
use fcpn_bench::program_of;
use fcpn_codegen::{emit_c, CEmitOptions, FixedResolver, Interpreter};
use fcpn_petri::gallery;
use std::hint::black_box;

fn bench_figure4(c: &mut Criterion) {
    let net = gallery::figure4();
    let (schedule, program) = program_of(&net);
    let c_text = emit_c(&program, &net, CEmitOptions::default());
    println!(
        "figure 4: S = {}, generated C = {} lines",
        schedule.describe(&net),
        c_text.lines().count()
    );

    let mut group = c.benchmark_group("fig4_weighted");
    group.bench_function("schedule_and_synthesise", |b| {
        b.iter(|| program_of(black_box(&net)))
    });
    group.bench_function("emit_c", |b| {
        b.iter(|| emit_c(black_box(&program), &net, CEmitOptions::default()))
    });
    group.bench_function("interpret_100_events", |b| {
        b.iter(|| {
            let mut interpreter = Interpreter::new(&program, &net);
            let mut resolver = FixedResolver { arm: 0 };
            for _ in 0..100 {
                interpreter
                    .run_task(0, &mut resolver)
                    .expect("generated code executes");
            }
            interpreter.fire_counts().to_vec()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
