//! Figure 7: rejecting a non-schedulable FCPN — both T-reductions are inconsistent
//! because they keep a source place that can only supply finitely many tokens. Prints the
//! per-component diagnosis and times the rejection path.

use criterion::{criterion_group, criterion_main, Criterion};
use fcpn_petri::gallery;
use fcpn_qss::{quasi_static_schedule, QssOptions, QssOutcome};
use std::hint::black_box;

fn bench_figure7(c: &mut Criterion) {
    let net = gallery::figure7();
    if let QssOutcome::NotSchedulable(report) =
        quasi_static_schedule(&net, &QssOptions::default()).expect("fc input")
    {
        for failure in &report.failures {
            println!(
                "figure 7, allocation [{}]: {:?}",
                failure.allocation, failure.failure
            );
        }
    }

    let mut group = c.benchmark_group("fig7_unschedulable");
    group.bench_function("diagnose_figure7", |b| {
        b.iter(|| quasi_static_schedule(black_box(&net), &QssOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_figure7);
criterion_main!(benches);
