//! The firing fast path head to head against the seed token game, at two levels:
//!
//! * **raw traces** — a deterministic rotating trace over each gallery net, executed by
//!   [`fcpn_bench::run_naive_trace`] (owned `Marking`, checked `fire`, full enabled
//!   rescan per step) and [`fcpn_bench::run_session_trace`]
//!   ([`fcpn_petri::statespace::FiringSession`]: flat buffer, delta rows, bitmask
//!   enabled queries);
//! * **the Table I workload** — the ATM functional-partitioning simulation and the full
//!   `run_table1` harness, on the session-backed simulator versus the retained
//!   marking-by-marking reference.
//!
//! The corresponding recorded baselines live in the `firing_session` and `table1`
//! sections of `BENCH_statespace.json` (regenerate with
//! `cargo run --release -p fcpn-bench --example scaling_table -- --out BENCH_statespace.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcpn_atm::{
    functional_partition, generate_workload, run_table1, run_table1_naive, AtmChoicePolicy,
    AtmConfig, AtmModel, Table1Config, TrafficConfig,
};
use fcpn_bench::{run_naive_trace, run_session_trace};
use fcpn_petri::gallery;
use fcpn_rtos::{simulate_functional_partition, simulate_functional_partition_naive, CostModel};
use std::hint::black_box;

const TRACE_STEPS: usize = 20_000;

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("firing_session_trace");
    let cases = [
        ("figure5", gallery::figure5()),
        ("choice_chain_8", gallery::choice_chain(8)),
        ("marked_ring_12_6", gallery::marked_ring(12, 6)),
        ("cycle_bank_12", gallery::cycle_bank(12)),
    ];
    for (name, net) in &cases {
        // Same trace on both sides: assert it before timing anything.
        let (naive_fired, naive_marking) = run_naive_trace(net, TRACE_STEPS);
        let (session_fired, session_marking) = run_session_trace(net, TRACE_STEPS);
        assert_eq!(naive_fired, session_fired);
        assert_eq!(naive_marking, session_marking);
        println!("{name}: {naive_fired} firings per trace");

        group.bench_function(BenchmarkId::new("naive", name), |b| {
            b.iter(|| run_naive_trace(black_box(net), TRACE_STEPS))
        });
        group.bench_function(BenchmarkId::new("session", name), |b| {
            b.iter(|| run_session_trace(black_box(net), TRACE_STEPS))
        });
    }
    group.finish();
}

fn bench_table1_paths(c: &mut Criterion) {
    let model = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
    let traffic = TrafficConfig::paper();
    let workload = generate_workload(&model, &traffic, 1999);
    let tasks = functional_partition(&model);
    let cost = CostModel::default();

    // The two simulators must report identical cycles before we time them.
    let mut fast_policy = AtmChoicePolicy::new(&model, traffic, 1999);
    let fast =
        simulate_functional_partition(&model.net, &tasks, &cost, &workload, &mut fast_policy)
            .expect("simulation");
    let mut naive_policy = AtmChoicePolicy::new(&model, traffic, 1999);
    let naive = simulate_functional_partition_naive(
        &model.net,
        &tasks,
        &cost,
        &workload,
        &mut naive_policy,
    )
    .expect("simulation");
    assert_eq!(fast, naive, "fast path diverged from the naive reference");
    println!(
        "functional baseline: {} cycles over {} events (both paths)",
        fast.total_cycles, fast.events_processed
    );

    let mut group = c.benchmark_group("table1_fast_path");
    group.sample_size(20);
    group.bench_function("functional_sim_naive", |b| {
        b.iter(|| {
            let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
            simulate_functional_partition_naive(&model.net, &tasks, &cost, &workload, &mut policy)
                .expect("simulation")
                .total_cycles
        })
    });
    group.bench_function("functional_sim_session", |b| {
        b.iter(|| {
            let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
            simulate_functional_partition(&model.net, &tasks, &cost, &workload, &mut policy)
                .expect("simulation")
                .total_cycles
        })
    });
    group.bench_function("run_table1_naive", |b| {
        b.iter(|| {
            run_table1_naive(&model, &Table1Config::default())
                .expect("table 1 runs")
                .functional
                .clock_cycles
        })
    });
    group.bench_function("run_table1_session", |b| {
        b.iter(|| {
            run_table1(&model, &Table1Config::default())
                .expect("table 1 runs")
                .functional
                .clock_cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_traces, bench_table1_paths);
criterion_main!(benches);
