//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper; the helpers here centralise
//! the "schedule and synthesise" boilerplate so the benches only time the part the paper
//! talks about and print the rows/series being reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fcpn_codegen::{synthesize, Program, SynthesisOptions};
use fcpn_petri::PetriNet;
use fcpn_qss::{quasi_static_schedule, QssOptions, ValidSchedule};

/// Computes the valid schedule of a net that is known to be schedulable.
///
/// # Panics
///
/// Panics if the net is not schedulable — benches only call this on the paper's
/// schedulable figures.
pub fn schedule_of(net: &PetriNet) -> ValidSchedule {
    quasi_static_schedule(net, &QssOptions::default())
        .expect("net is a valid free-choice input")
        .schedule()
        .expect("net is schedulable")
}

/// Schedules and synthesises a net in one step.
///
/// # Panics
///
/// Panics if the net is not schedulable.
pub fn program_of(net: &PetriNet) -> (ValidSchedule, Program) {
    program_of_with(net, &QssOptions::default())
}

/// [`program_of`] under explicit scheduler options (used by the baseline emitter to
/// measure the component cache on and off).
///
/// # Panics
///
/// Panics if the net is not schedulable.
pub fn program_of_with(net: &PetriNet, options: &QssOptions) -> (ValidSchedule, Program) {
    let schedule = quasi_static_schedule(net, options)
        .expect("net is a valid free-choice input")
        .schedule()
        .expect("net is schedulable");
    let program = synthesize(net, &schedule, SynthesisOptions::default())
        .expect("schedulable nets synthesise");
    (schedule, program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::gallery;

    #[test]
    fn helpers_work_on_figure4() {
        let net = gallery::figure4();
        let (schedule, program) = program_of(&net);
        assert_eq!(schedule.cycle_count(), 2);
        assert_eq!(program.task_count(), 1);
    }
}
