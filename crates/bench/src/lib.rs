//! Shared helpers for the benchmark harness.
//!
//! Every bench regenerates one table or figure of the paper; the helpers here centralise
//! the "schedule and synthesise" boilerplate so the benches only time the part the paper
//! talks about and print the rows/series being reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serveload;

use fcpn_codegen::{
    synthesize, CompiledProgram, ExecSession, Interpreter, Program, RoundRobinResolver,
    SynthesisOptions,
};
use fcpn_petri::statespace::FiringSession;
use fcpn_petri::{Marking, PetriNet};
use fcpn_qss::{quasi_static_schedule, QssOptions, ValidSchedule};

/// Computes the valid schedule of a net that is known to be schedulable.
///
/// # Panics
///
/// Panics if the net is not schedulable — benches only call this on the paper's
/// schedulable figures.
pub fn schedule_of(net: &PetriNet) -> ValidSchedule {
    quasi_static_schedule(net, &QssOptions::default())
        .expect("net is a valid free-choice input")
        .schedule()
        .expect("net is schedulable")
}

/// Schedules and synthesises a net in one step.
///
/// # Panics
///
/// Panics if the net is not schedulable.
pub fn program_of(net: &PetriNet) -> (ValidSchedule, Program) {
    program_of_with(net, &QssOptions::default())
}

/// [`program_of`] under explicit scheduler options (used by the baseline emitter to
/// measure the component cache on and off).
///
/// # Panics
///
/// Panics if the net is not schedulable.
pub fn program_of_with(net: &PetriNet, options: &QssOptions) -> (ValidSchedule, Program) {
    let schedule = quasi_static_schedule(net, options)
        .expect("net is a valid free-choice input")
        .schedule()
        .expect("net is schedulable");
    let program = synthesize(net, &schedule, SynthesisOptions::default())
        .expect("schedulable nets synthesise");
    (schedule, program)
}

/// Drives `steps` deterministic token-game steps on the seed path: owned [`Marking`],
/// checked [`PetriNet::fire`], full `enabled_transitions` rescan per step. The next
/// transition is picked by rotating over the enabled set, so the trace is reproducible
/// and identical to [`run_session_trace`]. Returns the number of firings and the final
/// marking (for cross-path equality assertions).
pub fn run_naive_trace(net: &PetriNet, steps: usize) -> (u64, Marking) {
    let mut marking = net.initial_marking().clone();
    let mut fired = 0u64;
    let mut cursor = 0usize;
    for _ in 0..steps {
        let enabled = net.enabled_transitions(&marking);
        if enabled.is_empty() {
            break;
        }
        let t = enabled[cursor % enabled.len()];
        cursor = cursor.wrapping_add(1);
        net.fire(&mut marking, t).expect("enabled transition fires");
        fired += 1;
    }
    (fired, marking)
}

/// The same deterministic trace as [`run_naive_trace`], executed on the
/// [`FiringSession`] fast path (flat width-adaptive buffer, delta-row firing, bitmask
/// enabled-set queries into a reused vector). The two functions fire the exact same
/// sequence; benches time them head to head and tests assert the final markings agree.
pub fn run_session_trace(net: &PetriNet, steps: usize) -> (u64, Marking) {
    let mut session = FiringSession::new(net);
    let mut enabled = Vec::new();
    let mut fired = 0u64;
    let mut cursor = 0usize;
    for _ in 0..steps {
        session.enabled_into(&mut enabled);
        if enabled.is_empty() {
            break;
        }
        let t = enabled[cursor % enabled.len()];
        cursor = cursor.wrapping_add(1);
        session.fire(t).expect("enabled transition fires");
        fired += 1;
    }
    (fired, session.marking())
}

/// Pumps `activations` task activations (round-robin across tasks, round-robin choice
/// resolution) through the tree-walking [`Interpreter`] oracle. Returns the total number
/// of transition firings and the per-transition fire counts, so callers can assert the
/// two executor paths performed identical work before timing them.
pub fn pump_interpreter(program: &Program, net: &PetriNet, activations: usize) -> (u64, Vec<u64>) {
    let mut interp = Interpreter::new(program, net);
    let mut resolver = RoundRobinResolver::default();
    let tasks = program.task_count();
    let mut fired = 0u64;
    for i in 0..activations {
        fired += interp
            .run_task(i % tasks, &mut resolver)
            .expect("bench programs execute")
            .fired
            .len() as u64;
    }
    (fired, interp.fire_counts().to_vec())
}

/// The same event pump as [`pump_interpreter`], executed on the compiled streaming
/// runtime: single-task programs go through [`ExecSession::run_batch`] (one call per
/// pump), multi-task programs interleave [`ExecSession::run_task`] in the same
/// round-robin order as the interpreter. Firing totals and fire counts are identical to
/// [`pump_interpreter`]'s for the same inputs.
pub fn pump_compiled(compiled: &CompiledProgram, activations: usize) -> (u64, Vec<u64>) {
    let mut session = ExecSession::new(compiled);
    let mut resolver = RoundRobinResolver::default();
    let tasks = compiled.task_count();
    let fired = if tasks == 1 {
        session
            .run_batch(0, activations as u64, &mut resolver)
            .expect("bench programs execute")
            .len() as u64
    } else {
        let mut fired = 0u64;
        for i in 0..activations {
            fired += session
                .run_task(i % tasks, &mut resolver)
                .expect("bench programs execute")
                .len() as u64;
        }
        fired
    };
    (fired, session.fire_counts().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::gallery;

    #[test]
    fn trace_helpers_agree_across_paths() {
        for net in [
            gallery::figure2(),
            gallery::figure5(),
            gallery::marked_ring(8, 4),
            gallery::choice_chain(5),
        ] {
            let (naive_fired, naive_marking) = run_naive_trace(&net, 2_000);
            let (session_fired, session_marking) = run_session_trace(&net, 2_000);
            assert_eq!(naive_fired, session_fired);
            assert_eq!(naive_marking, session_marking);
        }
    }

    #[test]
    fn helpers_work_on_figure4() {
        let net = gallery::figure4();
        let (schedule, program) = program_of(&net);
        assert_eq!(schedule.cycle_count(), 2);
        assert_eq!(program.task_count(), 1);
    }

    #[test]
    fn pump_helpers_agree_across_executors() {
        for net in [
            gallery::figure4(),
            gallery::figure5(),
            gallery::choice_chain(6),
        ] {
            let (_, program) = program_of(&net);
            let compiled = CompiledProgram::compile(&program, &net);
            let (interp_fired, interp_counts) = pump_interpreter(&program, &net, 500);
            let (exec_fired, exec_counts) = pump_compiled(&compiled, 500);
            assert_eq!(interp_fired, exec_fired, "{}", net.name());
            assert_eq!(interp_counts, exec_counts, "{}", net.name());
            assert!(interp_fired > 0);
        }
    }
}
