//! The daemon load benchmark behind the `server` section of `BENCH_statespace.json`.
//!
//! Spawns an in-process [`fcpn_serve::Server`] on an ephemeral port, replays the
//! gallery and ATM nets from N concurrent connections per endpoint (via
//! [`fcpn_serve::load::run_load`]) and renders the results as the schema-v5 `server`
//! JSON section. Both the `serve_load` example (the standalone load generator) and the
//! `scaling_table` baseline emitter call into this module, so the section always has
//! one shape.

use fcpn_atm::{AtmConfig, AtmModel};
use fcpn_petri::gallery;
use fcpn_petri::io::to_text;
use fcpn_serve::json::Json;
use fcpn_serve::load::{run_load, LoadReport, LoadSpec};
use fcpn_serve::{Server, ServerConfig};
use std::time::Duration;

/// Configuration of one server-bench run.
#[derive(Debug, Clone)]
pub struct ServerBenchSpec {
    /// Concurrent client connections per endpoint pass.
    pub connections: usize,
    /// Requests each connection issues per endpoint pass.
    pub requests_per_connection: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon accept-queue capacity.
    pub queue_capacity: usize,
    /// Endpoints to exercise (path + query).
    pub endpoints: Vec<String>,
    /// Include the ATM case-study nets next to the gallery nets.
    pub include_atm: bool,
}

impl Default for ServerBenchSpec {
    fn default() -> Self {
        ServerBenchSpec {
            connections: 16,
            requests_per_connection: 8,
            workers: 4,
            queue_capacity: 64,
            endpoints: vec!["/schedule".into(), "/analyze".into()],
            include_atm: true,
        }
    }
}

/// One endpoint's aggregated outcome.
#[derive(Debug)]
pub struct EndpointRow {
    /// Path + query replayed.
    pub endpoint: String,
    /// The load report for this pass.
    pub report: LoadReport,
}

impl EndpointRow {
    /// One human-readable summary line, shared by every binary that prints a run.
    pub fn summary_line(&self) -> String {
        let r = &self.report;
        format!(
            "{:<30} {:>5} ok {:>3} shed {:>3} err  p50 {:>9.1}us  p95 {:>10.1}us  \
             {:>8.1} req/s  cache {:>5.1}%",
            self.endpoint,
            r.ok,
            r.rejected,
            r.errors,
            r.p50_us,
            r.p95_us,
            r.throughput_rps,
            r.cache_hit_rate() * 100.0
        )
    }
}

/// The whole `server` section, ready to render.
#[derive(Debug)]
pub struct ServerSection {
    /// The spec that produced it.
    pub spec: ServerBenchSpec,
    /// Labels of the replayed nets.
    pub net_labels: Vec<String>,
    /// One row per endpoint pass.
    pub rows: Vec<EndpointRow>,
}

impl ServerSection {
    /// Cache hit rate across all passes.
    pub fn overall_cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.rows.iter().map(|r| r.report.cache_hits).sum();
        let misses: u64 = self.rows.iter().map(|r| r.report.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Renders the section as a JSON object (the value of the top-level `"server"`
    /// key in schema v5).
    pub fn render(&self) -> String {
        Json::obj([
            ("workers", Json::from(self.spec.workers)),
            ("queue_capacity", Json::from(self.spec.queue_capacity)),
            ("connections", Json::from(self.spec.connections)),
            (
                "requests_per_connection",
                Json::from(self.spec.requests_per_connection),
            ),
            (
                "nets",
                Json::arr(self.net_labels.iter().map(|l| Json::from(l.as_str()))),
            ),
            (
                "endpoints",
                Json::arr(self.rows.iter().map(|row| {
                    let r = &row.report;
                    Json::obj([
                        ("endpoint", Json::from(row.endpoint.as_str())),
                        ("requests", Json::from(r.requests)),
                        ("ok", Json::from(r.ok)),
                        ("rejected_503", Json::from(r.rejected)),
                        ("errors", Json::from(r.errors)),
                        ("p50_us", Json::from(r.p50_us)),
                        ("p95_us", Json::from(r.p95_us)),
                        ("max_us", Json::from(r.max_us)),
                        ("wall_ms", Json::from(r.wall_ms)),
                        ("throughput_rps", Json::from(r.throughput_rps)),
                        ("cache_hits", Json::from(r.cache_hits)),
                        ("cache_misses", Json::from(r.cache_misses)),
                        ("cache_hit_rate", Json::from(r.cache_hit_rate())),
                    ])
                })),
            ),
            ("cache_hit_rate", Json::from(self.overall_cache_hit_rate())),
        ])
        .render()
    }
}

/// The nets the load generator replays: the paper's schedulable figures, a choice
/// chain, and (optionally) both ATM model sizes.
///
/// # Panics
///
/// Panics if the ATM models fail to build (they are fixed constructions).
pub fn bench_nets(include_atm: bool) -> Vec<(String, String)> {
    let mut nets = vec![
        ("figure3a".to_string(), to_text(&gallery::figure3a())),
        ("figure4".to_string(), to_text(&gallery::figure4())),
        ("figure5".to_string(), to_text(&gallery::figure5())),
        (
            "choice_chain(8)".to_string(),
            to_text(&gallery::choice_chain(8)),
        ),
    ];
    if include_atm {
        let small = AtmModel::build(AtmConfig::small()).expect("atm model builds");
        let paper = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
        nets.push(("atm(queues=2)".to_string(), to_text(&small.net)));
        nets.push(("atm(queues=4)".to_string(), to_text(&paper.net)));
    }
    nets
}

/// Runs the bench against an already-running daemon at `addr`.
///
/// # Panics
///
/// Panics if a load pass fails at the transport level (cannot reach `addr`).
pub fn run_against(addr: &str, spec: &ServerBenchSpec) -> ServerSection {
    let nets = bench_nets(spec.include_atm);
    let rows = spec
        .endpoints
        .iter()
        .map(|endpoint| {
            let load_spec = LoadSpec {
                connections: spec.connections,
                requests_per_connection: spec.requests_per_connection,
                target: endpoint.clone(),
                nets: nets.clone(),
                timeout: Duration::from_secs(60),
            };
            let report = run_load(addr, &load_spec).expect("load pass reaches the daemon");
            EndpointRow {
                endpoint: endpoint.clone(),
                report,
            }
        })
        .collect();
    ServerSection {
        spec: spec.clone(),
        net_labels: nets.into_iter().map(|(label, _)| label).collect(),
        rows,
    }
}

/// Spawns an in-process daemon on an ephemeral port, runs the bench against it and
/// shuts it down.
///
/// # Panics
///
/// Panics if the daemon cannot bind a loopback port or a load pass fails.
pub fn run_in_process(spec: &ServerBenchSpec) -> ServerSection {
    let handle = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: spec.workers,
        queue_capacity: spec.queue_capacity,
        ..ServerConfig::default()
    })
    .expect("daemon binds an ephemeral loopback port");
    let section = run_against(&handle.addr().to_string(), spec);
    handle.shutdown();
    section
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_serve::json::parse;

    #[test]
    fn in_process_bench_produces_a_complete_section() {
        let spec = ServerBenchSpec {
            connections: 4,
            requests_per_connection: 4,
            workers: 2,
            endpoints: vec!["/schedule".into()],
            include_atm: false,
            ..ServerBenchSpec::default()
        };
        let section = run_in_process(&spec);
        assert_eq!(section.rows.len(), 1);
        let report = &section.rows[0].report;
        assert_eq!(report.requests, 16);
        assert_eq!(
            report.ok, 16,
            "errors={} rejected={}",
            report.errors, report.rejected
        );
        // 4 nets × 1 option set: at least one miss per distinct key, but concurrent
        // first requests for the same net may both miss before the first insert lands,
        // so the split is a range, not an exact count.
        assert_eq!(report.cache_hits + report.cache_misses, 16);
        assert!(report.cache_misses >= 4, "misses {}", report.cache_misses);
        assert!(report.cache_hits >= 4, "hits {}", report.cache_hits);
        let rendered = parse(&section.render()).expect("section renders valid JSON");
        assert_eq!(
            rendered.get("endpoints").unwrap().as_arr().unwrap().len(),
            1
        );
        assert!(rendered.get("cache_hit_rate").unwrap().as_f64().unwrap() > 0.5);
    }
}
