//! `serve_load` — the standalone load generator for the `fcpn-serve` daemon.
//!
//! Replays the gallery and ATM nets from N concurrent connections and reports request
//! latency quantiles (p50/p95), throughput, shed (503) counts and the daemon's cache
//! hit rate — the numbers that populate the `server` section of
//! `BENCH_statespace.json` (schema v5).
//!
//! ```text
//! # against an in-process daemon (spawned on an ephemeral port):
//! cargo run --release -p fcpn-bench --example serve_load
//!
//! # against an already-running daemon:
//! cargo run --release -p fcpn-bench --example serve_load -- --addr 127.0.0.1:7411
//!
//! # knobs:
//! serve_load [--addr HOST:PORT] [--connections N] [--requests N] [--workers N]
//!            [--endpoint /schedule[?query]]... [--no-atm] [--out FILE]
//! ```
//!
//! With `--out FILE` the rendered `server` JSON section is written to `FILE`; it always
//! goes to stdout.

use fcpn_bench::serveload::{run_against, run_in_process, ServerBenchSpec};

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--addr HOST:PORT] [--connections N] [--requests N] \
         [--workers N] [--endpoint PATH]... [--no-atm] [--out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = ServerBenchSpec {
        connections: 64,
        requests_per_connection: 16,
        workers: 8,
        ..ServerBenchSpec::default()
    };
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut endpoints: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String { args.get(i + 1).cloned().unwrap_or_else(|| usage()) };
        let number = |i: usize| -> usize { value(i).parse().unwrap_or_else(|_| usage()) };
        match args[i].as_str() {
            "--addr" => {
                addr = Some(value(i));
                i += 2;
            }
            "--connections" => {
                spec.connections = number(i).max(1);
                i += 2;
            }
            "--requests" => {
                spec.requests_per_connection = number(i).max(1);
                i += 2;
            }
            "--workers" => {
                spec.workers = number(i).max(1);
                i += 2;
            }
            "--endpoint" => {
                endpoints.push(value(i));
                i += 2;
            }
            "--out" => {
                out = Some(value(i));
                i += 2;
            }
            "--no-atm" => {
                spec.include_atm = false;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if !endpoints.is_empty() {
        spec.endpoints = endpoints;
    }

    eprintln!(
        "replaying {} connections x {} requests per endpoint ({:?})...",
        spec.connections, spec.requests_per_connection, spec.endpoints
    );
    let section = match &addr {
        Some(addr) => run_against(addr, &spec),
        None => run_in_process(&spec),
    };
    for row in &section.rows {
        eprintln!("  {}", row.summary_line());
    }

    let json = section.render();
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write server section");
        eprintln!("wrote {path}");
    }
}
