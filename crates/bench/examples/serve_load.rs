//! `serve_load` — the standalone load generator for the `fcpn-serve` daemon.
//!
//! Replays the gallery and ATM nets from N concurrent connections and reports request
//! latency quantiles (p50/p95), throughput, shed (503) counts and the daemon's cache
//! hit rate — the numbers that populate the `server` section of
//! `BENCH_statespace.json` (schema v5).
//!
//! ```text
//! # against an in-process daemon (spawned on an ephemeral port):
//! cargo run --release -p fcpn-bench --example serve_load
//!
//! # against an already-running daemon:
//! cargo run --release -p fcpn-bench --example serve_load -- --addr 127.0.0.1:7411
//!
//! # knobs:
//! serve_load [--addr HOST:PORT] [--connections N] [--requests N] [--workers N]
//!            [--endpoint /schedule[?query]]... [--no-atm] [--out FILE]
//!            [--fanout N [--idle N] [--tenants a,b,c]]
//! ```
//!
//! With `--out FILE` the rendered `server` JSON section is written to `FILE`; it always
//! goes to stdout.
//!
//! `--fanout N` switches to the single-threaded epoll generator (Linux): N active
//! connections plus `--idle` parked spectator sockets, all driven from one thread, with
//! `--tenants` assigning `X-Fcpn-Tenant` headers round-robin so the report breaks
//! latency quantiles down per tenant.

use fcpn_bench::serveload::{run_against, run_in_process, ServerBenchSpec};
use fcpn_petri::io::to_text;

fn usage() -> ! {
    eprintln!(
        "usage: serve_load [--addr HOST:PORT] [--connections N] [--requests N] \
         [--workers N] [--endpoint PATH]... [--no-atm] [--out FILE] \
         [--fanout N [--idle N] [--tenants a,b,c]]"
    );
    std::process::exit(2);
}

/// `--fanout` mode: drive [`fcpn_serve::load::run_fanout`] and print its report.
fn run_fanout_mode(
    addr: Option<&str>,
    connections: usize,
    idle: usize,
    requests: usize,
    tenants: Vec<String>,
) {
    let spec = fcpn_serve::FanoutSpec {
        connections,
        idle_connections: idle,
        requests_per_connection: requests,
        target: "/schedule".into(),
        nets: vec![
            ("figure3a".into(), to_text(&fcpn_petri::gallery::figure3a())),
            ("figure5".into(), to_text(&fcpn_petri::gallery::figure5())),
        ],
        tenants,
        deadline: std::time::Duration::from_secs(300),
    };
    #[cfg(target_os = "linux")]
    {
        let _ = fcpn_serve::reactor::raise_nofile_limit((connections + idle) as u64 + 512);
    }
    let handle;
    let addr = match addr {
        Some(addr) => addr.to_string(),
        None => {
            handle = fcpn_serve::Server::spawn(fcpn_serve::ServerConfig {
                addr: "127.0.0.1:0".into(),
                ..fcpn_serve::ServerConfig::default()
            })
            .expect("spawn in-process daemon");
            let addr = handle.addr().to_string();
            eprintln!("spawned in-process daemon on {addr}");
            addr
        }
    };
    eprintln!(
        "fanout: {} active + {} idle connections x {} requests...",
        spec.connections, spec.idle_connections, spec.requests_per_connection
    );
    let report = fcpn_serve::load::run_fanout(&addr, &spec).expect("fanout run");
    println!(
        "fanout: {} requests, {} ok, {} rejected(503), {} limited(429), {} errors",
        report.requests, report.ok, report.rejected, report.rate_limited, report.errors
    );
    println!(
        "        p50 {:.0}us  p95 {:.0}us  max {:.0}us  wall {:.0}ms  {:.0} req/s",
        report.p50_us, report.p95_us, report.max_us, report.wall_ms, report.throughput_rps
    );
    for tenant in &report.per_tenant {
        println!(
            "        tenant {:<12} {} requests  p50 {:.0}us  p95 {:.0}us",
            tenant.tenant, tenant.requests, tenant.p50_us, tenant.p95_us
        );
    }
    if report.ok == 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = ServerBenchSpec {
        connections: 64,
        requests_per_connection: 16,
        workers: 8,
        ..ServerBenchSpec::default()
    };
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut endpoints: Vec<String> = Vec::new();
    let mut fanout: Option<usize> = None;
    let mut idle = 0usize;
    let mut tenants: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> String { args.get(i + 1).cloned().unwrap_or_else(|| usage()) };
        let number = |i: usize| -> usize { value(i).parse().unwrap_or_else(|_| usage()) };
        match args[i].as_str() {
            "--addr" => {
                addr = Some(value(i));
                i += 2;
            }
            "--connections" => {
                spec.connections = number(i).max(1);
                i += 2;
            }
            "--requests" => {
                spec.requests_per_connection = number(i).max(1);
                i += 2;
            }
            "--workers" => {
                spec.workers = number(i).max(1);
                i += 2;
            }
            "--endpoint" => {
                endpoints.push(value(i));
                i += 2;
            }
            "--out" => {
                out = Some(value(i));
                i += 2;
            }
            "--no-atm" => {
                spec.include_atm = false;
                i += 1;
            }
            "--fanout" => {
                fanout = Some(number(i).max(1));
                i += 2;
            }
            "--idle" => {
                idle = number(i);
                i += 2;
            }
            "--tenants" => {
                tenants = value(i)
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::to_string)
                    .collect();
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if !endpoints.is_empty() {
        spec.endpoints = endpoints;
    }

    if let Some(connections) = fanout {
        run_fanout_mode(
            addr.as_deref(),
            connections,
            idle,
            spec.requests_per_connection,
            tenants,
        );
        return;
    }

    eprintln!(
        "replaying {} connections x {} requests per endpoint ({:?})...",
        spec.connections, spec.requests_per_connection, spec.endpoints
    );
    let section = match &addr {
        Some(addr) => run_against(addr, &spec),
        None => run_in_process(&spec),
    };
    for row in &section.rows {
        eprintln!("  {}", row.summary_line());
    }

    let json = section.render();
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write server section");
        eprintln!("wrote {path}");
    }
}
