//! Prints the scaling ablation table (choice-chain sweep) used by EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p fcpn-bench --example scaling_table`.

use fcpn_bench::program_of;
use fcpn_codegen::CodeMetrics;
use fcpn_petri::gallery;

fn main() {
    println!("choices | cycles | IR stmts | C lines | wall time");
    for n in [1usize, 2, 4, 6, 8, 10] {
        let net = gallery::choice_chain(n);
        let start = std::time::Instant::now();
        let (schedule, program) = program_of(&net);
        let metrics = CodeMetrics::of(&program, &net);
        println!(
            "{n:>7} | {:>6} | {:>8} | {:>7} | {:?}",
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c,
            start.elapsed()
        );
    }
}
