//! Emits the machine-readable benchmark baseline consumed by the `BENCH_*.json`
//! trajectory at the repository root, plus the scaling ablation table (choice-chain
//! sweep) used by EXPERIMENTS.md.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fcpn-bench --example scaling_table -- --out BENCH_statespace.json
//! ```
//!
//! Without `--out` the JSON goes to stdout. `FCPN_BENCH_SAMPLES` controls the number of
//! interleaved measurement rounds per case (default 9).
//!
//! Schema v2: every explore case records one row per engine configuration —
//! `(threads, token_width)` — alongside the retained naive and sequential-`u64`
//! baselines, and the QSS sweep records the component-cache wall time against the
//! uncached path. Speedups are measured with **interleaved rounds** — each round times
//! every configuration back to back, and the recorded speedup is the median of the
//! per-round ratios. On a machine with background load this is far more stable than
//! comparing two independently taken medians.

use fcpn_bench::program_of_with;
use fcpn_codegen::CodeMetrics;
use fcpn_petri::analysis::{ReachabilityGraph, ReachabilityOptions};
use fcpn_petri::statespace::{ExploreOptions, StateSpace, TokenWidth};
use fcpn_petri::{gallery, PetriNet};
use fcpn_qss::QssOptions;
use std::hint::black_box;
use std::time::Instant;

struct ExploreCase {
    label: &'static str,
    net: PetriNet,
    options: ReachabilityOptions,
}

/// One engine configuration measured per case, next to the naive baseline.
struct EngineConfig {
    threads: usize,
    width: TokenWidth,
}

struct EngineRow {
    threads: usize,
    /// Resolved width name (`Auto` resolves at explore time).
    width: &'static str,
    best_ms: f64,
    speedup_vs_naive: f64,
    /// Median per-round ratio against the sequential u64 engine (the PR 1 baseline).
    speedup_vs_seq_u64: f64,
}

struct ExploreRow {
    label: &'static str,
    options: ReachabilityOptions,
    states: usize,
    edges: usize,
    complete: bool,
    naive_ms: f64,
    engine: Vec<EngineRow>,
}

fn samples() -> usize {
    std::env::var("FCPN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9)
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

fn measure_explore(case: &ExploreCase) -> ExploreRow {
    let configs = [
        EngineConfig {
            threads: 1,
            width: TokenWidth::U64,
        },
        EngineConfig {
            threads: 1,
            width: TokenWidth::Auto,
        },
        EngineConfig {
            threads: 2,
            width: TokenWidth::Auto,
        },
        EngineConfig {
            threads: 4,
            width: TokenWidth::Auto,
        },
    ];
    let explore_options = |c: &EngineConfig| ExploreOptions {
        reach: case.options,
        threads: c.threads,
        width: c.width,
    };

    let reference = StateSpace::explore(&case.net, case.options);
    let (states, edges, complete) = (
        reference.state_count(),
        reference.edge_count(),
        reference.is_complete(),
    );
    drop(reference);

    // Interleaved rounds: one naive + one of each engine configuration per round. The
    // resolved width name is captured from the first round's space rather than from
    // extra untimed explorations.
    let mut naive_times: Vec<f64> = Vec::new();
    let mut engine_times: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut resolved_widths: Vec<&'static str> = vec![""; configs.len()];
    for _ in 0..samples() {
        let start = Instant::now();
        black_box(ReachabilityGraph::explore_naive(
            black_box(&case.net),
            case.options,
        ));
        naive_times.push(start.elapsed().as_secs_f64());
        for (i, config) in configs.iter().enumerate() {
            let options = explore_options(config);
            let start = Instant::now();
            let space = StateSpace::explore_with(black_box(&case.net), &options);
            let width = black_box(space.token_width());
            drop(space);
            engine_times[i].push(start.elapsed().as_secs_f64());
            resolved_widths[i] = width.name();
        }
    }

    let engine = configs
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let times = &engine_times[i];
            EngineRow {
                threads: config.threads,
                width: resolved_widths[i],
                best_ms: times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
                speedup_vs_naive: median(
                    naive_times.iter().zip(times).map(|(n, e)| n / e).collect(),
                ),
                speedup_vs_seq_u64: median(
                    engine_times[0]
                        .iter()
                        .zip(times)
                        .map(|(u, e)| u / e)
                        .collect(),
                ),
            }
        })
        .collect();

    ExploreRow {
        label: case.label,
        options: case.options,
        states,
        edges,
        complete,
        naive_ms: naive_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
        engine,
    }
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let open = ReachabilityOptions {
        max_markings: 60_000,
        max_tokens_per_place: 8,
    };
    let cases = [
        ExploreCase {
            label: "choice_chain(8)",
            net: gallery::choice_chain(8),
            options: open,
        },
        ExploreCase {
            label: "cycle_bank(14)",
            net: gallery::cycle_bank(14),
            options: ReachabilityOptions::default(),
        },
        ExploreCase {
            label: "marked_ring(12,6)",
            net: gallery::marked_ring(12, 6),
            options: ReachabilityOptions::default(),
        },
        ExploreCase {
            label: "figure5",
            net: gallery::figure5(),
            options: open,
        },
    ];

    eprintln!(
        "measuring explore throughput ({} interleaved rounds per case)...",
        samples()
    );
    let rows: Vec<ExploreRow> = cases.iter().map(measure_explore).collect();
    for row in &rows {
        eprintln!(
            "  {:<20} {:>7} states {:>8} edges  naive {:>9.3}ms",
            row.label, row.states, row.edges, row.naive_ms
        );
        for engine in &row.engine {
            eprintln!(
                "    threads={} width={:<4} best {:>9.3}ms  vs naive {:>5.2}x  vs seq-u64 {:>5.2}x",
                engine.threads,
                engine.width,
                engine.best_ms,
                engine.speedup_vs_naive,
                engine.speedup_vs_seq_u64
            );
        }
    }

    // The paper's complexity ablation: schedule + synthesise a sweep of choice chains,
    // with the component cache on (the default) and off.
    eprintln!("measuring QSS + codegen scaling sweep (cache on/off)...");
    let cached_options = QssOptions::default();
    let uncached_options = QssOptions {
        reuse_component_cache: false,
        ..QssOptions::default()
    };
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4, 6, 8, 10] {
        let net = gallery::choice_chain(n);
        // Warm-up (also provides the metrics), then interleaved cached/uncached rounds —
        // a single ordered pair would charge process warm-up to whichever ran first and
        // make the small-n ratios pure noise.
        let (schedule, program) = program_of_with(&net, &cached_options);
        let mut cached_times: Vec<f64> = Vec::new();
        let mut uncached_times: Vec<f64> = Vec::new();
        for _ in 0..samples() {
            let start = Instant::now();
            black_box(program_of_with(black_box(&net), &cached_options));
            cached_times.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(program_of_with(black_box(&net), &uncached_options));
            uncached_times.push(start.elapsed().as_secs_f64());
        }
        let wall_ms = cached_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3;
        let wall_uncached_ms = uncached_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3;
        let cache_speedup = median(
            cached_times
                .iter()
                .zip(&uncached_times)
                .map(|(c, u)| u / c)
                .collect(),
        );
        let metrics = CodeMetrics::of(&program, &net);
        scaling.push((
            n,
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c,
            wall_ms,
            wall_uncached_ms,
            cache_speedup,
        ));
        eprintln!(
            "  choices={n:>2} cycles={:>4} ir={:>5} c_lines={:>5} wall={wall_ms:.2}ms uncached={wall_uncached_ms:.2}ms ({cache_speedup:.2}x)",
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c,
        );
    }

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"fcpn-bench/statespace-v2\",\n");
    json.push_str(&format!("  \"samples_per_case\": {},\n", samples()));
    // Multi-threaded rows are only meaningful relative to this: with a single host
    // core the parallel explorer serialises onto one CPU and pays pure coordination
    // overhead, so its speedup reads < 1 regardless of implementation quality.
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str("  \"explore\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"max_markings\": {}, \"max_tokens_per_place\": {}, \
             \"states\": {}, \"edges\": {}, \"complete\": {}, \"naive_best_ms\": {:.3},\n",
            row.label,
            row.options.max_markings,
            row.options.max_tokens_per_place,
            row.states,
            row.edges,
            row.complete,
            row.naive_ms,
        ));
        json.push_str("     \"engine\": [\n");
        for (j, engine) in row.engine.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"threads\": {}, \"token_width\": \"{}\", \"best_ms\": {:.3}, \
                 \"speedup_vs_naive\": {:.2}, \"speedup_vs_seq_u64\": {:.2}}}{}\n",
                engine.threads,
                engine.width,
                engine.best_ms,
                engine.speedup_vs_naive,
                engine.speedup_vs_seq_u64,
                if j + 1 < row.engine.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"qss_scaling\": [\n");
    for (i, (n, cycles, ir, c_lines, wall_ms, wall_uncached_ms, cache_speedup)) in
        scaling.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"choices\": {n}, \"cycles\": {cycles}, \"ir_statements\": {ir}, \
             \"lines_of_c\": {c_lines}, \"wall_ms\": {wall_ms:.3}, \
             \"wall_ms_uncached\": {wall_uncached_ms:.3}, \"cache_speedup\": {cache_speedup:.2}}}{}\n",
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline JSON");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
