//! Emits the machine-readable benchmark baseline consumed by the `BENCH_*.json`
//! trajectory at the repository root, plus the scaling ablation table (choice-chain
//! sweep) used by EXPERIMENTS.md.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fcpn-bench --example scaling_table -- --out BENCH_statespace.json
//! ```
//!
//! Without `--out` the JSON goes to stdout. `FCPN_BENCH_SAMPLES` controls the number of
//! interleaved measurement pairs per case (default 9).
//!
//! Speedups are measured with **interleaved pairs** — each sample times one engine
//! explore immediately followed by one naive explore, and the recorded speedup is the
//! median of the per-pair ratios. On a machine with background load this is far more
//! stable than comparing two independently taken medians.

use fcpn_bench::program_of;
use fcpn_codegen::CodeMetrics;
use fcpn_petri::analysis::{ReachabilityGraph, ReachabilityOptions};
use fcpn_petri::statespace::StateSpace;
use fcpn_petri::{gallery, PetriNet};
use std::hint::black_box;
use std::time::Instant;

struct ExploreCase {
    label: &'static str,
    net: PetriNet,
    options: ReachabilityOptions,
}

struct ExploreRow {
    label: &'static str,
    options: ReachabilityOptions,
    states: usize,
    edges: usize,
    complete: bool,
    engine_ms: f64,
    naive_ms: f64,
    speedup: f64,
    states_per_sec: f64,
}

fn samples() -> usize {
    std::env::var("FCPN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9)
}

fn measure_explore(case: &ExploreCase) -> ExploreRow {
    let space = StateSpace::explore(&case.net, case.options);
    let (states, edges, complete) = (space.state_count(), space.edge_count(), space.is_complete());
    drop(space);

    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for _ in 0..samples() {
        let start = Instant::now();
        black_box(StateSpace::explore(black_box(&case.net), case.options));
        let engine = start.elapsed().as_secs_f64();
        let start = Instant::now();
        black_box(ReachabilityGraph::explore_naive(
            black_box(&case.net),
            case.options,
        ));
        let naive = start.elapsed().as_secs_f64();
        pairs.push((engine, naive));
    }
    let mut ratios: Vec<f64> = pairs.iter().map(|(e, n)| n / e).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let speedup = ratios[ratios.len() / 2];
    let engine_best = pairs.iter().map(|&(e, _)| e).fold(f64::INFINITY, f64::min);
    let naive_best = pairs.iter().map(|&(_, n)| n).fold(f64::INFINITY, f64::min);
    ExploreRow {
        label: case.label,
        options: case.options,
        states,
        edges,
        complete,
        engine_ms: engine_best * 1e3,
        naive_ms: naive_best * 1e3,
        speedup,
        states_per_sec: states as f64 / engine_best,
    }
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let open = ReachabilityOptions {
        max_markings: 60_000,
        max_tokens_per_place: 8,
    };
    let cases = [
        ExploreCase {
            label: "choice_chain(8)",
            net: gallery::choice_chain(8),
            options: open,
        },
        ExploreCase {
            label: "cycle_bank(14)",
            net: gallery::cycle_bank(14),
            options: ReachabilityOptions::default(),
        },
        ExploreCase {
            label: "marked_ring(12,6)",
            net: gallery::marked_ring(12, 6),
            options: ReachabilityOptions::default(),
        },
        ExploreCase {
            label: "figure5",
            net: gallery::figure5(),
            options: open,
        },
    ];

    eprintln!(
        "measuring explore throughput ({} interleaved pairs per case)...",
        samples()
    );
    let rows: Vec<ExploreRow> = cases.iter().map(measure_explore).collect();
    for row in &rows {
        eprintln!(
            "  {:<20} {:>7} states {:>8} edges  engine {:>9.3}ms  naive {:>9.3}ms  speedup {:.2}x",
            row.label, row.states, row.edges, row.engine_ms, row.naive_ms, row.speedup
        );
    }

    // The paper's complexity ablation: schedule + synthesise a sweep of choice chains.
    eprintln!("measuring QSS + codegen scaling sweep...");
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4, 6, 8, 10] {
        let net = gallery::choice_chain(n);
        let start = Instant::now();
        let (schedule, program) = program_of(&net);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let metrics = CodeMetrics::of(&program, &net);
        scaling.push((
            n,
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c,
            wall_ms,
        ));
        eprintln!(
            "  choices={n:>2} cycles={:>4} ir={:>5} c_lines={:>5} wall={wall_ms:.2}ms",
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"fcpn-bench/statespace-v1\",\n");
    json.push_str(&format!("  \"samples_per_case\": {},\n", samples()));
    json.push_str("  \"explore\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"max_markings\": {}, \"max_tokens_per_place\": {}, \
             \"states\": {}, \"edges\": {}, \"complete\": {}, \
             \"engine_best_ms\": {:.3}, \"naive_best_ms\": {:.3}, \
             \"speedup_median\": {:.2}, \"engine_states_per_sec\": {:.0}}}{}\n",
            row.label,
            row.options.max_markings,
            row.options.max_tokens_per_place,
            row.states,
            row.edges,
            row.complete,
            row.engine_ms,
            row.naive_ms,
            row.speedup,
            row.states_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"qss_scaling\": [\n");
    for (i, (n, cycles, ir, c_lines, wall_ms)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"choices\": {n}, \"cycles\": {cycles}, \"ir_statements\": {ir}, \
             \"lines_of_c\": {c_lines}, \"wall_ms\": {wall_ms:.3}}}{}\n",
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline JSON");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
