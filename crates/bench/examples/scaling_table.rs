//! Emits the machine-readable benchmark baseline consumed by the `BENCH_*.json`
//! trajectory at the repository root, plus the scaling ablation table (choice-chain
//! sweep) used by EXPERIMENTS.md.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p fcpn-bench --example scaling_table -- --out BENCH_statespace.json
//! ```
//!
//! Without `--out` the JSON goes to stdout. `FCPN_BENCH_SAMPLES` controls the number of
//! interleaved measurement rounds per case (default 9).
//!
//! Schema v7 adds the `synthesis` section: region-based net synthesis
//! ([`fcpn_petri::synthesis`]) timed end to end — explore a bounded net, rebuild a net
//! from the behaviour via the sparse Farkas region basis, verify by re-exploration —
//! with the basis and emitted-place counts recorded next to the wall time.
//!
//! Schema v6 adds the `executor` section: the compiled schedule executor
//! ([`fcpn_codegen::ExecSession`], flat jump-resolved bytecode over a dense counter
//! pool) against the tree-walking interpreter oracle, pumping the same activation
//! stream through both and recording sustained events/sec (see
//! `fcpn_bench::pump_interpreter` / `pump_compiled` and the `codegen_exec` bench).
//!
//! Schema v5 adds the `server` section: the `fcpn-serve` daemon is spawned in-process
//! on an ephemeral port and the gallery + ATM nets are replayed against `/schedule` and
//! `/analyze` from concurrent connections, recording p50/p95 request latency,
//! throughput and the result-cache hit rate (see `fcpn_bench::serveload`).
//!
//! Schema v4: every explore case records one row per engine configuration —
//! `(threads, token_width)` — alongside the retained naive and sequential-`u64`
//! baselines; the QSS sweep records the component-cache wall time against the uncached
//! path; the `firing_session` rows time the [`FiringSession`] trace fast path against
//! the seed token game; the `table1` section records the ATM functional-baseline
//! simulation (and the full Table I harness) on both paths; and the `scheduler` section
//! holds the zero-allocation scheduling pipeline (gray-code sweep + workspace
//! reductions + fingerprint cache + sparse fraction-free Farkas) against the retained
//! seed pipeline — end to end (cached, uncached, 2/4 threads) and per layer (the
//! reduction sweep and the Farkas elimination in isolation). Speedups are measured with
//! **interleaved rounds** — each round times every configuration back to back, and the
//! recorded speedup is the median of the per-round ratios. On a machine with background
//! load this is far more stable than comparing two independently taken medians.
//!
//! [`FiringSession`]: fcpn_petri::statespace::FiringSession

use fcpn_atm::{
    functional_partition, generate_workload, run_table1, run_table1_naive, AtmChoicePolicy,
    AtmConfig, AtmModel, Table1Config, TrafficConfig,
};
use fcpn_bench::{
    program_of_with, pump_compiled, pump_interpreter, run_naive_trace, run_session_trace,
};
use fcpn_codegen::{CodeMetrics, CompiledProgram};
use fcpn_petri::analysis::{
    IncidenceMatrix, InvariantAnalysis, ReachabilityGraph, ReachabilityOptions,
};
use fcpn_petri::statespace::{ExploreOptions, StateSpace, TokenWidth};
use fcpn_petri::synthesis::{synthesize, Lts, SynthesisOptions};
use fcpn_petri::{gallery, PetriNet};
use fcpn_qss::{
    allocation_iter, allocation_iter_gray, quasi_static_schedule, quasi_static_schedule_naive,
    AllocationOptions, QssOptions, ReductionWorkspace, TReduction,
};
use fcpn_rtos::{simulate_functional_partition, simulate_functional_partition_naive, CostModel};
use std::hint::black_box;
use std::time::Instant;

struct ExploreCase {
    label: &'static str,
    net: PetriNet,
    options: ReachabilityOptions,
}

/// One engine configuration measured per case, next to the naive baseline.
struct EngineConfig {
    threads: usize,
    width: TokenWidth,
}

struct EngineRow {
    threads: usize,
    /// Resolved width name (`Auto` resolves at explore time).
    width: &'static str,
    best_ms: f64,
    speedup_vs_naive: f64,
    /// Median per-round ratio against the sequential u64 engine (the PR 1 baseline).
    speedup_vs_seq_u64: f64,
}

struct ExploreRow {
    label: &'static str,
    options: ReachabilityOptions,
    states: usize,
    edges: usize,
    complete: bool,
    naive_ms: f64,
    engine: Vec<EngineRow>,
}

fn samples() -> usize {
    std::env::var("FCPN_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9)
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

struct SynthesisRow {
    label: &'static str,
    states: usize,
    labels: usize,
    candidate_regions: usize,
    places: usize,
    verified: bool,
    best_ms: f64,
}

/// Times the full synthesis pipeline (region basis + separation + verification) on a
/// pre-explored behaviour; the exploration itself is excluded — the `explore` section
/// already covers it.
fn measure_synthesis(label: &'static str, net: &PetriNet) -> SynthesisRow {
    let space = StateSpace::explore(
        net,
        ReachabilityOptions {
            max_markings: 1_000_000,
            max_tokens_per_place: 64,
        },
    );
    let lts = Lts::from_statespace(net, &space).expect("bench nets are bounded");
    let mut times = Vec::new();
    let mut last = None;
    for _ in 0..samples() {
        let start = Instant::now();
        let out = synthesize(black_box(&lts), &SynthesisOptions::default())
            .expect("bench nets synthesize");
        times.push(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    let out = last.expect("at least one sample");
    SynthesisRow {
        label,
        states: out.stats.states,
        labels: out.stats.labels,
        candidate_regions: out.stats.candidate_regions,
        places: out.stats.places,
        verified: out.stats.verified,
        best_ms: times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
    }
}

fn measure_explore(case: &ExploreCase) -> ExploreRow {
    let configs = [
        EngineConfig {
            threads: 1,
            width: TokenWidth::U64,
        },
        EngineConfig {
            threads: 1,
            width: TokenWidth::Auto,
        },
        EngineConfig {
            threads: 2,
            width: TokenWidth::Auto,
        },
        EngineConfig {
            threads: 4,
            width: TokenWidth::Auto,
        },
    ];
    let explore_options = |c: &EngineConfig| ExploreOptions {
        reach: case.options,
        threads: c.threads,
        width: c.width,
        ..ExploreOptions::default()
    };

    let reference = StateSpace::explore(&case.net, case.options);
    let (states, edges, complete) = (
        reference.state_count(),
        reference.edge_count(),
        reference.is_complete(),
    );
    drop(reference);

    // Interleaved rounds: one naive + one of each engine configuration per round. The
    // resolved width name is captured from the first round's space rather than from
    // extra untimed explorations.
    let mut naive_times: Vec<f64> = Vec::new();
    let mut engine_times: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut resolved_widths: Vec<&'static str> = vec![""; configs.len()];
    for _ in 0..samples() {
        let start = Instant::now();
        black_box(ReachabilityGraph::explore_naive(
            black_box(&case.net),
            case.options,
        ));
        naive_times.push(start.elapsed().as_secs_f64());
        for (i, config) in configs.iter().enumerate() {
            let options = explore_options(config);
            let start = Instant::now();
            let space = StateSpace::explore_with(black_box(&case.net), &options);
            let width = black_box(space.token_width());
            drop(space);
            engine_times[i].push(start.elapsed().as_secs_f64());
            resolved_widths[i] = width.name();
        }
    }

    let engine = configs
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let times = &engine_times[i];
            EngineRow {
                threads: config.threads,
                width: resolved_widths[i],
                best_ms: times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
                speedup_vs_naive: median(
                    naive_times.iter().zip(times).map(|(n, e)| n / e).collect(),
                ),
                speedup_vs_seq_u64: median(
                    engine_times[0]
                        .iter()
                        .zip(times)
                        .map(|(u, e)| u / e)
                        .collect(),
                ),
            }
        })
        .collect();

    ExploreRow {
        label: case.label,
        options: case.options,
        states,
        edges,
        complete,
        naive_ms: naive_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
        engine,
    }
}

/// One row of the firing-session trace comparison: the deterministic rotating trace of
/// `fcpn_bench::run_naive_trace` / `run_session_trace`, timed head to head.
struct TraceRow {
    label: &'static str,
    firings: u64,
    naive_best_ms: f64,
    session_best_ms: f64,
    speedup: f64,
}

const TRACE_STEPS: usize = 20_000;

fn measure_trace(label: &'static str, net: &PetriNet) -> TraceRow {
    // The two paths must execute the identical trace before anything is timed.
    let (naive_fired, naive_marking) = run_naive_trace(net, TRACE_STEPS);
    let (session_fired, session_marking) = run_session_trace(net, TRACE_STEPS);
    assert_eq!(naive_fired, session_fired, "trace diverged on {label}");
    assert_eq!(
        naive_marking, session_marking,
        "marking diverged on {label}"
    );

    let mut naive_times: Vec<f64> = Vec::new();
    let mut session_times: Vec<f64> = Vec::new();
    for _ in 0..samples() {
        let start = Instant::now();
        black_box(run_naive_trace(black_box(net), TRACE_STEPS));
        naive_times.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(run_session_trace(black_box(net), TRACE_STEPS));
        session_times.push(start.elapsed().as_secs_f64());
    }
    TraceRow {
        label,
        firings: naive_fired,
        naive_best_ms: naive_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
        session_best_ms: session_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3,
        speedup: median(
            naive_times
                .iter()
                .zip(&session_times)
                .map(|(n, s)| n / s)
                .collect(),
        ),
    }
}

/// One row of the `executor` section: the compiled streaming runtime versus the
/// tree-walking interpreter, pumping the same activation stream (round-robin tasks,
/// round-robin choices) through both engines.
struct ExecutorRow {
    label: &'static str,
    tasks: usize,
    bytecode_ops: usize,
    activations: usize,
    firings: u64,
    interp_best_ms: f64,
    compiled_best_ms: f64,
    speedup: f64,
    /// Sustained task activations per second on the compiled runtime (best round).
    compiled_events_per_sec: f64,
}

const EXEC_ACTIVATIONS: usize = 20_000;

fn measure_executor(label: &'static str, net: &PetriNet) -> ExecutorRow {
    let (_, program) = program_of_with(net, &QssOptions::default());
    let compiled = CompiledProgram::compile(&program, net);
    // Both engines must perform identical work before anything is timed.
    let (interp_fired, interp_counts) = pump_interpreter(&program, net, EXEC_ACTIVATIONS);
    let (exec_fired, exec_counts) = pump_compiled(&compiled, EXEC_ACTIVATIONS);
    assert_eq!(interp_fired, exec_fired, "{label}: firing totals diverged");
    assert_eq!(interp_counts, exec_counts, "{label}: fire counts diverged");

    let mut interp_times: Vec<f64> = Vec::new();
    let mut compiled_times: Vec<f64> = Vec::new();
    for _ in 0..samples() {
        let start = Instant::now();
        black_box(pump_interpreter(
            black_box(&program),
            black_box(net),
            EXEC_ACTIVATIONS,
        ));
        interp_times.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(pump_compiled(black_box(&compiled), EXEC_ACTIVATIONS));
        compiled_times.push(start.elapsed().as_secs_f64());
    }
    let best = |times: &[f64]| times.iter().copied().fold(f64::INFINITY, f64::min);
    ExecutorRow {
        label,
        tasks: compiled.task_count(),
        bytecode_ops: compiled.op_count(),
        activations: EXEC_ACTIVATIONS,
        firings: interp_fired,
        interp_best_ms: best(&interp_times) * 1e3,
        compiled_best_ms: best(&compiled_times) * 1e3,
        speedup: median(
            interp_times
                .iter()
                .zip(&compiled_times)
                .map(|(i, c)| i / c)
                .collect(),
        ),
        compiled_events_per_sec: EXEC_ACTIVATIONS as f64 / best(&compiled_times),
    }
}

/// The Table I section: the ATM functional-baseline simulation and the full harness on
/// the session fast path versus the retained naive simulator.
struct Table1Rows {
    model: String,
    events: usize,
    qss_cycles: u64,
    functional_cycles: u64,
    cycle_ratio: f64,
    sim_naive_best_ms: f64,
    sim_session_best_ms: f64,
    sim_speedup: f64,
    harness_naive_best_ms: f64,
    harness_session_best_ms: f64,
    harness_speedup: f64,
}

fn measure_table1() -> Table1Rows {
    let atm_config = AtmConfig::paper();
    let model = AtmModel::build(atm_config).expect("atm model builds");
    let traffic = TrafficConfig::paper();
    let workload = generate_workload(&model, &traffic, 1999);
    let tasks = functional_partition(&model);
    let cost = CostModel::default();
    let config = Table1Config::default();

    // Equivalence gate: identical tables on both simulators before timing.
    let fast = run_table1(&model, &config).expect("table 1 runs");
    let naive = run_table1_naive(&model, &config).expect("table 1 runs");
    assert_eq!(fast.functional, naive.functional, "table 1 diverged");
    assert_eq!(fast.qss, naive.qss, "table 1 diverged");

    let mut sim_naive: Vec<f64> = Vec::new();
    let mut sim_session: Vec<f64> = Vec::new();
    let mut harness_naive: Vec<f64> = Vec::new();
    let mut harness_session: Vec<f64> = Vec::new();
    for _ in 0..samples() {
        let start = Instant::now();
        let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
        black_box(
            simulate_functional_partition_naive(&model.net, &tasks, &cost, &workload, &mut policy)
                .expect("simulation"),
        );
        sim_naive.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let mut policy = AtmChoicePolicy::new(&model, traffic, 1999);
        black_box(
            simulate_functional_partition(&model.net, &tasks, &cost, &workload, &mut policy)
                .expect("simulation"),
        );
        sim_session.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(run_table1_naive(&model, &config).expect("table 1 runs"));
        harness_naive.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(run_table1(&model, &config).expect("table 1 runs"));
        harness_session.push(start.elapsed().as_secs_f64());
    }
    let best = |times: &[f64]| times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3;
    let ratio = |a: &[f64], b: &[f64]| median(a.iter().zip(b).map(|(x, y)| x / y).collect());
    Table1Rows {
        model: format!("atm(queues={})", atm_config.queues),
        events: fast.qss_report.events_processed,
        qss_cycles: fast.qss.clock_cycles,
        functional_cycles: fast.functional.clock_cycles,
        cycle_ratio: fast.cycle_ratio(),
        sim_naive_best_ms: best(&sim_naive),
        sim_session_best_ms: best(&sim_session),
        sim_speedup: ratio(&sim_naive, &sim_session),
        harness_naive_best_ms: best(&harness_naive),
        harness_session_best_ms: best(&harness_session),
        harness_speedup: ratio(&harness_naive, &harness_session),
    }
}

/// One net of the `scheduler` section: the production pipeline versus the retained seed
/// pipeline, end to end and per layer.
struct SchedulerRow {
    label: String,
    allocations: u128,
    /// End-to-end `quasi_static_schedule` walls: component cache disabled (isolates the
    /// per-allocation pipeline — reduction, signature, Farkas, cycle simulation) and
    /// enabled (the production default).
    uncached_naive_ms: f64,
    uncached_fast_ms: f64,
    uncached_speedup: f64,
    cached_naive_ms: f64,
    cached_fast_ms: f64,
    cached_speedup: f64,
    /// Sharded sweep at 2/4 threads (cached), relative to the 1-thread fast path.
    threads: Vec<(usize, f64, f64)>,
    /// Layer ablation: the reduction sweep alone (seed BTreeSets vs gray+workspace).
    reduce_naive_ms: f64,
    reduce_workspace_ms: f64,
    reduce_speedup: f64,
    /// Layer ablation: one representative component's invariant analysis (dense vs
    /// sparse fraction-free Farkas, T- and P-sides as `of_matrix` computes them).
    farkas_naive_ms: f64,
    farkas_sparse_ms: f64,
    farkas_speedup: f64,
}

fn measure_scheduler(label: &str, net: &PetriNet) -> SchedulerRow {
    let options = |cache: bool, threads: usize| QssOptions {
        reuse_component_cache: cache,
        threads,
        ..QssOptions::default()
    };
    // Equivalence gate before timing: the production pipeline must reproduce the seed
    // pipeline bit for bit in every measured configuration.
    let reference = quasi_static_schedule_naive(net, &options(false, 1)).expect("fc input");
    for threads in [1usize, 2, 4] {
        for cache in [true, false] {
            let outcome = quasi_static_schedule(net, &options(cache, threads)).expect("fc input");
            assert_eq!(
                reference, outcome,
                "{label}: threads={threads} cache={cache}"
            );
        }
    }
    let allocations = allocation_iter_gray(net, AllocationOptions::default())
        .expect("fc input")
        .total();
    // A representative component for the Farkas layer: the first allocation's reduction
    // (symmetric nets reduce every allocation to this shape).
    let first_allocation = allocation_iter(net, AllocationOptions::default())
        .expect("fc input")
        .next()
        .expect("at least one allocation");
    let component = TReduction::compute(net, first_allocation)
        .expect("reduce")
        .net;
    let component_matrix = IncidenceMatrix::from_net(&component);

    let mut uncached_naive: Vec<f64> = Vec::new();
    let mut uncached_fast: Vec<f64> = Vec::new();
    let mut cached_naive: Vec<f64> = Vec::new();
    let mut cached_fast: Vec<f64> = Vec::new();
    let mut threads_times: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut reduce_naive: Vec<f64> = Vec::new();
    let mut reduce_workspace: Vec<f64> = Vec::new();
    let mut farkas_naive: Vec<f64> = Vec::new();
    let mut farkas_sparse: Vec<f64> = Vec::new();
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    for _ in 0..samples() {
        uncached_naive.push(time(&mut || {
            black_box(quasi_static_schedule_naive(black_box(net), &options(false, 1)).unwrap());
        }));
        uncached_fast.push(time(&mut || {
            black_box(quasi_static_schedule(black_box(net), &options(false, 1)).unwrap());
        }));
        cached_naive.push(time(&mut || {
            black_box(quasi_static_schedule_naive(black_box(net), &options(true, 1)).unwrap());
        }));
        cached_fast.push(time(&mut || {
            black_box(quasi_static_schedule(black_box(net), &options(true, 1)).unwrap());
        }));
        for (i, threads) in [2usize, 4].into_iter().enumerate() {
            threads_times[i].push(time(&mut || {
                black_box(quasi_static_schedule(black_box(net), &options(true, threads)).unwrap());
            }));
        }
        reduce_naive.push(time(&mut || {
            for allocation in allocation_iter(net, AllocationOptions::default()).unwrap() {
                black_box(TReduction::compute(net, allocation).unwrap());
            }
        }));
        reduce_workspace.push(time(&mut || {
            let mut ws = ReductionWorkspace::new();
            for (_, allocation) in allocation_iter_gray(net, AllocationOptions::default()).unwrap()
            {
                ws.reduce(net, &allocation, false);
                black_box(ws.kept_transitions());
            }
        }));
        farkas_naive.push(time(&mut || {
            black_box(InvariantAnalysis::of_matrix_naive(black_box(
                &component_matrix,
            )));
        }));
        farkas_sparse.push(time(&mut || {
            black_box(InvariantAnalysis::of_matrix(black_box(&component_matrix)));
        }));
    }
    let best = |times: &[f64]| times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3;
    let ratio = |a: &[f64], b: &[f64]| median(a.iter().zip(b).map(|(x, y)| x / y).collect());
    SchedulerRow {
        label: label.to_string(),
        allocations,
        uncached_naive_ms: best(&uncached_naive),
        uncached_fast_ms: best(&uncached_fast),
        uncached_speedup: ratio(&uncached_naive, &uncached_fast),
        cached_naive_ms: best(&cached_naive),
        cached_fast_ms: best(&cached_fast),
        cached_speedup: ratio(&cached_naive, &cached_fast),
        threads: [2usize, 4]
            .into_iter()
            .enumerate()
            .map(|(i, threads)| {
                (
                    threads,
                    best(&threads_times[i]),
                    ratio(&cached_fast, &threads_times[i]),
                )
            })
            .collect(),
        reduce_naive_ms: best(&reduce_naive),
        reduce_workspace_ms: best(&reduce_workspace),
        reduce_speedup: ratio(&reduce_naive, &reduce_workspace),
        farkas_naive_ms: best(&farkas_naive),
        farkas_sparse_ms: best(&farkas_sparse),
        farkas_speedup: ratio(&farkas_naive, &farkas_sparse),
    }
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let open = ReachabilityOptions {
        max_markings: 60_000,
        max_tokens_per_place: 8,
    };
    let cases = [
        ExploreCase {
            label: "choice_chain(8)",
            net: gallery::choice_chain(8),
            options: open,
        },
        ExploreCase {
            label: "cycle_bank(14)",
            net: gallery::cycle_bank(14),
            options: ReachabilityOptions::default(),
        },
        ExploreCase {
            label: "marked_ring(12,6)",
            net: gallery::marked_ring(12, 6),
            options: ReachabilityOptions::default(),
        },
        ExploreCase {
            label: "figure5",
            net: gallery::figure5(),
            options: open,
        },
    ];

    eprintln!(
        "measuring explore throughput ({} interleaved rounds per case)...",
        samples()
    );
    let rows: Vec<ExploreRow> = cases.iter().map(measure_explore).collect();
    for row in &rows {
        eprintln!(
            "  {:<20} {:>7} states {:>8} edges  naive {:>9.3}ms",
            row.label, row.states, row.edges, row.naive_ms
        );
        for engine in &row.engine {
            eprintln!(
                "    threads={} width={:<4} best {:>9.3}ms  vs naive {:>5.2}x  vs seq-u64 {:>5.2}x",
                engine.threads,
                engine.width,
                engine.best_ms,
                engine.speedup_vs_naive,
                engine.speedup_vs_seq_u64
            );
        }
    }

    eprintln!(
        "measuring firing-session trace throughput ({TRACE_STEPS} steps, {} rounds)...",
        samples()
    );
    let trace_rows: Vec<TraceRow> = vec![
        measure_trace("figure5", &gallery::figure5()),
        measure_trace("choice_chain(8)", &gallery::choice_chain(8)),
        measure_trace("marked_ring(12,6)", &gallery::marked_ring(12, 6)),
        measure_trace("cycle_bank(12)", &gallery::cycle_bank(12)),
    ];
    for row in &trace_rows {
        eprintln!(
            "  {:<20} {:>7} firings  naive {:>8.3}ms  session {:>8.3}ms  {:>5.2}x",
            row.label, row.firings, row.naive_best_ms, row.session_best_ms, row.speedup
        );
    }

    eprintln!(
        "measuring compiled executor vs interpreter ({EXEC_ACTIVATIONS} activations, {} rounds)...",
        samples()
    );
    let executor_rows: Vec<ExecutorRow> = vec![
        measure_executor("figure3a", &gallery::figure3a()),
        measure_executor("figure4", &gallery::figure4()),
        measure_executor("figure5", &gallery::figure5()),
        measure_executor("choice_chain(8)", &gallery::choice_chain(8)),
    ];
    for row in &executor_rows {
        eprintln!(
            "  {:<18} {:>7} firings  interp {:>8.3}ms  compiled {:>8.3}ms  {:>5.2}x  ({:.0} events/s)",
            row.label,
            row.firings,
            row.interp_best_ms,
            row.compiled_best_ms,
            row.speedup,
            row.compiled_events_per_sec
        );
    }

    eprintln!("measuring Table I on the session vs naive functional simulator...");
    let table1 = measure_table1();
    eprintln!(
        "  functional sim: naive {:>8.3}ms  session {:>8.3}ms  {:>5.2}x  ({} cycles, {} events)",
        table1.sim_naive_best_ms,
        table1.sim_session_best_ms,
        table1.sim_speedup,
        table1.functional_cycles,
        table1.events
    );
    eprintln!(
        "  full harness:   naive {:>8.3}ms  session {:>8.3}ms  {:>5.2}x (dominated by scheduling + synthesis)",
        table1.harness_naive_best_ms, table1.harness_session_best_ms, table1.harness_speedup
    );

    // The scheduling pipeline: production (gray + workspace + fingerprint cache +
    // sparse Farkas) against the retained seed pipeline, on the paper figures, the
    // choice-chain sweep sizes and both ATM model sizes.
    eprintln!(
        "measuring scheduler pipeline ({} interleaved rounds per net)...",
        samples()
    );
    let atm_small = AtmModel::build(AtmConfig::small()).expect("atm model builds");
    let atm_paper = AtmModel::build(AtmConfig::paper()).expect("atm model builds");
    let owned_nets: Vec<(String, PetriNet)> = vec![
        ("figure2".into(), gallery::figure2()),
        ("figure5".into(), gallery::figure5()),
        ("figure7".into(), gallery::figure7()),
        ("choice_chain(10)".into(), gallery::choice_chain(10)),
        ("choice_chain(12)".into(), gallery::choice_chain(12)),
        ("choice_chain(14)".into(), gallery::choice_chain(14)),
        ("atm(queues=2)".into(), atm_small.net.clone()),
        ("atm(queues=4)".into(), atm_paper.net.clone()),
    ];
    let scheduler_rows: Vec<SchedulerRow> = owned_nets
        .iter()
        .map(|(label, net)| {
            let row = measure_scheduler(label, net);
            eprintln!(
                "  {:<18} {:>6} allocs  uncached {:>9.2} -> {:>8.2}ms ({:>5.2}x)  cached {:>8.2} -> {:>7.2}ms ({:>5.2}x)",
                row.label,
                row.allocations,
                row.uncached_naive_ms,
                row.uncached_fast_ms,
                row.uncached_speedup,
                row.cached_naive_ms,
                row.cached_fast_ms,
                row.cached_speedup,
            );
            eprintln!(
                "  {:<18} layers: reduce {:>8.3} -> {:>7.3}ms ({:>5.2}x)  farkas {:>7.4} -> {:>7.4}ms ({:>5.2}x)",
                "",
                row.reduce_naive_ms,
                row.reduce_workspace_ms,
                row.reduce_speedup,
                row.farkas_naive_ms,
                row.farkas_sparse_ms,
                row.farkas_speedup,
            );
            row
        })
        .collect();

    // Region-based synthesis: bounded nets round-tripped through their behaviour. Each
    // case times the full pipeline (region basis + separation + verification) on a
    // pre-explored LTS; the basis and place counts calibrate the times.
    eprintln!("measuring region-based synthesis (bounded nets)...");
    let synthesis_rows: Vec<SynthesisRow> = [
        ("marked_ring(6,3)", gallery::marked_ring(6, 3)),
        ("marked_ring(10,5)", gallery::marked_ring(10, 5)),
        ("marked_ring(12,4)", gallery::marked_ring(12, 4)),
        ("cycle_bank(4)", gallery::cycle_bank(4)),
    ]
    .iter()
    .map(|(label, net)| {
        let row = measure_synthesis(label, net);
        eprintln!(
            "  {:<18} states={:>5} labels={:>3} basis={:>4} places={:>4}  {:>8.3}ms",
            row.label, row.states, row.labels, row.candidate_regions, row.places, row.best_ms,
        );
        row
    })
    .collect();

    // The daemon under load: in-process server, concurrent connections replaying the
    // gallery + ATM nets (the state budget on /analyze keeps the per-miss exploration
    // proportionate to a smoke run; cache hits dominate after the first pass anyway).
    eprintln!("measuring daemon load (in-process fcpn-serve)...");
    let server_spec = fcpn_bench::serveload::ServerBenchSpec {
        connections: 16,
        requests_per_connection: 8,
        workers: 4,
        endpoints: vec![
            "/schedule".to_string(),
            "/analyze?max_markings=20000".to_string(),
        ],
        include_atm: true,
        ..fcpn_bench::serveload::ServerBenchSpec::default()
    };
    let server_section = fcpn_bench::serveload::run_in_process(&server_spec);
    for row in &server_section.rows {
        eprintln!("  {}", row.summary_line());
    }

    // The paper's complexity ablation: schedule + synthesise a sweep of choice chains,
    // with the component cache on (the default) and off.
    eprintln!("measuring QSS + codegen scaling sweep (cache on/off)...");
    let cached_options = QssOptions::default();
    let uncached_options = QssOptions {
        reuse_component_cache: false,
        ..QssOptions::default()
    };
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4, 6, 8, 10] {
        let net = gallery::choice_chain(n);
        // Warm-up (also provides the metrics), then interleaved cached/uncached rounds —
        // a single ordered pair would charge process warm-up to whichever ran first and
        // make the small-n ratios pure noise.
        let (schedule, program) = program_of_with(&net, &cached_options);
        let mut cached_times: Vec<f64> = Vec::new();
        let mut uncached_times: Vec<f64> = Vec::new();
        for _ in 0..samples() {
            let start = Instant::now();
            black_box(program_of_with(black_box(&net), &cached_options));
            cached_times.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            black_box(program_of_with(black_box(&net), &uncached_options));
            uncached_times.push(start.elapsed().as_secs_f64());
        }
        let wall_ms = cached_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3;
        let wall_uncached_ms = uncached_times.iter().copied().fold(f64::INFINITY, f64::min) * 1e3;
        let cache_speedup = median(
            cached_times
                .iter()
                .zip(&uncached_times)
                .map(|(c, u)| u / c)
                .collect(),
        );
        let metrics = CodeMetrics::of(&program, &net);
        scaling.push((
            n,
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c,
            wall_ms,
            wall_uncached_ms,
            cache_speedup,
        ));
        eprintln!(
            "  choices={n:>2} cycles={:>4} ir={:>5} c_lines={:>5} wall={wall_ms:.2}ms uncached={wall_uncached_ms:.2}ms ({cache_speedup:.2}x)",
            schedule.cycle_count(),
            metrics.ir_statements,
            metrics.lines_of_c,
        );
    }

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"fcpn-bench/statespace-v7\",\n");
    json.push_str(&format!("  \"samples_per_case\": {},\n", samples()));
    // Multi-threaded rows are only meaningful relative to this: with a single host
    // core the parallel explorer serialises onto one CPU and pays pure coordination
    // overhead, so its speedup reads < 1 regardless of implementation quality.
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str("  \"explore\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"max_markings\": {}, \"max_tokens_per_place\": {}, \
             \"states\": {}, \"edges\": {}, \"complete\": {}, \"naive_best_ms\": {:.3},\n",
            row.label,
            row.options.max_markings,
            row.options.max_tokens_per_place,
            row.states,
            row.edges,
            row.complete,
            row.naive_ms,
        ));
        json.push_str("     \"engine\": [\n");
        for (j, engine) in row.engine.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"threads\": {}, \"token_width\": \"{}\", \"best_ms\": {:.3}, \
                 \"speedup_vs_naive\": {:.2}, \"speedup_vs_seq_u64\": {:.2}}}{}\n",
                engine.threads,
                engine.width,
                engine.best_ms,
                engine.speedup_vs_naive,
                engine.speedup_vs_seq_u64,
                if j + 1 < row.engine.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"firing_session\": [\n");
    for (i, row) in trace_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"trace_steps\": {}, \"firings\": {}, \
             \"naive_best_ms\": {:.3}, \"session_best_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            row.label,
            TRACE_STEPS,
            row.firings,
            row.naive_best_ms,
            row.session_best_ms,
            row.speedup,
            if i + 1 < trace_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"executor\": [\n");
    for (i, row) in executor_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"tasks\": {}, \"bytecode_ops\": {}, \
             \"activations\": {}, \"firings\": {}, \"interp_best_ms\": {:.3}, \
             \"compiled_best_ms\": {:.3}, \"speedup\": {:.2}, \
             \"compiled_events_per_sec\": {:.0}}}{}\n",
            row.label,
            row.tasks,
            row.bytecode_ops,
            row.activations,
            row.firings,
            row.interp_best_ms,
            row.compiled_best_ms,
            row.speedup,
            row.compiled_events_per_sec,
            if i + 1 < executor_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"table1\": {{\"model\": \"{}\", \"events\": {}, \"qss_cycles\": {}, \
         \"functional_cycles\": {}, \"cycle_ratio\": {:.2},\n",
        table1.model,
        table1.events,
        table1.qss_cycles,
        table1.functional_cycles,
        table1.cycle_ratio
    ));
    json.push_str(&format!(
        "    \"functional_sim\": {{\"naive_best_ms\": {:.3}, \"session_best_ms\": {:.3}, \
         \"speedup\": {:.2}}},\n",
        table1.sim_naive_best_ms, table1.sim_session_best_ms, table1.sim_speedup
    ));
    json.push_str(&format!(
        "    \"run_table1\": {{\"naive_best_ms\": {:.3}, \"session_best_ms\": {:.3}, \
         \"speedup\": {:.2}}}}},\n",
        table1.harness_naive_best_ms, table1.harness_session_best_ms, table1.harness_speedup
    ));
    json.push_str("  \"scheduler\": [\n");
    for (i, row) in scheduler_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"allocations\": {},\n",
            row.label, row.allocations
        ));
        json.push_str(&format!(
            "     \"uncached\": {{\"naive_ms\": {:.3}, \"fast_ms\": {:.3}, \"speedup\": {:.2}}},\n",
            row.uncached_naive_ms, row.uncached_fast_ms, row.uncached_speedup
        ));
        json.push_str(&format!(
            "     \"cached\": {{\"naive_ms\": {:.3}, \"fast_ms\": {:.3}, \"speedup\": {:.2}}},\n",
            row.cached_naive_ms, row.cached_fast_ms, row.cached_speedup
        ));
        json.push_str("     \"threads\": [");
        for (j, &(threads, best_ms, speedup)) in row.threads.iter().enumerate() {
            json.push_str(&format!(
                "{{\"threads\": {threads}, \"best_ms\": {best_ms:.3}, \"speedup_vs_1\": {speedup:.2}}}{}",
                if j + 1 < row.threads.len() { ", " } else { "" }
            ));
        }
        json.push_str("],\n");
        json.push_str(&format!(
            "     \"layers\": {{\"reduce_naive_ms\": {:.3}, \"reduce_workspace_ms\": {:.3}, \
             \"reduce_speedup\": {:.2}, \"farkas_naive_ms\": {:.4}, \"farkas_sparse_ms\": {:.4}, \
             \"farkas_speedup\": {:.2}}}}}{}\n",
            row.reduce_naive_ms,
            row.reduce_workspace_ms,
            row.reduce_speedup,
            row.farkas_naive_ms,
            row.farkas_sparse_ms,
            row.farkas_speedup,
            if i + 1 < scheduler_rows.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"server\": {},\n", server_section.render()));
    json.push_str("  \"synthesis\": [\n");
    for (i, row) in synthesis_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"net\": \"{}\", \"states\": {}, \"labels\": {}, \
             \"candidate_regions\": {}, \"places\": {}, \"verified\": {}, \
             \"best_ms\": {:.3}}}{}\n",
            row.label,
            row.states,
            row.labels,
            row.candidate_regions,
            row.places,
            row.verified,
            row.best_ms,
            if i + 1 < synthesis_rows.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"qss_scaling\": [\n");
    for (i, (n, cycles, ir, c_lines, wall_ms, wall_uncached_ms, cache_speedup)) in
        scaling.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"choices\": {n}, \"cycles\": {cycles}, \"ir_statements\": {ir}, \
             \"lines_of_c\": {c_lines}, \"wall_ms\": {wall_ms:.3}, \
             \"wall_ms_uncached\": {wall_uncached_ms:.3}, \"cache_speedup\": {cache_speedup:.2}}}{}\n",
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write baseline JSON");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
