//! `chaos_harness` — fault-injection runs against a *real* `fcpn-served` process.
//!
//! The socket tests exercise the daemon in-process; this harness exercises the shipped
//! binary the way an operator's worst day does: blown deadlines mid-sweep, clients that
//! drip or vanish mid-request, and a `kill -9` straight through a persistent-cache
//! append followed by a restart on the same directory. Each run prints `ok`/`FAIL` and
//! the process exits non-zero if any run failed — the CI `chaos-smoke` job gates on it.
//!
//! ```text
//! cargo build --release --bin fcpn-served
//! cargo run --release -p fcpn-bench --example chaos_harness -- \
//!     --bin ./target/release/fcpn-served
//! ```
//!
//! Runs, in order (daemons run in **reactor** mode wherever it exists):
//!
//! 1. **cancellation-latency** — `/schedule?deadline_ms=1&cache=0&threads=1` on
//!    `choice_chain(12)` (4096 allocations, far beyond 1ms) must answer `503` within
//!    50ms of the deadline, and `/metrics` must show `cancelled_in_stage >= 1`.
//! 2. **slow-loris / disconnect** — a dripping client and a mid-body hangup, after
//!    which `/healthz` must still answer `200` promptly.
//! 3. **connection-flood** — `--flood` (default 10000) idle sockets parked on the
//!    daemon, then one real `/schedule` must answer inside 2s: parked connections
//!    cost buffers, not threads.
//! 4. **loris-fleet** — `--loris` (default 500) connections dripping one byte per
//!    tick; every one must be cut at the read deadline and the daemon must keep
//!    serving throughout.
//! 5. **rate-limit** — against a *separate* daemon started with `--tenant-rate`: a
//!    burst past the bucket earns `429`s with a parseable `Retry-After`, and waiting
//!    out the window restores service (other probes never see throttling).
//! 6. **memory-pressure** — against a daemon started with `--mem-budget`: memory-bomb
//!    nets asking for budgets bigger than the pool are rejected outright (`400`,
//!    `rejected_memory`), nets with too-small budgets fail with the typed exhaustion
//!    `503` (`resource_exhausted`), `/healthz` answers `200` throughout, and a
//!    post-pressure `/schedule` answer is byte-identical to the library oracle.
//! 7. **sigterm-drain** — `kill -TERM` with a request in flight: the request
//!    completes, the daemon exits `0`.
//! 8. **kill-9 + recovery** (skippable with `--skip-kill9`) — warm the persistent
//!    cache, then `kill -9` the daemon while a writer thread is churning fresh cache
//!    appends, restart it on the same `--cache-dir`, and require every warmed
//!    response byte-identical to the library-computed oracle plus readable
//!    `persist_*` metrics.

use fcpn_petri::io::to_text;
use fcpn_petri::{gallery, PetriNet};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use fcpn_serve::chaos::{
    fetch, healthz_ok, probe_cancellation, probe_connection_flood, probe_memory_pressure,
    probe_mid_request_disconnect, probe_rate_limit, probe_slow_loris, probe_slow_loris_fleet,
    sigterm, DaemonProcess,
};
use fcpn_serve::schedule_response_body;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: chaos_harness --bin PATH/TO/fcpn-served [--flood N] [--loris N] \
         [--skip-kill9] [--keep-cache-dir]"
    );
    std::process::exit(2);
}

fn expected_body(net: &PetriNet) -> String {
    schedule_response_body(
        net,
        &quasi_static_schedule(net, &QssOptions::default()).expect("gallery net schedules"),
    )
}

/// Reads one numeric counter out of the `/metrics` JSON body (flat object, numeric
/// values) without a JSON dependency: finds `"key":` and parses the digits after it.
fn metrics_counter(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &body[body.find(&needle)? + needle.len()..];
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

struct Outcomes {
    failed: usize,
}

impl Outcomes {
    fn run(&mut self, name: &str, result: Result<(), String>) {
        match result {
            Ok(()) => println!("ok    {name}"),
            Err(why) => {
                self.failed += 1;
                println!("FAIL  {name}: {why}");
            }
        }
    }
}

fn spawn(binary: &str, cache_dir: &str) -> DaemonProcess {
    spawn_with(binary, &["--cache-dir", cache_dir])
}

/// Spawns the daemon in reactor mode (the mode under test; off Linux the binary falls
/// back to threaded by itself) with any extra flags appended.
fn spawn_with(binary: &str, extra: &[&str]) -> DaemonProcess {
    let mut args = vec!["--addr", "127.0.0.1:0", "--workers", "4", "--reactor"];
    args.extend_from_slice(extra);
    DaemonProcess::spawn(binary, &args).expect("spawn fcpn-served")
}

fn cancellation_latency(addr: &str) -> Result<(), String> {
    let net_text = to_text(&gallery::choice_chain(12));
    let deadline_ms = 1u64;
    let probe = probe_cancellation(addr, &net_text, deadline_ms, Duration::from_secs(10))
        .map_err(|e| format!("probe failed: {e}"))?;
    if probe.status != 503 {
        return Err(format!("expected 503, got {}", probe.status));
    }
    let bound = Duration::from_millis(deadline_ms + 50);
    if probe.elapsed > bound {
        return Err(format!(
            "503 took {:?}, more than 50ms past the {deadline_ms}ms deadline",
            probe.elapsed
        ));
    }
    let metrics = fetch(addr, "GET", "/metrics", b"", Duration::from_secs(5))
        .map_err(|e| format!("metrics fetch failed: {e}"))?;
    match metrics_counter(&metrics.body, "cancelled_in_stage") {
        Some(n) if n >= 1 => Ok(()),
        other => Err(format!(
            "cancelled_in_stage should be >= 1 after the probe, got {other:?}"
        )),
    }
}

fn hostile_clients(addr: &str) -> Result<(), String> {
    probe_slow_loris(addr, Duration::from_secs(3)).map_err(|e| format!("slow-loris: {e}"))?;
    probe_mid_request_disconnect(addr, &[b'x'; 8192]).map_err(|e| format!("disconnect: {e}"))?;
    match healthz_ok(addr, Duration::from_secs(5)) {
        Ok(true) => Ok(()),
        Ok(false) => Err("healthz not 200 after hostile clients".into()),
        Err(e) => Err(format!("healthz: {e}")),
    }
}

fn connection_flood(binary: &str, flood: usize) -> Result<(), String> {
    let max_conns = (flood + 256).to_string();
    let daemon = spawn_with(binary, &["--max-conns", &max_conns]);
    let addr = daemon.addr().to_string();
    let net_text = to_text(&gallery::figure4());
    // Warm the cache so the flooded request measures the serving path, not a cold
    // sweep racing the flood on a single-core host.
    let warm = fetch(
        &addr,
        "POST",
        "/schedule?threads=1",
        net_text.as_bytes(),
        Duration::from_secs(10),
    )
    .map_err(|e| format!("warm request: {e}"))?;
    if warm.status != 200 {
        return Err(format!("warm request: status {}", warm.status));
    }
    let probe = probe_connection_flood(&addr, flood, &net_text, Duration::from_secs(10))
        .map_err(|e| format!("flood probe: {e}"))?;
    if probe.idle_held != flood {
        return Err(format!("held {} of {flood} idle sockets", probe.idle_held));
    }
    if probe.status != 200 {
        return Err(format!("real request under flood: status {}", probe.status));
    }
    let bound = Duration::from_secs(2);
    if probe.elapsed > bound {
        return Err(format!(
            "real request took {:?} under a {flood}-connection flood (bound {bound:?})",
            probe.elapsed
        ));
    }
    println!(
        "      [flood] {} idle conns held, real request in {:?}",
        probe.idle_held, probe.elapsed
    );
    Ok(())
}

fn loris_fleet(binary: &str, loris: usize) -> Result<(), String> {
    // A 1s read deadline so the whole fleet is shed inside the 4s hold.
    let daemon = spawn_with(binary, &["--read-deadline-ms", "1000"]);
    let addr = daemon.addr().to_string();
    let probe = probe_slow_loris_fleet(&addr, loris, Duration::from_secs(4))
        .map_err(|e| format!("fleet probe: {e}"))?;
    if probe.dropped_by_daemon * 10 < probe.opened * 9 {
        return Err(format!(
            "only {} of {} lorises were cut by the read deadline",
            probe.dropped_by_daemon, probe.opened
        ));
    }
    match healthz_ok(&addr, Duration::from_secs(5)) {
        Ok(true) => {}
        Ok(false) => return Err("healthz not 200 after the fleet".into()),
        Err(e) => return Err(format!("healthz after the fleet: {e}")),
    }
    let response = fetch(
        &addr,
        "POST",
        "/schedule",
        to_text(&gallery::figure4()).as_bytes(),
        Duration::from_secs(10),
    )
    .map_err(|e| format!("request after the fleet: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "request after the fleet: status {}",
            response.status
        ));
    }
    println!(
        "      [loris] {}/{} dripping connections shed",
        probe.dropped_by_daemon, probe.opened
    );
    Ok(())
}

fn rate_limit(binary: &str) -> Result<(), String> {
    // A separate daemon instance: only this probe runs with metering on, so the
    // throttle cannot contaminate the other probes' daemons.
    let daemon = spawn_with(binary, &["--tenant-rate", "2", "--tenant-burst", "4"]);
    let addr = daemon.addr().to_string();
    let net_text = to_text(&gallery::figure4());
    let probe = probe_rate_limit(&addr, "acme", 10, &net_text, Duration::from_secs(10))
        .map_err(|e| format!("rate-limit probe: {e}"))?;
    if probe.limited == 0 {
        return Err(format!(
            "burst of 10 past a 4-deep bucket was never limited: {probe:?}"
        ));
    }
    if probe.retry_after_s < 1 {
        return Err(format!("Retry-After must be >= 1s: {probe:?}"));
    }
    if !probe.recovered {
        return Err(format!(
            "tenant not served after waiting out Retry-After: {probe:?}"
        ));
    }
    let metrics = fetch(&addr, "GET", "/metrics", b"", Duration::from_secs(5))
        .map_err(|e| format!("metrics fetch: {e}"))?;
    match metrics_counter(&metrics.body, "rejected_rate_limited") {
        Some(n) if n as usize >= probe.limited => {}
        other => {
            return Err(format!(
                "rejected_rate_limited should be >= {}, got {other:?}",
                probe.limited
            ))
        }
    }
    println!(
        "      [rate] {} ok, {} limited (Retry-After {}s), recovered",
        probe.ok, probe.limited, probe.retry_after_s
    );
    Ok(())
}

fn memory_pressure(binary: &str) -> Result<(), String> {
    // A separate daemon instance with the process governor armed at 1MiB: the
    // memory-bomb traffic must be degraded, never fatal.
    let daemon = spawn_with(binary, &["--mem-budget", "1048576"]);
    let addr = daemon.addr().to_string();
    let bomb = to_text(&gallery::memory_bomb(6));
    let probe = probe_memory_pressure(&addr, &bomb, 4, Duration::from_secs(10))
        .map_err(|e| format!("pressure probe: {e}"))?;
    if !probe.healthy_throughout {
        return Err(format!("healthz failed under pressure: {probe:?}"));
    }
    if probe.rejected == 0 || probe.exhausted == 0 || probe.other != 0 {
        return Err(format!(
            "expected over-pool 400 rejections and typed-exhausted 503s and nothing else: {probe:?}"
        ));
    }
    let metrics = fetch(&addr, "GET", "/metrics", b"", Duration::from_secs(5))
        .map_err(|e| format!("metrics fetch: {e}"))?;
    for (key, at_least) in [
        ("rejected_memory", (probe.rejected + probe.shed) as u64),
        ("resource_exhausted", probe.exhausted as u64),
        ("mem_budget_bytes", 1_048_576),
    ] {
        match metrics_counter(&metrics.body, key) {
            Some(n) if n >= at_least => {}
            other => return Err(format!("{key} should be >= {at_least}, got {other:?}")),
        }
    }
    // The governed daemon's post-pressure answers must still be byte-identical to
    // direct library calls — pressure sheds work, it never bends results.
    let net = gallery::figure4();
    let response = fetch(
        &addr,
        "POST",
        "/schedule",
        to_text(&net).as_bytes(),
        Duration::from_secs(10),
    )
    .map_err(|e| format!("post-pressure request: {e}"))?;
    if response.status != 200 || response.body != expected_body(&net) {
        return Err(format!(
            "post-pressure response diverged from the library oracle (status {})",
            response.status
        ));
    }
    println!(
        "      [mem] {} rejected, {} shed, {} typed-exhausted over {} requests, healthy throughout",
        probe.rejected, probe.shed, probe.exhausted, probe.requests
    );
    Ok(())
}

fn sigterm_drain(binary: &str) -> Result<(), String> {
    let daemon = spawn_with(binary, &[]);
    let addr = daemon.addr().to_string();
    let pid = daemon.pid();
    // An uncached sweep big enough that the SIGTERM usually lands mid-request; if the
    // request wins the race anyway, the exit-status check still gates the drain.
    let in_flight = std::thread::spawn(move || {
        fetch(
            &addr,
            "POST",
            "/schedule?cache=0&threads=1",
            to_text(&gallery::choice_chain(13)).as_bytes(),
            Duration::from_secs(30),
        )
    });
    std::thread::sleep(Duration::from_millis(30));
    sigterm(pid).map_err(|e| format!("SIGTERM: {e}"))?;
    let response = in_flight
        .join()
        .expect("request thread")
        .map_err(|e| format!("in-flight request through the drain: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "in-flight request must finish through the drain, got {}",
            response.status
        ));
    }
    match daemon.wait_success() {
        Ok(true) => Ok(()),
        Ok(false) => Err("daemon exited non-zero after SIGTERM".into()),
        Err(e) => Err(format!("waiting for drained daemon: {e}")),
    }
}

fn kill9_recovery(binary: &str, cache_dir: &str) -> Result<(), String> {
    let warm: Vec<(String, String, String)> = [gallery::figure4(), gallery::figure5()]
        .iter()
        .map(|net| (net.name().to_string(), to_text(net), expected_body(net)))
        .collect();

    let daemon = spawn(binary, cache_dir);
    let addr = daemon.addr().to_string();
    for (name, text, expected) in &warm {
        let response = fetch(
            &addr,
            "POST",
            "/schedule",
            text.as_bytes(),
            Duration::from_secs(10),
        )
        .map_err(|e| format!("warm {name}: {e}"))?;
        if response.status != 200 || &response.body != expected {
            return Err(format!("warm {name}: bad response ({})", response.status));
        }
    }
    // Churn distinct cache appends from a writer thread so the kill lands with the
    // shard logs mid-write with high probability.
    let churn_addr = addr.clone();
    let writer = std::thread::spawn(move || {
        for n in 3..64usize {
            let text = to_text(&gallery::choice_chain(n % 8 + 2));
            if fetch(
                &churn_addr,
                "POST",
                &format!("/schedule?deadline_ms={}", 10_000 + n),
                text.as_bytes(),
                Duration::from_secs(5),
            )
            .is_err()
            {
                break; // daemon was killed — that is the point
            }
        }
    });
    std::thread::sleep(Duration::from_millis(150));
    daemon.kill9().map_err(|e| format!("kill -9: {e}"))?;
    let _ = writer.join();

    // Restart on the same directory: recovery must never fail startup, the warmed
    // responses must come back byte-identical, and the persist counters must render.
    let daemon = spawn(binary, cache_dir);
    let addr = daemon.addr().to_string();
    for (name, text, expected) in &warm {
        let response = fetch(
            &addr,
            "POST",
            "/schedule",
            text.as_bytes(),
            Duration::from_secs(10),
        )
        .map_err(|e| format!("re-query {name}: {e}"))?;
        if response.status != 200 {
            return Err(format!("re-query {name}: status {}", response.status));
        }
        if &response.body != expected {
            return Err(format!("re-query {name}: bytes diverged after recovery"));
        }
    }
    let metrics = fetch(&addr, "GET", "/metrics", b"", Duration::from_secs(5))
        .map_err(|e| format!("metrics after restart: {e}"))?;
    let recovered = metrics_counter(&metrics.body, "persist_recovered_entries");
    let truncations = metrics_counter(&metrics.body, "persist_torn_tail_truncations");
    match (recovered, truncations) {
        (Some(r), Some(_)) if r >= 1 => {}
        other => {
            return Err(format!(
                "persist counters missing or empty after restart: {other:?}"
            ))
        }
    }
    daemon.kill9().map_err(|e| format!("final kill: {e}"))?;
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut binary: Option<String> = None;
    let mut keep_cache_dir = false;
    let mut skip_kill9 = false;
    let mut flood = 10_000usize;
    let mut loris = 500usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bin" => {
                binary = args.get(i + 1).cloned();
                i += 2;
            }
            "--flood" => {
                flood = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--loris" => {
                loris = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--skip-kill9" => {
                skip_kill9 = true;
                i += 1;
            }
            "--keep-cache-dir" => {
                keep_cache_dir = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    let binary = binary.unwrap_or_else(|| usage());
    let cache_dir = std::env::temp_dir().join(format!("fcpn-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache_dir = cache_dir.to_string_lossy().into_owned();

    // The flood probe holds `flood` client-side sockets in this process.
    #[cfg(target_os = "linux")]
    {
        let got = fcpn_serve::reactor::raise_nofile_limit(flood as u64 + 512);
        if got < flood as u64 + 64 {
            eprintln!("warning: fd limit {got} may be too low for --flood {flood}");
        }
    }

    let mut outcomes = Outcomes { failed: 0 };

    {
        let daemon = spawn(&binary, &cache_dir);
        let addr = daemon.addr().to_string();
        outcomes.run("cancellation-latency", cancellation_latency(&addr));
        outcomes.run("hostile-clients", hostile_clients(&addr));
        daemon.kill9().expect("tear down first daemon");
    }
    outcomes.run("connection-flood", connection_flood(&binary, flood));
    outcomes.run("loris-fleet", loris_fleet(&binary, loris));
    outcomes.run("rate-limit", rate_limit(&binary));
    outcomes.run("memory-pressure", memory_pressure(&binary));
    outcomes.run("sigterm-drain", sigterm_drain(&binary));
    if skip_kill9 {
        println!("skip  kill9-recovery (--skip-kill9)");
    } else {
        outcomes.run("kill9-recovery", kill9_recovery(&binary, &cache_dir));
    }

    if !keep_cache_dir {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    if outcomes.failed > 0 {
        eprintln!("{} chaos run(s) failed", outcomes.failed);
        std::process::exit(1);
    }
    println!("all chaos runs passed");
}
