//! The processor cost model: how many clock cycles each primitive costs.
//!
//! The paper reports absolute clock-cycle counts measured on the authors' embedded target;
//! we cannot reproduce that processor, so the simulator charges abstract cycle costs whose
//! *relative* magnitudes drive the same effect: every task activation pays a fixed RTOS
//! overhead (context switch, queue management), every executed transition pays its
//! computation cost, and inter-task communication pays a per-token cost. Implementations
//! with fewer tasks therefore pay the activation overhead less often, which is exactly the
//! mechanism behind Table I.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::TransitionId;
//! use fcpn_rtos::CostModel;
//!
//! let dsp_op = TransitionId::new(3);
//! let cost = CostModel::new(250, 40, 4, 12).with_transition_cost(dsp_op, 900);
//! assert_eq!(cost.transition_cost(dsp_op), 900);
//! assert_eq!(cost.transition_cost(TransitionId::new(0)), 40); // default
//! assert!(cost.activation_overhead > cost.choice_cost);
//! ```

use fcpn_petri::TransitionId;
use std::collections::HashMap;

/// Clock-cycle costs charged by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles charged every time the RTOS activates a task (context switch + dispatch).
    pub activation_overhead: u64,
    /// Default cycles charged for executing one transition (one data computation).
    pub default_transition_cost: u64,
    /// Per-transition overrides of the default cost.
    pub transition_costs: HashMap<TransitionId, u64>,
    /// Cycles charged for evaluating one data-dependent choice (an `if` on a token value).
    pub choice_cost: u64,
    /// Cycles charged for every token moved through an inter-task communication queue
    /// (only paid where tasks communicate, i.e. in multi-task partitionings).
    pub queue_transfer_cost: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            activation_overhead: 250,
            default_transition_cost: 40,
            transition_costs: HashMap::new(),
            choice_cost: 4,
            queue_transfer_cost: 12,
        }
    }
}

impl CostModel {
    /// A cost model with every component set explicitly.
    pub fn new(
        activation_overhead: u64,
        default_transition_cost: u64,
        choice_cost: u64,
        queue_transfer_cost: u64,
    ) -> Self {
        CostModel {
            activation_overhead,
            default_transition_cost,
            transition_costs: HashMap::new(),
            choice_cost,
            queue_transfer_cost,
        }
    }

    /// Overrides the cost of one transition.
    pub fn with_transition_cost(mut self, transition: TransitionId, cost: u64) -> Self {
        self.transition_costs.insert(transition, cost);
        self
    }

    /// The cost of executing `transition`.
    pub fn transition_cost(&self, transition: TransitionId) -> u64 {
        self.transition_costs
            .get(&transition)
            .copied()
            .unwrap_or(self.default_transition_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_nontrivial() {
        let m = CostModel::default();
        assert!(m.activation_overhead > m.default_transition_cost);
        assert!(m.default_transition_cost > 0);
    }

    #[test]
    fn per_transition_override() {
        let t0 = TransitionId::new(0);
        let t1 = TransitionId::new(1);
        let m = CostModel::new(100, 10, 2, 3).with_transition_cost(t0, 77);
        assert_eq!(m.transition_cost(t0), 77);
        assert_eq!(m.transition_cost(t1), 10);
        assert_eq!(m.activation_overhead, 100);
        assert_eq!(m.queue_transfer_cost, 3);
    }
}
