//! Workloads: timed streams of environment events that activate tasks.
//!
//! The paper's ATM example has two inputs: `Cell`, an interrupt arriving at irregular
//! times, and `Tick`, a strictly periodic event. Both are represented here as sequences
//! of [`Event`]s tagged with the source transition they fire.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::TransitionId;
//! use fcpn_rtos::Workload;
//!
//! let cell = TransitionId::new(0);
//! let tick = TransitionId::new(1);
//! // An irregular interrupt stream merged with a strictly periodic one.
//! let workload = Workload::irregular(cell, [5u64, 2, 9], 3, 0)
//!     .merge(Workload::periodic(tick, 6, 4, 1));
//! assert_eq!(workload.len(), 7);
//! assert_eq!(workload.count_for(tick), 4);
//! // Events come out in global time order regardless of source.
//! assert!(workload.events().windows(2).all(|w| w[0].time <= w[1].time));
//! ```

use fcpn_petri::TransitionId;

/// One environment event: at `time`, the input modelled by `source` occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Occurrence time in abstract time units (monotone within a workload).
    pub time: u64,
    /// The source transition of the net this event fires.
    pub source: TransitionId,
}

/// A timed sequence of events, sorted by time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    events: Vec<Event>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Workload::default()
    }

    /// Creates a workload from explicit events (they are sorted by time).
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort();
        Workload { events }
    }

    /// A strictly periodic stream: `count` events for `source`, one every `period` time
    /// units starting at `offset`.
    pub fn periodic(source: TransitionId, period: u64, count: usize, offset: u64) -> Self {
        let events = (0..count)
            .map(|i| Event {
                time: offset + period * i as u64,
                source,
            })
            .collect();
        Workload { events }
    }

    /// An irregular stream: `count` events whose inter-arrival times are produced by the
    /// caller-supplied iterator (e.g. drawn from a random distribution).
    pub fn irregular<I>(source: TransitionId, interarrivals: I, count: usize, offset: u64) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let mut time = offset;
        let mut events = Vec::with_capacity(count);
        for gap in interarrivals.into_iter().take(count) {
            time += gap;
            events.push(Event { time, source });
        }
        Workload { events }
    }

    /// Merges two workloads, preserving global time order.
    pub fn merge(mut self, other: Workload) -> Self {
        self.events.extend(other.events);
        self.events.sort();
        self
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the workload has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events attributed to `source`.
    pub fn count_for(&self, source: TransitionId) -> usize {
        self.events.iter().filter(|e| e.source == source).count()
    }

    /// Time of the last event, or 0 for an empty workload.
    pub fn horizon(&self) -> u64 {
        self.events.last().map(|e| e.time).unwrap_or(0)
    }
}

impl FromIterator<Event> for Workload {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Workload::from_events(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: TransitionId = TransitionId::new(0);
    const SRC_B: TransitionId = TransitionId::new(1);

    #[test]
    fn periodic_stream_is_evenly_spaced() {
        let w = Workload::periodic(SRC_A, 10, 5, 3);
        assert_eq!(w.len(), 5);
        assert_eq!(w.events()[0].time, 3);
        assert_eq!(w.events()[4].time, 43);
        assert_eq!(w.horizon(), 43);
        assert_eq!(w.count_for(SRC_A), 5);
        assert_eq!(w.count_for(SRC_B), 0);
    }

    #[test]
    fn irregular_stream_accumulates_gaps() {
        let w = Workload::irregular(SRC_B, [5u64, 1, 7], 3, 0);
        let times: Vec<u64> = w.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![5, 6, 13]);
    }

    #[test]
    fn merge_keeps_time_order() {
        let a = Workload::periodic(SRC_A, 10, 3, 0);
        let b = Workload::irregular(SRC_B, [4u64, 4, 4], 3, 0);
        let merged = a.merge(b);
        assert_eq!(merged.len(), 6);
        let times: Vec<u64> = merged.events().iter().map(|e| e.time).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn from_events_sorts() {
        let w: Workload = vec![
            Event {
                time: 9,
                source: SRC_A,
            },
            Event {
                time: 1,
                source: SRC_B,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(w.events()[0].time, 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new();
        assert!(w.is_empty());
        assert_eq!(w.horizon(), 0);
    }
}
