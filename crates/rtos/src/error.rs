//! Errors reported by the run-time simulator.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::TransitionId;
//! use fcpn_rtos::RtosError;
//!
//! let err = RtosError::UnboundSource(TransitionId::new(2));
//! assert!(err.to_string().contains("t2"));
//! assert_eq!(RtosError::EmptyWorkload.to_string(), "workload contains no events");
//! ```

use fcpn_codegen::CodegenError;
use fcpn_petri::TransitionId;
use std::fmt;

/// Errors produced while building workloads or simulating task execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtosError {
    /// An event refers to a source transition that no synthesised task is bound to.
    UnboundSource(TransitionId),
    /// The workload is empty, so there is nothing to simulate.
    EmptyWorkload,
    /// Executing a generated task failed (e.g. a counter underflow).
    Execution(CodegenError),
    /// The per-run firing budget was exhausted before the workload drained.
    ///
    /// A functional cascade runs the token game to quiescence after every event; on a
    /// hostile (unbounded, self-feeding) net that cascade never quiesces, so
    /// [`FunctionalSimBatch`](crate::FunctionalSimBatch) bounds each run. Long-running
    /// services turn this into a typed refusal instead of a hung worker.
    StepBudgetExhausted {
        /// The configured budget that was exceeded.
        limit: u64,
    },
    /// The simulation's [`CancelToken`](fcpn_petri::CancelToken) fired mid-run
    /// (explicit cancel or blown deadline); the partial report is discarded.
    Cancelled,
}

impl fmt::Display for RtosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtosError::UnboundSource(t) => {
                write!(f, "no task is bound to source transition {t}")
            }
            RtosError::EmptyWorkload => write!(f, "workload contains no events"),
            RtosError::Execution(e) => write!(f, "task execution failed: {e}"),
            RtosError::StepBudgetExhausted { limit } => {
                write!(f, "simulation exceeded its firing budget of {limit} steps")
            }
            RtosError::Cancelled => write!(f, "simulation cancelled"),
        }
    }
}

impl std::error::Error for RtosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtosError::Execution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodegenError> for RtosError {
    fn from(e: CodegenError) -> Self {
        RtosError::Execution(e)
    }
}

impl From<fcpn_petri::Cancelled> for RtosError {
    fn from(_: fcpn_petri::Cancelled) -> Self {
        RtosError::Cancelled
    }
}

/// Result alias for the crate.
pub type Result<T, E = RtosError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RtosError::EmptyWorkload.to_string().contains("no events"));
        assert!(RtosError::UnboundSource(TransitionId::new(2))
            .to_string()
            .contains("t2"));
        let e: RtosError = CodegenError::EmptySchedule.into();
        assert!(e.to_string().contains("task execution failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
