//! The run-time simulator: executes an implementation against a workload and accounts
//! clock cycles.
//!
//! Two implementation styles can be simulated, matching the two rows of the paper's
//! Table I:
//!
//! * [`simulate_program`] runs a quasi-statically scheduled [`fcpn_codegen::Program`]
//!   (one task per independent-rate input);
//! * [`simulate_functional_partition`] runs a *functional task partitioning* baseline,
//!   where every functional module of the specification is its own RTOS task and tokens
//!   crossing module boundaries go through communication queues.
//!
//! Both charge costs from the same [`CostModel`], so the comparison isolates the effect
//! of the task structure: fewer tasks ⇒ fewer activations and queue transfers ⇒ fewer
//! cycles.
//!
//! The functional baseline plays the token game directly, so it is the hot loop of the
//! Table I experiment: [`simulate_functional_partition`] runs it on the
//! [`FiringSession`](fcpn_petri::statespace::FiringSession) firing fast path, while
//! [`simulate_functional_partition_naive`] retains the seed marking-by-marking
//! implementation as the reference oracle the fast path is pinned against.
//!
//! # Example
//!
//! Both functional simulators produce identical reports (here with every transition in
//! one task, so only transition and activation costs accrue):
//!
//! ```
//! use fcpn_codegen::FixedResolver;
//! use fcpn_petri::gallery;
//! use fcpn_rtos::{
//!     simulate_functional_partition, simulate_functional_partition_naive, CostModel,
//!     FunctionalTask, Workload,
//! };
//!
//! # fn main() -> Result<(), fcpn_rtos::RtosError> {
//! let net = gallery::figure4();
//! let tasks = vec![FunctionalTask {
//!     name: "everything".into(),
//!     transitions: net.transitions().collect(),
//! }];
//! let workload = Workload::periodic(net.transition_by_name("t1").unwrap(), 10, 25, 0);
//! let cost = CostModel::default();
//! let fast = simulate_functional_partition(
//!     &net, &tasks, &cost, &workload, &mut FixedResolver::default())?;
//! let naive = simulate_functional_partition_naive(
//!     &net, &tasks, &cost, &workload, &mut FixedResolver::default())?;
//! assert_eq!(fast, naive);
//! assert_eq!(fast.events_processed, 25);
//! # Ok(())
//! # }
//! ```

use crate::{CostModel, Event, Result, RtosError, Workload};
use fcpn_codegen::{ChoiceResolver, CompiledProgram, ExecSession, Interpreter, Program};
use fcpn_petri::statespace::{FiringSession, StateId};
use fcpn_petri::{CancelToken, Marking, PetriNet, PlaceId, TransitionId};

/// Which execution engine runs the synthesised tasks during
/// [`simulate_program_with`].
///
/// Both backends execute the same task IR with the same resolver protocol and produce
/// bit-for-bit identical [`SimReport`]s (pinned by tests here and by the differential
/// suite in `fcpn-codegen`); they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The tree-walking [`Interpreter`] — the pinned oracle.
    #[default]
    Interpreter,
    /// The flat-bytecode streaming runtime ([`CompiledProgram`] + [`ExecSession`]):
    /// jump-resolved code arrays over a dense counter pool, no allocation after setup.
    Compiled,
}

/// Per-task accounting of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskActivation {
    /// Task name.
    pub name: String,
    /// Number of times the RTOS activated the task.
    pub activations: u64,
    /// Cycles spent inside the task (including its activation overhead).
    pub cycles: u64,
}

/// Result of simulating an implementation over a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Total clock cycles charged.
    pub total_cycles: u64,
    /// Number of workload events processed.
    pub events_processed: usize,
    /// Total task activations (the count the activation overhead was paid for).
    pub activations: u64,
    /// Per-task breakdown.
    pub per_task: Vec<TaskActivation>,
    /// How many times each transition of the net fired.
    pub fire_counts: Vec<u64>,
    /// Largest number of buffered tokens (or counter values) observed at any instant.
    pub peak_buffer_tokens: u64,
}

impl SimReport {
    /// Fires of a specific transition.
    pub fn fires_of(&self, transition: TransitionId) -> u64 {
        self.fire_counts[transition.index()]
    }

    /// Average cycles per event.
    pub fn cycles_per_event(&self) -> f64 {
        if self.events_processed == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.events_processed as f64
        }
    }
}

/// Simulates the quasi-statically scheduled implementation: every workload event activates
/// the synthesised task bound to its source transition.
///
/// # Errors
///
/// * [`RtosError::EmptyWorkload`] when there are no events.
/// * [`RtosError::UnboundSource`] when an event's source has no task.
/// * [`RtosError::Execution`] when the generated code misbehaves (counter underflow).
pub fn simulate_program<R: ChoiceResolver + ?Sized>(
    program: &Program,
    net: &PetriNet,
    cost: &CostModel,
    workload: &Workload,
    resolver: &mut R,
) -> Result<SimReport> {
    simulate_program_with(
        program,
        net,
        cost,
        workload,
        resolver,
        ExecBackend::default(),
    )
}

/// Cycles charged for one task activation that fired `fired`, shared by both execution
/// backends so their reports cannot drift: the RTOS activation overhead plus each fired
/// transition's own cost plus the choice-evaluation surcharge for conflicted firings.
fn invocation_cycles(net: &PetriNet, cost: &CostModel, fired: &[TransitionId]) -> u64 {
    let mut cycles = cost.activation_overhead;
    for &t in fired {
        cycles += cost.transition_cost(t);
        if net.inputs(t).iter().any(|&(p, _)| net.is_choice_place(p)) {
            cycles += cost.choice_cost;
        }
    }
    cycles
}

/// Like [`simulate_program`], but with an explicit choice of execution engine: the
/// tree-walking interpreter oracle or the compiled streaming runtime. Both produce
/// identical reports; [`ExecBackend::Compiled`] is the one to use for throughput.
///
/// # Errors
///
/// Same as [`simulate_program`].
pub fn simulate_program_with<R: ChoiceResolver + ?Sized>(
    program: &Program,
    net: &PetriNet,
    cost: &CostModel,
    workload: &Workload,
    resolver: &mut R,
    backend: ExecBackend,
) -> Result<SimReport> {
    if workload.is_empty() {
        return Err(RtosError::EmptyWorkload);
    }
    let mut per_task: Vec<TaskActivation> = program
        .tasks
        .iter()
        .map(|t| TaskActivation {
            name: t.name.clone(),
            activations: 0,
            cycles: 0,
        })
        .collect();
    let mut total_cycles = 0u64;
    let mut activations = 0u64;
    let events_processed = workload.len();

    let (fire_counts, peak_buffer_tokens) = match backend {
        ExecBackend::Interpreter => {
            let mut interpreter = Interpreter::new(program, net);
            for &Event { source, .. } in workload.events() {
                let task_index = program
                    .tasks
                    .iter()
                    .position(|t| t.source == Some(source))
                    .ok_or(RtosError::UnboundSource(source))?;
                let trace = interpreter.run_task(task_index, resolver)?;
                let cycles = invocation_cycles(net, cost, &trace.fired);
                per_task[task_index].activations += 1;
                per_task[task_index].cycles += cycles;
                activations += 1;
                total_cycles += cycles;
            }
            let peak = interpreter
                .peak_counters()
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
                .max(0) as u64;
            (interpreter.fire_counts().to_vec(), peak)
        }
        ExecBackend::Compiled => {
            let compiled = CompiledProgram::compile(program, net);
            let mut session = ExecSession::new(&compiled);
            for &Event { source, .. } in workload.events() {
                let task_index = compiled
                    .task_for_source(source)
                    .ok_or(RtosError::UnboundSource(source))?;
                let fired = session.run_task(task_index, resolver)?;
                // The cycle-cost accounting reads the executor's fire log exactly as it
                // reads the interpreter's trace.
                let cycles = invocation_cycles(net, cost, fired);
                per_task[task_index].activations += 1;
                per_task[task_index].cycles += cycles;
                activations += 1;
                total_cycles += cycles;
            }
            // The dense peak pool holds only counted places, but peaks are non-negative
            // on both sides, so the maxima agree with the interpreter's per-place scan.
            let peak = session
                .peaks_dense()
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
                .max(0) as u64;
            (session.fire_counts().to_vec(), peak)
        }
    };

    Ok(SimReport {
        total_cycles,
        events_processed,
        activations,
        per_task,
        fire_counts,
        peak_buffer_tokens,
    })
}

/// A functional task of the baseline partitioning: a named group of transitions (one of
/// the specification's modules) implemented as its own RTOS task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalTask {
    /// Module/task name.
    pub name: String,
    /// The transitions implemented by this task.
    pub transitions: Vec<TransitionId>,
}

/// Maps every transition to its owning task and verifies that every source transition —
/// the ones workload events can fire — is owned by some task.
fn task_owner_map(net: &PetriNet, tasks: &[FunctionalTask]) -> Result<Vec<usize>> {
    let mut owner = vec![usize::MAX; net.transition_count()];
    for (index, task) in tasks.iter().enumerate() {
        for &t in &task.transitions {
            owner[t.index()] = index;
        }
    }
    for t in net.transitions() {
        if owner[t.index()] == usize::MAX && net.is_source_transition(t) {
            return Err(RtosError::UnboundSource(t));
        }
    }
    Ok(owner)
}

/// Simulates the functional-partitioning baseline directly on the token game of the net:
/// every event fires its source transition, then enabled transitions are executed to
/// quiescence. Each time control moves to a different functional task the RTOS activation
/// overhead is paid, and every token crossing a task boundary pays the queue-transfer
/// cost.
///
/// This is the fast path: the token game runs on a
/// [`FiringSession`](fcpn_petri::statespace::FiringSession) (flat width-adaptive token
/// buffer, delta-row firing, bitmask enabled-set queries into a reused buffer), so the
/// cascade loop performs no per-step allocation and never scans transitions whose input
/// places are all empty. The seed marking-by-marking implementation is retained as
/// [`simulate_functional_partition_naive`] and the two are pinned to identical reports
/// by tests here, in `fcpn-atm` and in `tests/firing_session.rs`.
///
/// # Errors
///
/// * [`RtosError::EmptyWorkload`] when there are no events.
/// * [`RtosError::UnboundSource`] when an event's source transition belongs to no task.
pub fn simulate_functional_partition<R: ChoiceResolver + ?Sized>(
    net: &PetriNet,
    tasks: &[FunctionalTask],
    cost: &CostModel,
    workload: &Workload,
    resolver: &mut R,
) -> Result<SimReport> {
    FunctionalSimBatch::new(net, tasks, cost)?.run(workload, resolver)
}

/// A reusable functional-partition simulation: the per-transition cost tables, ownership
/// maps and the [`FiringSession`] are built **once**, and every
/// [`run`](FunctionalSimBatch::run) restores the session to the initial marking through
/// its checkpoint arena (one O(places) rollback) instead of rebuilding the firing
/// tables from scratch.
///
/// This is the Monte-Carlo shape of the Table I experiment: sweeping many traffic seeds
/// re-executes the same net under different workloads, so the batch amortises the
/// session setup across the whole sweep (`--seeds N` on the `table1_qss_vs_functional`
/// benchmark drives it). A single [`simulate_functional_partition`] call is just a
/// one-run batch.
#[derive(Debug)]
pub struct FunctionalSimBatch<'a> {
    net: &'a PetriNet,
    owner: Vec<usize>,
    task_names: Vec<String>,
    /// Per-transition constants of (net, tasks, cost), hoisted out of the firing loop:
    /// the transition's own cost plus the choice-evaluation surcharge plus the
    /// queue-transfer cost of every token its outputs push across a task boundary.
    step_cost: Vec<u64>,
    /// First choice input place of each transition (`None` for unconflicted ones).
    choice_place: Vec<Option<PlaceId>>,
    is_source: Vec<bool>,
    activation_overhead: u64,
    session: FiringSession,
    /// Checkpoint of the initial marking; every run starts by rolling back to it.
    start: StateId,
    /// Reused across every cascade step: `enabled_into` clears and refills it.
    enabled: Vec<TransitionId>,
    /// Per-run firing budget (see [`FunctionalSimBatch::set_step_budget`]).
    step_budget: u64,
    /// Cooperative cancellation (see [`FunctionalSimBatch::set_cancel_token`]).
    cancel: CancelToken,
}

/// Default per-run firing budget: far above any legitimate workload this repository
/// simulates (the paper's Table I run fires a few thousand transitions), yet bounded so
/// a hostile self-feeding net returns [`RtosError::StepBudgetExhausted`] instead of
/// cascading forever.
pub const DEFAULT_STEP_BUDGET: u64 = 50_000_000;

impl<'a> FunctionalSimBatch<'a> {
    /// Prepares a batch for simulating `tasks` over `net` under `cost`.
    ///
    /// # Errors
    ///
    /// [`RtosError::UnboundSource`] when a source transition belongs to no task.
    pub fn new(net: &'a PetriNet, tasks: &[FunctionalTask], cost: &CostModel) -> Result<Self> {
        let owner = task_owner_map(net, tasks)?;
        let step_cost: Vec<u64> = net
            .transitions()
            .map(|t| {
                let task = owner[t.index()];
                let mut cycles = cost.transition_cost(t);
                if net.inputs(t).iter().any(|&(p, _)| net.is_choice_place(p)) {
                    cycles += cost.choice_cost;
                }
                for &(place, produced) in net.outputs(t) {
                    let crosses = net
                        .consumers(place)
                        .iter()
                        .any(|&(consumer, _)| owner[consumer.index()] != task);
                    if crosses {
                        cycles += cost.queue_transfer_cost * produced;
                    }
                }
                cycles
            })
            .collect();
        let choice_place: Vec<Option<PlaceId>> = net
            .transitions()
            .map(|t| {
                net.inputs(t)
                    .iter()
                    .map(|&(p, _)| p)
                    .find(|&p| net.is_choice_place(p))
            })
            .collect();
        let is_source: Vec<bool> = net
            .transitions()
            .map(|t| net.is_source_transition(t))
            .collect();
        let mut session = FiringSession::new(net);
        let start = session.checkpoint(); // id 0 = the starting marking
        Ok(FunctionalSimBatch {
            net,
            owner,
            task_names: tasks.iter().map(|t| t.name.clone()).collect(),
            step_cost,
            choice_place,
            is_source,
            activation_overhead: cost.activation_overhead,
            session,
            start,
            enabled: Vec::new(),
            step_budget: DEFAULT_STEP_BUDGET,
            cancel: CancelToken::never(),
        })
    }

    /// The per-run firing budget currently in force.
    pub fn step_budget(&self) -> u64 {
        self.step_budget
    }

    /// Bounds every subsequent [`run`](Self::run) to at most `budget` firings.
    ///
    /// A cascade on an ill-behaved net (one whose non-source transitions feed
    /// themselves faster than they consume) never reaches quiescence; the budget turns
    /// that into a typed [`RtosError::StepBudgetExhausted`] so a long-running service
    /// reusing this batch never wedges a worker or aborts. The default
    /// ([`DEFAULT_STEP_BUDGET`]) is far beyond any legitimate workload, so results on
    /// well-behaved nets are unaffected.
    pub fn set_step_budget(&mut self, budget: u64) {
        self.step_budget = budget.max(1);
    }

    /// Installs a cooperative [`CancelToken`] polled (counter-gated, every 1024
    /// firings) inside the cascade loop of every subsequent [`run`](Self::run).
    ///
    /// When the token fires — another thread cancels it, or its deadline passes — the
    /// run stops with [`RtosError::Cancelled`] within one polling stride, so a service
    /// simulating a large batch under a request deadline sheds the work mid-cascade
    /// instead of only between runs. The default token never fires and costs nothing.
    pub fn set_cancel_token(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Simulates one workload from the initial marking (the shared session is rolled
    /// back to its start checkpoint first). The report is identical to
    /// [`simulate_functional_partition`]'s for the same inputs.
    ///
    /// # Errors
    ///
    /// * [`RtosError::EmptyWorkload`] when there are no events.
    /// * [`RtosError::Execution`] when a firing fails mid-cascade.
    /// * [`RtosError::StepBudgetExhausted`] when the run fires more than the configured
    ///   [`step_budget`](Self::step_budget) — the refusal path for hostile nets whose
    ///   cascades never quiesce.
    /// * [`RtosError::Cancelled`] when the installed
    ///   [`cancel token`](Self::set_cancel_token) fires mid-run.
    pub fn run<R: ChoiceResolver + ?Sized>(
        &mut self,
        workload: &Workload,
        resolver: &mut R,
    ) -> Result<SimReport> {
        if workload.is_empty() {
            return Err(RtosError::EmptyWorkload);
        }
        let step_budget = self.step_budget;
        let cancel = self.cancel.clone();
        self.session.rollback(self.start);
        let net = self.net;
        let owner = &self.owner;
        let step_cost = &self.step_cost;
        let choice_place = &self.choice_place;
        let is_source = &self.is_source;
        let activation_overhead = self.activation_overhead;
        let session = &mut self.session;
        let enabled = &mut self.enabled;
        let mut per_task: Vec<TaskActivation> = self
            .task_names
            .iter()
            .map(|name| TaskActivation {
                name: name.clone(),
                activations: 0,
                cycles: 0,
            })
            .collect();
        let mut fire_counts = vec![0u64; net.transition_count()];
        let mut total_cycles = 0u64;
        let mut activations = 0u64;
        let mut steps = 0u64;
        let mut peak_buffer_tokens = session.total_tokens();

        for &Event { source, .. } in workload.events() {
            let mut current_task: Option<usize> = None;
            let mut fire = |t: TransitionId,
                            session: &mut FiringSession,
                            current_task: &mut Option<usize>,
                            per_task: &mut Vec<TaskActivation>|
             -> Result<u64> {
                steps += 1;
                if steps > step_budget {
                    return Err(RtosError::StepBudgetExhausted { limit: step_budget });
                }
                // Counter-gated cancellation poll: one atomic load (plus a clock read
                // for deadline tokens) every 1024 firings keeps the overhead invisible
                // while bounding the cancellation latency to a fraction of a millisecond.
                if steps & 1023 == 0 && cancel.is_cancelled() {
                    return Err(RtosError::Cancelled);
                }
                let task = owner[t.index()];
                let mut cycles = 0;
                if *current_task != Some(task) {
                    cycles += activation_overhead;
                    activations += 1;
                    per_task[task].activations += 1;
                    *current_task = Some(task);
                }
                cycles += step_cost[t.index()];
                session
                    .fire(t)
                    .map_err(|e| RtosError::Execution(fcpn_codegen::CodegenError::Petri(e)))?;
                fire_counts[t.index()] += 1;
                per_task[task].cycles += cycles;
                Ok(cycles)
            };

            // The event fires its source transition, then the cascade runs to quiescence.
            total_cycles += fire(source, session, &mut current_task, &mut per_task)?;
            peak_buffer_tokens = peak_buffer_tokens.max(session.total_tokens());
            loop {
                session.enabled_into(enabled);
                enabled.retain(|&t| !is_source[t.index()]);
                if enabled.is_empty() {
                    break;
                }
                // Resolve data-dependent choices through the same resolver the QSS
                // implementation uses, so both simulations see the same data.
                let next = {
                    let choice = enabled
                        .iter()
                        .copied()
                        .find(|&t| choice_place[t.index()].is_some());
                    match choice {
                        Some(conflicted) => {
                            let place = choice_place[conflicted.index()]
                                .expect("conflicted transition has a choice input");
                            let candidates: Vec<TransitionId> = net
                                .consumers(place)
                                .iter()
                                .map(|&(t, _)| t)
                                .filter(|t| enabled.contains(t))
                                .collect();
                            resolver.resolve(place, &candidates)
                        }
                        None => enabled[0],
                    }
                };
                total_cycles += fire(next, session, &mut current_task, &mut per_task)?;
                peak_buffer_tokens = peak_buffer_tokens.max(session.total_tokens());
            }
        }

        Ok(SimReport {
            total_cycles,
            events_processed: workload.len(),
            activations,
            per_task,
            fire_counts,
            peak_buffer_tokens,
        })
    }
}

/// The seed marking-by-marking functional simulator, retained verbatim as the reference
/// oracle for [`simulate_functional_partition`]: it clones an owned [`Marking`], fires
/// through the checked [`PetriNet::fire`] path and rebuilds the enabled set with a full
/// transition scan (and a fresh `Vec`) per cascade step. Property tests pin the fast
/// path's reports bit-for-bit against this one.
///
/// # Errors
///
/// Same as [`simulate_functional_partition`].
pub fn simulate_functional_partition_naive<R: ChoiceResolver + ?Sized>(
    net: &PetriNet,
    tasks: &[FunctionalTask],
    cost: &CostModel,
    workload: &Workload,
    resolver: &mut R,
) -> Result<SimReport> {
    if workload.is_empty() {
        return Err(RtosError::EmptyWorkload);
    }
    let owner = task_owner_map(net, tasks)?;
    let mut per_task: Vec<TaskActivation> = tasks
        .iter()
        .map(|t| TaskActivation {
            name: t.name.clone(),
            activations: 0,
            cycles: 0,
        })
        .collect();
    let mut marking: Marking = net.initial_marking().clone();
    let mut fire_counts = vec![0u64; net.transition_count()];
    let mut total_cycles = 0u64;
    let mut activations = 0u64;
    let mut peak_buffer_tokens = marking.total_tokens();

    for &Event { source, .. } in workload.events() {
        let mut current_task: Option<usize> = None;
        let mut fire = |t: TransitionId,
                        marking: &mut Marking,
                        current_task: &mut Option<usize>,
                        per_task: &mut Vec<TaskActivation>|
         -> Result<u64> {
            let task = owner[t.index()];
            let mut cycles = 0;
            if *current_task != Some(task) {
                cycles += cost.activation_overhead;
                activations += 1;
                per_task[task].activations += 1;
                *current_task = Some(task);
            }
            cycles += cost.transition_cost(t);
            if net.inputs(t).iter().any(|&(p, _)| net.is_choice_place(p)) {
                cycles += cost.choice_cost;
            }
            net.fire(marking, t)
                .map_err(|e| RtosError::Execution(fcpn_codegen::CodegenError::Petri(e)))?;
            // Tokens produced into places consumed by a *different* task go through an
            // inter-task queue.
            for &(place, produced) in net.outputs(t) {
                let crosses = net
                    .consumers(place)
                    .iter()
                    .any(|&(consumer, _)| owner[consumer.index()] != task);
                if crosses {
                    cycles += cost.queue_transfer_cost * produced;
                }
            }
            fire_counts[t.index()] += 1;
            per_task[task].cycles += cycles;
            Ok(cycles)
        };

        // The event fires its source transition, then the cascade runs to quiescence.
        total_cycles += fire(source, &mut marking, &mut current_task, &mut per_task)?;
        peak_buffer_tokens = peak_buffer_tokens.max(marking.total_tokens());
        loop {
            let enabled: Vec<TransitionId> = net
                .transitions()
                .filter(|&t| !net.is_source_transition(t) && net.is_enabled(&marking, t))
                .collect();
            if enabled.is_empty() {
                break;
            }
            // Resolve data-dependent choices through the same resolver the QSS
            // implementation uses, so both simulations see the same data.
            let next = {
                let choice = enabled
                    .iter()
                    .copied()
                    .find(|&t| net.inputs(t).iter().any(|&(p, _)| net.is_choice_place(p)));
                match choice {
                    Some(conflicted) => {
                        let place = net
                            .inputs(conflicted)
                            .iter()
                            .map(|&(p, _)| p)
                            .find(|&p| net.is_choice_place(p))
                            .expect("conflicted transition has a choice input");
                        let candidates: Vec<TransitionId> = net
                            .consumers(place)
                            .iter()
                            .map(|&(t, _)| t)
                            .filter(|t| enabled.contains(t))
                            .collect();
                        resolver.resolve(place, &candidates)
                    }
                    None => enabled[0],
                }
            };
            total_cycles += fire(next, &mut marking, &mut current_task, &mut per_task)?;
            peak_buffer_tokens = peak_buffer_tokens.max(marking.total_tokens());
        }
    }

    Ok(SimReport {
        total_cycles,
        events_processed: workload.len(),
        activations,
        per_task,
        fire_counts,
        peak_buffer_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_codegen::{synthesize, FixedResolver, RoundRobinResolver, SynthesisOptions};
    use fcpn_petri::gallery;
    use fcpn_qss::{quasi_static_schedule, QssOptions};

    fn program_for(net: &PetriNet) -> Program {
        let schedule = quasi_static_schedule(net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        synthesize(net, &schedule, SynthesisOptions::default()).unwrap()
    }

    #[test]
    fn qss_simulation_counts_events_and_cycles() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let t1 = net.transition_by_name("t1").unwrap();
        let workload = Workload::periodic(t1, 10, 20, 0);
        let mut resolver = RoundRobinResolver::default();
        let report = simulate_program(
            &program,
            &net,
            &CostModel::default(),
            &workload,
            &mut resolver,
        )
        .unwrap();
        assert_eq!(report.events_processed, 20);
        assert_eq!(report.activations, 20);
        assert_eq!(report.fires_of(t1), 20);
        assert!(report.total_cycles >= 20 * CostModel::default().activation_overhead);
        assert!(report.cycles_per_event() > 0.0);
        assert_eq!(report.per_task.len(), 1);
        assert_eq!(report.per_task[0].activations, 20);
    }

    #[test]
    fn compiled_backend_report_is_pinned_to_the_interpreter() {
        // Same program, same workload, identically-seeded resolvers: the compiled
        // streaming runtime must reproduce the interpreter's SimReport bit for bit —
        // cycles, activations, per-task breakdown, fire counts and peaks.
        for net in [gallery::figure2(), gallery::figure4(), gallery::figure5()] {
            let program = program_for(&net);
            let cost = CostModel::default();
            let mut workload = Workload::new();
            for task in &program.tasks {
                if let Some(source) = task.source {
                    workload = workload.merge(Workload::periodic(source, 7, 60, 0));
                }
            }
            let mut interp_resolver = RoundRobinResolver::default();
            let interp = simulate_program_with(
                &program,
                &net,
                &cost,
                &workload,
                &mut interp_resolver,
                ExecBackend::Interpreter,
            )
            .unwrap();
            let mut exec_resolver = RoundRobinResolver::default();
            let compiled = simulate_program_with(
                &program,
                &net,
                &cost,
                &workload,
                &mut exec_resolver,
                ExecBackend::Compiled,
            )
            .unwrap();
            assert_eq!(interp, compiled, "{} diverged", program.name);
        }
    }

    #[test]
    fn default_backend_is_the_interpreter_oracle() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let t1 = net.transition_by_name("t1").unwrap();
        let workload = Workload::periodic(t1, 10, 20, 0);
        let cost = CostModel::default();
        let mut r1 = RoundRobinResolver::default();
        let plain = simulate_program(&program, &net, &cost, &workload, &mut r1).unwrap();
        let mut r2 = RoundRobinResolver::default();
        let explicit = simulate_program_with(
            &program,
            &net,
            &cost,
            &workload,
            &mut r2,
            ExecBackend::default(),
        )
        .unwrap();
        assert_eq!(plain, explicit);
        assert_eq!(ExecBackend::default(), ExecBackend::Interpreter);
    }

    #[test]
    fn compiled_backend_rejects_unbound_sources_like_the_interpreter() {
        let net = gallery::figure5();
        let program = program_for(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let workload = Workload::periodic(t2, 5, 3, 0);
        let mut resolver = FixedResolver::default();
        assert_eq!(
            simulate_program_with(
                &program,
                &net,
                &CostModel::default(),
                &workload,
                &mut resolver,
                ExecBackend::Compiled,
            )
            .unwrap_err(),
            RtosError::UnboundSource(t2)
        );
    }

    #[test]
    fn empty_workload_is_rejected() {
        let net = gallery::figure4();
        let program = program_for(&net);
        let mut resolver = FixedResolver::default();
        assert_eq!(
            simulate_program(
                &program,
                &net,
                &CostModel::default(),
                &Workload::new(),
                &mut resolver
            )
            .unwrap_err(),
            RtosError::EmptyWorkload
        );
    }

    #[test]
    fn unbound_event_source_is_rejected() {
        let net = gallery::figure5();
        let program = program_for(&net);
        // Build a workload firing a non-source transition (t2): no task is bound to it.
        let t2 = net.transition_by_name("t2").unwrap();
        let workload = Workload::periodic(t2, 5, 3, 0);
        let mut resolver = FixedResolver::default();
        assert_eq!(
            simulate_program(
                &program,
                &net,
                &CostModel::default(),
                &workload,
                &mut resolver
            )
            .unwrap_err(),
            RtosError::UnboundSource(t2)
        );
    }

    #[test]
    fn functional_partition_pays_more_overhead_than_qss() {
        // Figure 5 with both inputs active: QSS (2 tasks) vs a per-module partitioning
        // (each pipeline stage its own task).
        let net = gallery::figure5();
        let program = program_for(&net);
        let by_name = |n: &str| net.transition_by_name(n).unwrap();
        let t1 = by_name("t1");
        let t8 = by_name("t8");
        let workload = Workload::periodic(t1, 10, 50, 0).merge(Workload::periodic(t8, 25, 20, 3));
        let cost = CostModel::default();

        let mut qss_resolver = RoundRobinResolver::default();
        let qss = simulate_program(&program, &net, &cost, &workload, &mut qss_resolver).unwrap();

        let tasks = vec![
            FunctionalTask {
                name: "input".into(),
                transitions: vec![t1, by_name("t2"), by_name("t3")],
            },
            FunctionalTask {
                name: "branch1".into(),
                transitions: vec![by_name("t4")],
            },
            FunctionalTask {
                name: "branch2".into(),
                transitions: vec![by_name("t5"), by_name("t7")],
            },
            FunctionalTask {
                name: "output".into(),
                transitions: vec![by_name("t6")],
            },
            FunctionalTask {
                name: "tick".into(),
                transitions: vec![t8, by_name("t9")],
            },
        ];
        let mut func_resolver = RoundRobinResolver::default();
        let functional =
            simulate_functional_partition(&net, &tasks, &cost, &workload, &mut func_resolver)
                .unwrap();

        assert_eq!(functional.events_processed, qss.events_processed);
        // The shape of Table I: more tasks -> more activations -> more cycles.
        assert!(functional.activations > qss.activations);
        assert!(functional.total_cycles > qss.total_cycles);
    }

    #[test]
    fn functional_partition_requires_sources_to_be_owned() {
        let net = gallery::figure5();
        let t1 = net.transition_by_name("t1").unwrap();
        let tasks = vec![FunctionalTask {
            name: "only-t1".into(),
            transitions: vec![t1],
        }];
        let workload = Workload::periodic(t1, 10, 5, 0);
        let mut resolver = FixedResolver::default();
        let err = simulate_functional_partition(
            &net,
            &tasks,
            &CostModel::default(),
            &workload,
            &mut resolver,
        )
        .unwrap_err();
        assert!(matches!(err, RtosError::UnboundSource(_)));
    }

    #[test]
    fn functional_fast_path_matches_naive_reference() {
        // The session-backed simulator and the seed marking-by-marking simulator must
        // produce bit-for-bit identical reports: same cycles, same activations, same
        // per-task breakdown, same peaks — on a workload that exercises choices, merges
        // and both input rates.
        let net = gallery::figure5();
        let t1 = net.transition_by_name("t1").unwrap();
        let t8 = net.transition_by_name("t8").unwrap();
        let workload = Workload::periodic(t1, 10, 40, 0).merge(Workload::periodic(t8, 25, 16, 3));
        let cost = CostModel::default();
        let tasks = vec![
            FunctionalTask {
                name: "input".into(),
                transitions: vec![
                    t1,
                    net.transition_by_name("t2").unwrap(),
                    net.transition_by_name("t3").unwrap(),
                ],
            },
            FunctionalTask {
                name: "rest".into(),
                transitions: net
                    .transitions()
                    .filter(|t| !["t1", "t2", "t3"].contains(&net.transition_name(*t)))
                    .collect(),
            },
        ];
        let mut fast_resolver = RoundRobinResolver::default();
        let fast =
            simulate_functional_partition(&net, &tasks, &cost, &workload, &mut fast_resolver)
                .unwrap();
        let mut naive_resolver = RoundRobinResolver::default();
        let naive = simulate_functional_partition_naive(
            &net,
            &tasks,
            &cost,
            &workload,
            &mut naive_resolver,
        )
        .unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn batch_reuse_across_workloads_matches_fresh_runs() {
        // One FunctionalSimBatch rolled back between runs must reproduce, bit for bit,
        // what a fresh simulator produces for every workload — the contract the
        // Monte-Carlo seed sweep (`table1 --seeds N`) relies on. Run an interleaved
        // pattern so stale session state from a previous workload would be caught.
        let net = gallery::figure5();
        let t1 = net.transition_by_name("t1").unwrap();
        let t8 = net.transition_by_name("t8").unwrap();
        let cost = CostModel::default();
        let tasks = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let workloads = [
            Workload::periodic(t1, 10, 30, 0).merge(Workload::periodic(t8, 25, 12, 3)),
            Workload::periodic(t1, 7, 11, 2),
            Workload::periodic(t8, 5, 8, 0).merge(Workload::periodic(t1, 9, 21, 1)),
        ];
        let mut batch = FunctionalSimBatch::new(&net, &tasks, &cost).unwrap();
        for workload in workloads.iter().chain(workloads.iter().rev()) {
            let mut batch_resolver = RoundRobinResolver::default();
            let from_batch = batch.run(workload, &mut batch_resolver).unwrap();
            let mut fresh_resolver = RoundRobinResolver::default();
            let fresh =
                simulate_functional_partition(&net, &tasks, &cost, workload, &mut fresh_resolver)
                    .unwrap();
            assert_eq!(from_batch, fresh);
        }
        // Empty workloads are still rejected per run, not per batch.
        assert_eq!(
            batch
                .run(&Workload::new(), &mut FixedResolver::default())
                .unwrap_err(),
            RtosError::EmptyWorkload
        );
    }

    #[test]
    fn both_simulators_agree_on_fire_counts() {
        // With the same workload and the same (deterministic) choice policy, the QSS
        // implementation and the functional baseline perform the same computations; only
        // the overhead differs.
        let net = gallery::figure4();
        let program = program_for(&net);
        let t1 = net.transition_by_name("t1").unwrap();
        let workload = Workload::periodic(t1, 7, 30, 0);
        let cost = CostModel::default();
        let mut r1 = FixedResolver { arm: 0 };
        let qss = simulate_program(&program, &net, &cost, &workload, &mut r1).unwrap();
        let tasks = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let mut r2 = FixedResolver { arm: 0 };
        let func = simulate_functional_partition(&net, &tasks, &cost, &workload, &mut r2).unwrap();
        assert_eq!(qss.fire_counts, func.fire_counts);
    }

    #[test]
    fn hostile_cascade_returns_typed_budget_error_not_a_hang() {
        // A self-feeding non-source transition (consume 1, produce 2) never quiesces:
        // one event starts a cascade that would run forever. The step budget must turn
        // that into a typed error — a daemon worker can report it and move on.
        let mut b = fcpn_petri::NetBuilder::new("hostile");
        let t_src = b.transition("t_src");
        let t_loop = b.transition("t_loop");
        let p = b.place("p", 0);
        b.arc_t_p(t_src, p, 1).unwrap();
        b.arc_p_t(p, t_loop, 1).unwrap();
        b.arc_t_p(t_loop, p, 2).unwrap();
        let net = b.build().unwrap();
        let tasks = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let mut batch = FunctionalSimBatch::new(&net, &tasks, &CostModel::default()).unwrap();
        assert_eq!(batch.step_budget(), DEFAULT_STEP_BUDGET);
        batch.set_step_budget(1_000);
        let src = net.transition_by_name("t_src").unwrap();
        let workload = Workload::periodic(src, 1, 1, 0);
        let err = batch
            .run(&workload, &mut FixedResolver::default())
            .unwrap_err();
        assert_eq!(err, RtosError::StepBudgetExhausted { limit: 1_000 });
        // The budget error must not poison the batch: a benign run still works after a
        // rollback (raise the budget back first).
        batch.set_step_budget(DEFAULT_STEP_BUDGET);
        let err_again = batch
            .run(&Workload::new(), &mut FixedResolver::default())
            .unwrap_err();
        assert_eq!(err_again, RtosError::EmptyWorkload);
    }

    #[test]
    fn cancelled_token_stops_a_hostile_cascade_mid_run() {
        // The same never-quiescing net as the budget test, but this time the run is cut
        // short by a pre-fired cancel token — the path a serve worker takes when its
        // request deadline blows mid-simulation.
        let mut b = fcpn_petri::NetBuilder::new("hostile");
        let t_src = b.transition("t_src");
        let t_loop = b.transition("t_loop");
        let p = b.place("p", 0);
        b.arc_t_p(t_src, p, 1).unwrap();
        b.arc_p_t(p, t_loop, 1).unwrap();
        b.arc_t_p(t_loop, p, 2).unwrap();
        let net = b.build().unwrap();
        let tasks = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let mut batch = FunctionalSimBatch::new(&net, &tasks, &CostModel::default()).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        batch.set_cancel_token(cancel);
        let src = net.transition_by_name("t_src").unwrap();
        let workload = Workload::periodic(src, 1, 1, 0);
        let err = batch
            .run(&workload, &mut FixedResolver::default())
            .unwrap_err();
        assert_eq!(err, RtosError::Cancelled);
        // A fresh never-firing token restores normal behaviour, bit for bit.
        batch.set_cancel_token(CancelToken::never());
        let net2 = gallery::figure4();
        let tasks2 = vec![FunctionalTask {
            name: "all".into(),
            transitions: net2.transitions().collect(),
        }];
        let mut armed = FunctionalSimBatch::new(&net2, &tasks2, &CostModel::default()).unwrap();
        armed.set_cancel_token(CancelToken::new());
        let mut plain = FunctionalSimBatch::new(&net2, &tasks2, &CostModel::default()).unwrap();
        let t1 = net2.transition_by_name("t1").unwrap();
        let wl = Workload::periodic(t1, 5, 20, 0);
        let a = armed.run(&wl, &mut FixedResolver::default()).unwrap();
        let b = plain.run(&wl, &mut FixedResolver::default()).unwrap();
        assert_eq!(
            a, b,
            "armed but never-firing token must not perturb the report"
        );
    }

    #[test]
    fn batch_reuse_survives_token_width_widening() {
        // The daemon's reuse pattern: one batch, many runs, on a net whose token counts
        // saturate the narrow u8 arena mid-run (a place must accumulate 256 tokens
        // before its consumer fires). The start checkpoint is recorded at u8 width;
        // later runs roll back across the widening boundary and must still reproduce a
        // fresh simulator bit for bit.
        let mut b = fcpn_petri::NetBuilder::new("widening");
        let t_in = b.transition("t_in");
        let t_out = b.transition("t_out");
        let t_sink = b.transition("t_sink");
        let p = b.place("p", 0);
        let q = b.place("q", 0);
        b.arc_t_p(t_in, p, 1).unwrap();
        b.arc_p_t(p, t_out, 256).unwrap();
        b.arc_t_p(t_out, q, 1).unwrap();
        b.arc_p_t(q, t_sink, 1).unwrap();
        let net = b.build().unwrap();
        let tasks = vec![FunctionalTask {
            name: "all".into(),
            transitions: net.transitions().collect(),
        }];
        let cost = CostModel::default();
        let src = net.transition_by_name("t_in").unwrap();
        let mut batch = FunctionalSimBatch::new(&net, &tasks, &cost).unwrap();
        // 600 events push `p` through the u8 saturation point twice; 300 crosses once;
        // 100 stays narrow. Interleave so rollback happens before, across and after the
        // widening.
        for events in [600usize, 100, 300, 600] {
            let workload = Workload::periodic(src, 1, events, 0);
            let mut batch_resolver = FixedResolver::default();
            let from_batch = batch.run(&workload, &mut batch_resolver).unwrap();
            let mut fresh_resolver = FixedResolver::default();
            let fresh = simulate_functional_partition_naive(
                &net,
                &tasks,
                &cost,
                &workload,
                &mut fresh_resolver,
            )
            .unwrap();
            assert_eq!(from_batch, fresh, "{events} events diverged");
            assert_eq!(from_batch.fires_of(src), events as u64);
        }
    }
}
