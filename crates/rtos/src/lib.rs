//! # fcpn-rtos — run-time substrate: events, costs and cycle-accurate-ish simulation
//!
//! The paper's generated tasks "are invoked at run-time by the RTOS"; this crate supplies
//! the minimal run-time the reproduction needs: timed event streams ([`Workload`]), a
//! processor [`CostModel`] (activation overhead, per-transition cost, queue transfers),
//! and two simulators — [`simulate_program`] for the quasi-statically scheduled
//! implementation and [`simulate_functional_partition`] for the per-module baseline —
//! whose outputs feed the Table I comparison in `fcpn-atm`. The functional baseline
//! plays the token game on the `fcpn_petri::statespace::FiringSession` fast path; the
//! seed marking-by-marking loop is retained as
//! [`simulate_functional_partition_naive`], the reference the fast path is pinned
//! against.
//!
//! ```
//! use fcpn_petri::gallery;
//! use fcpn_qss::{quasi_static_schedule, QssOptions};
//! use fcpn_codegen::{synthesize, RoundRobinResolver, SynthesisOptions};
//! use fcpn_rtos::{simulate_program, CostModel, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = gallery::figure4();
//! let schedule = quasi_static_schedule(&net, &QssOptions::default())?.schedule().unwrap();
//! let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
//! let input = net.transition_by_name("t1").unwrap();
//! let workload = Workload::periodic(input, 100, 10, 0);
//! let mut resolver = RoundRobinResolver::default();
//! let report = simulate_program(&program, &net, &CostModel::default(), &workload, &mut resolver)?;
//! assert_eq!(report.events_processed, 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod error;
mod event;
mod sim;

pub use cost::CostModel;
pub use error::{Result, RtosError};
pub use event::{Event, Workload};
pub use sim::{
    simulate_functional_partition, simulate_functional_partition_naive, simulate_program,
    simulate_program_with, ExecBackend, FunctionalSimBatch, FunctionalTask, SimReport,
    TaskActivation, DEFAULT_STEP_BUDGET,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Workload>();
        assert_send_sync::<CostModel>();
        assert_send_sync::<SimReport>();
        assert_send_sync::<RtosError>();
    }
}
