//! Round-trip property suite for region-based synthesis: explore a net, synthesize a
//! net back from the behaviour, re-explore, and demand isomorphism — across the
//! bounded gallery nets and 64 seeded-random conservative nets, under sequential and
//! multi-threaded exploration alike. Unbounded gallery nets must be *refused* (their
//! truncated spaces are not behaviours), never mis-synthesized. Random transition
//! systems that came from no net must always end in `Ok` or a typed witness — no
//! panic, no mis-realisation (the built-in verification pass backs this up).

use fcpn_petri::analysis::{splitmix64, ReachabilityOptions};
use fcpn_petri::statespace::{ExploreOptions, StateSpace};
use fcpn_petri::synthesis::{synthesize, Lts, LtsBuilder, SynthesisError, SynthesisOptions};
use fcpn_petri::{gallery, CancelToken, MemoryBudget, NetBuilder, PetriNet};

fn explore_threads(net: &PetriNet, threads: usize) -> StateSpace {
    StateSpace::explore_with(
        net,
        &ExploreOptions {
            threads,
            ..ExploreOptions::default()
        },
    )
}

/// Explore → synthesize → re-explore → isomorphism, for a net whose default-bounds
/// exploration is complete.
fn assert_roundtrip(net: &PetriNet, threads: usize) {
    let space = explore_threads(net, threads);
    assert!(
        space.is_complete() && space.frontier().is_empty(),
        "net {} must be bounded for a round trip",
        net.name()
    );
    let lts = Lts::from_statespace(net, &space).expect("complete space converts");
    let out = synthesize(&lts, &SynthesisOptions::default())
        .unwrap_or_else(|e| panic!("net {} (threads {threads}) failed: {e}", net.name()));
    assert!(out.stats.verified, "verification pass must run by default");

    // Independent re-exploration with generous bounds — not the engine's own pass.
    let re_space = StateSpace::explore(
        &out.net,
        ReachabilityOptions {
            max_markings: lts.state_count() + 1,
            max_tokens_per_place: u64::MAX / 2,
        },
    );
    let re_lts = Lts::from_statespace(&out.net, &re_space).expect("emitted net is bounded");
    assert!(
        Lts::isomorphic(&lts, &re_lts),
        "net {} (threads {threads}): reachability graph of the synthesized net differs",
        net.name()
    );
}

#[test]
fn bounded_gallery_nets_roundtrip_under_all_thread_counts() {
    let nets = [
        gallery::figure1a(),
        gallery::marked_ring(3, 1),
        gallery::marked_ring(4, 2),
        gallery::marked_ring(6, 3),
        gallery::cycle_bank(2),
        gallery::cycle_bank(3),
        gallery::cycle_bank(4),
    ];
    for net in &nets {
        for threads in [1, 2, 4] {
            assert_roundtrip(net, threads);
        }
    }
}

#[test]
fn unbounded_gallery_nets_are_refused_not_mis_synthesized() {
    // Their truncated explorations carry frontier states or a blown marking budget;
    // `Lts::from_statespace` must refuse them with the typed error.
    for net in [
        gallery::figure1b(),
        gallery::figure2(),
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
        gallery::choice_chain(3),
    ] {
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert!(
            matches!(
                Lts::from_statespace(&net, &space),
                Err(SynthesisError::IncompleteInput)
            ),
            "net {}",
            net.name()
        );
    }
}

/// A seeded random conservative net (an S-system: every transition moves one token
/// from one place to another), so the state space is finite by construction and the
/// round trip must always close.
fn random_conservative_net(seed: u64) -> PetriNet {
    let mut state = seed;
    let mut next = || {
        state = splitmix64(state);
        state
    };
    let places = 2 + (next() % 5) as usize; // 2..=6
    let transitions = 2 + (next() % 7) as usize; // 2..=8
    let tokens = 1 + (next() % 3) as usize; // 1..=3

    let mut initial = vec![0u64; places];
    for _ in 0..tokens {
        initial[(next() % places as u64) as usize] += 1;
    }

    let mut b = NetBuilder::new(format!("random-{seed}"));
    let ps: Vec<_> = (0..places)
        .map(|i| b.place(format!("p{i}"), initial[i]))
        .collect();
    for i in 0..transitions {
        let from = (next() % places as u64) as usize;
        let mut to = (next() % places as u64) as usize;
        if to == from {
            to = (from + 1) % places;
        }
        let t = b.transition(format!("t{i}"));
        b.arc_p_t(ps[from], t, 1).unwrap();
        b.arc_t_p(t, ps[to], 1).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn sixty_four_seeded_random_nets_roundtrip() {
    for seed in 0..64u64 {
        let net = random_conservative_net(seed);
        // Thread counts cycle 1, 2, 4 across seeds.
        let threads = match seed % 3 {
            0 => 1,
            1 => 2,
            _ => 4,
        };
        assert_roundtrip(&net, threads);
    }
}

/// A seeded random deterministic LTS that came from no net: synthesis must return
/// either a verified net or a typed witness — never panic, never mis-realise.
fn random_lts(seed: u64) -> Lts {
    let mut state = seed.wrapping_mul(0x9e37).wrapping_add(1);
    let mut next = || {
        state = splitmix64(state);
        state
    };
    let states = 2 + (next() % 5) as u32; // 2..=6
    let labels = 2 + (next() % 3) as u32; // 2..=4
    let mut b = LtsBuilder::new(format!("rand-lts-{seed}"));
    let ss: Vec<_> = (0..states).map(|i| b.state(format!("s{i}"))).collect();
    let ls: Vec<_> = (0..labels).map(|i| b.label(format!("l{i}"))).collect();
    // A spanning chain keeps most states reachable; extra random edges add cycles
    // and conflicts. Duplicate (state, label) picks collide into the first target
    // only if equal, so build deterministically: first writer wins.
    let mut used = std::collections::HashSet::new();
    for i in 1..states {
        let l = ls[(next() % labels as u64) as usize];
        if used.insert((ss[i as usize - 1], l)) {
            b.edge(ss[i as usize - 1], l, ss[i as usize]);
        }
    }
    for _ in 0..(2 + next() % 6) {
        let from = ss[(next() % states as u64) as usize];
        let l = ls[(next() % labels as u64) as usize];
        let to = ss[(next() % states as u64) as usize];
        if used.insert((from, l)) {
            b.edge(from, l, to);
        }
    }
    b.build()
        .expect("first-writer-wins edges are deterministic")
}

#[test]
fn random_transition_systems_get_nets_or_typed_witnesses() {
    let mut synthesized = 0;
    let mut refused = 0;
    for seed in 0..64u64 {
        let lts = random_lts(seed);
        match synthesize(&lts, &SynthesisOptions::default()) {
            Ok(out) => {
                assert!(out.stats.verified, "seed {seed}");
                synthesized += 1;
            }
            Err(
                SynthesisError::StateSeparation { .. }
                | SynthesisError::EventStateSeparation { .. }
                | SynthesisError::Unreachable { .. },
            ) => refused += 1,
            Err(other) => panic!("seed {seed}: unexpected error {other}"),
        }
    }
    // The generator must exercise both outcomes, or the test proves nothing.
    assert!(synthesized > 0, "no random LTS synthesized");
    assert!(refused > 0, "no random LTS produced a witness");
}

#[test]
fn armed_but_unreached_guards_are_bit_identical() {
    for seed in [3u64, 17, 42] {
        let net = random_conservative_net(seed);
        let space = explore_threads(&net, 1);
        let lts = Lts::from_statespace(&net, &space).unwrap();
        let plain = synthesize(&lts, &SynthesisOptions::default()).unwrap();
        let guarded = synthesize(
            &lts,
            &SynthesisOptions {
                cancel: CancelToken::new(),
                memory: MemoryBudget::with_limit(1 << 30),
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            fcpn_petri::io::to_text(&plain.net),
            fcpn_petri::io::to_text(&guarded.net),
            "seed {seed}"
        );
        assert_eq!(plain.stats, guarded.stats, "seed {seed}");
    }
}
