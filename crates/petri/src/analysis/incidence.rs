//! Incidence matrix of a net and the state equation.

use crate::{Marking, PetriNet, PlaceId, TransitionId};
use std::fmt;

/// The incidence matrix `D` of a net, with one row per transition and one column per
/// place: `D[t][p] = F(t, p) − F(p, t)`.
///
/// Firing transition `t` changes the marking by the row `D[t]`, so a firing count vector
/// `f` reproduces the initial marking iff `fᵀ · D = 0` — the *state equation* used to
/// compute T-invariants.
///
/// # Examples
///
/// ```
/// use fcpn_petri::{NetBuilder, analysis::IncidenceMatrix};
///
/// # fn main() -> Result<(), fcpn_petri::PetriError> {
/// let mut b = NetBuilder::new("chain");
/// let t1 = b.transition("t1");
/// let p = b.place("p", 0);
/// let t2 = b.transition("t2");
/// b.arc_t_p(t1, p, 2)?;
/// b.arc_p_t(p, t2, 3)?;
/// let net = b.build()?;
/// let d = IncidenceMatrix::from_net(&net);
/// assert_eq!(d.entry(t1, p), 2);
/// assert_eq!(d.entry(t2, p), -3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidenceMatrix {
    transitions: usize,
    places: usize,
    /// Row-major storage: `data[t * places + p]`.
    data: Vec<i64>,
}

impl IncidenceMatrix {
    /// Builds the incidence matrix of `net`.
    pub fn from_net(net: &PetriNet) -> Self {
        let transitions = net.transition_count();
        let places = net.place_count();
        let mut data = vec![0i64; transitions * places];
        for t in net.transitions() {
            for &(p, w) in net.inputs(t) {
                data[t.index() * places + p.index()] -= w as i64;
            }
            for &(p, w) in net.outputs(t) {
                data[t.index() * places + p.index()] += w as i64;
            }
        }
        IncidenceMatrix {
            transitions,
            places,
            data,
        }
    }

    /// Number of rows (transitions).
    pub fn transition_count(&self) -> usize {
        self.transitions
    }

    /// Number of columns (places).
    pub fn place_count(&self) -> usize {
        self.places
    }

    /// The entry `D[t][p]`.
    pub fn entry(&self, transition: TransitionId, place: PlaceId) -> i64 {
        self.data[transition.index() * self.places + place.index()]
    }

    /// The row of `transition` as a slice over places.
    pub fn row(&self, transition: TransitionId) -> &[i64] {
        let start = transition.index() * self.places;
        &self.data[start..start + self.places]
    }

    /// Computes `fᵀ · D` for a firing count vector `f` indexed by transitions.
    ///
    /// The result is indexed by places; it is the net token change produced by firing each
    /// transition `f[t]` times (in any fireable order).
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have one entry per transition.
    pub fn marking_change(&self, counts: &[u64]) -> Vec<i64> {
        assert_eq!(
            counts.len(),
            self.transitions,
            "firing count vector must have one entry per transition"
        );
        let mut change = vec![0i64; self.places];
        for (t, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for (p, slot) in change.iter_mut().enumerate() {
                *slot += self.data[t * self.places + p] * c as i64;
            }
        }
        change
    }

    /// Returns `true` if `counts` is a T-invariant: non-zero and `fᵀ · D = 0`.
    pub fn is_t_invariant(&self, counts: &[u64]) -> bool {
        counts.iter().any(|&c| c > 0) && self.marking_change(counts).iter().all(|&c| c == 0)
    }

    /// Applies the state equation: the marking reached from `from` after firing each
    /// transition `counts[t]` times, ignoring intermediate enabledness.
    ///
    /// Returns `None` if any place would go negative (the count vector is not realisable
    /// from `from` even ignoring ordering).
    pub fn apply(&self, from: &Marking, counts: &[u64]) -> Option<Marking> {
        let change = self.marking_change(counts);
        let mut out = Vec::with_capacity(self.places);
        for (p, &delta) in change.iter().enumerate() {
            let current = from.as_slice()[p] as i64;
            let next = current + delta;
            if next < 0 {
                return None;
            }
            out.push(next as u64);
        }
        Some(Marking::from_vec(out))
    }
}

impl fmt::Display for IncidenceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in 0..self.transitions {
            let row: Vec<String> = (0..self.places)
                .map(|p| format!("{:>3}", self.data[t * self.places + p]))
                .collect();
            writeln!(f, "t{t}: [{}]", row.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn figure2() -> PetriNet {
        let mut b = NetBuilder::new("figure2");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let p2 = b.place("p2", 0);
        let t3 = b.transition("t3");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 2).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_p_t(p2, t3, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn entries_match_flow_relation() {
        let net = figure2();
        let d = IncidenceMatrix::from_net(&net);
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let p1 = net.place_by_name("p1").unwrap();
        let p2 = net.place_by_name("p2").unwrap();
        assert_eq!(d.entry(t1, p1), 1);
        assert_eq!(d.entry(t2, p1), -2);
        assert_eq!(d.entry(t2, p2), 1);
        assert_eq!(d.entry(t3, p2), -2);
        assert_eq!(d.entry(t1, p2), 0);
        assert_eq!(d.row(t2), &[-2, 1]);
    }

    #[test]
    fn figure2_repetition_vector_is_a_t_invariant() {
        let net = figure2();
        let d = IncidenceMatrix::from_net(&net);
        assert!(d.is_t_invariant(&[4, 2, 1]));
        assert!(d.is_t_invariant(&[8, 4, 2]));
        assert!(!d.is_t_invariant(&[1, 1, 1]));
        assert!(!d.is_t_invariant(&[0, 0, 0]));
    }

    #[test]
    fn marking_change_and_apply() {
        let net = figure2();
        let d = IncidenceMatrix::from_net(&net);
        assert_eq!(d.marking_change(&[4, 2, 1]), vec![0, 0]);
        assert_eq!(d.marking_change(&[4, 0, 0]), vec![4, 0]);
        let m0 = net.initial_marking().clone();
        assert_eq!(d.apply(&m0, &[4, 0, 0]).unwrap().as_slice(), &[4, 0]);
        // Firing t2 twice from empty p1 is not realisable even algebraically.
        assert!(d.apply(&m0, &[0, 2, 0]).is_none());
    }

    #[test]
    #[should_panic(expected = "one entry per transition")]
    fn marking_change_validates_length() {
        let net = figure2();
        let d = IncidenceMatrix::from_net(&net);
        let _ = d.marking_change(&[1, 2]);
    }

    #[test]
    fn display_has_one_row_per_transition() {
        let net = figure2();
        let d = IncidenceMatrix::from_net(&net);
        let s = d.to_string();
        assert_eq!(s.lines().count(), 3);
    }
}
