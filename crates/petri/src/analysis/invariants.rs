//! T-invariants and P-invariants via the Farkas algorithm, and consistency.
//!
//! A *T-invariant* (T-semiflow) is a non-negative, non-zero integer vector `f` indexed by
//! transitions with `fᵀ · D = 0`: firing every transition `f[t]` times returns the net to
//! the marking it started from, *if* the firings can be ordered without deadlock. The
//! existence of such vectors is the algebraic half of schedulability (Definition 2.1 of the
//! paper); the other half — deadlock-free realisability — is checked by simulation in
//! [`crate::analysis`]'s callers.

use super::incidence::IncidenceMatrix;
use super::rational::Rational;
use crate::{PetriNet, TransitionId};

/// Maximum number of intermediate rows the Farkas elimination may generate before the
/// computation is considered intractable for the calling analysis.
const FARKAS_ROW_LIMIT: usize = 200_000;

/// A minimal semi-positive invariant with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Semiflow {
    /// The invariant vector (indexed by transition for T-semiflows, by place for
    /// P-semiflows).
    pub vector: Vec<u64>,
}

impl Semiflow {
    /// Indices with a non-zero entry.
    pub fn support(&self) -> Vec<usize> {
        self.vector
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns `true` if the entry at `index` is non-zero.
    pub fn contains(&self, index: usize) -> bool {
        self.vector.get(index).copied().unwrap_or(0) > 0
    }
}

/// Result of the invariant analysis of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantAnalysis {
    /// Minimal T-semiflows (minimal-support non-negative solutions of `fᵀD = 0`).
    pub t_semiflows: Vec<Semiflow>,
    /// Minimal P-semiflows (minimal-support non-negative solutions of `D·y = 0`).
    pub p_semiflows: Vec<Semiflow>,
    /// Whether the Farkas eliminations stayed within the row budget.
    pub complete: bool,
}

impl InvariantAnalysis {
    /// Runs the full invariant analysis on `net`.
    pub fn of(net: &PetriNet) -> Self {
        let d = IncidenceMatrix::from_net(net);
        InvariantAnalysis::of_matrix(&d)
    }

    /// Runs the analysis on a pre-computed incidence matrix.
    pub fn of_matrix(d: &IncidenceMatrix) -> Self {
        let nt = d.transition_count();
        let np = d.place_count();
        // Row i of `t_rows` is transition i's row of D.
        let t_rows: Vec<Vec<i128>> = (0..nt)
            .map(|t| {
                (0..np)
                    .map(|p| d.entry(TransitionId::new(t), crate::PlaceId::new(p)) as i128)
                    .collect()
            })
            .collect();
        let (t_semiflows, t_complete) = farkas(&t_rows);
        // For P-semiflows solve D · y = 0, i.e. run Farkas on the transpose.
        let p_rows: Vec<Vec<i128>> = (0..np)
            .map(|p| {
                (0..nt)
                    .map(|t| d.entry(TransitionId::new(t), crate::PlaceId::new(p)) as i128)
                    .collect()
            })
            .collect();
        let (p_semiflows, p_complete) = farkas(&p_rows);
        InvariantAnalysis {
            t_semiflows,
            p_semiflows,
            complete: t_complete && p_complete,
        }
    }

    /// Returns `true` if the union of the supports of the minimal T-semiflows covers every
    /// transition — equivalently (Definition 2.1) there exists `f > 0` with `fᵀD = 0` and
    /// the net is *consistent*.
    pub fn is_consistent(&self, transition_count: usize) -> bool {
        let mut covered = vec![false; transition_count];
        for s in &self.t_semiflows {
            for i in s.support() {
                covered[i] = true;
            }
        }
        transition_count > 0 && covered.into_iter().all(|c| c)
    }

    /// Returns `true` if the union of the supports of the minimal P-semiflows covers every
    /// place (the net is *conservative*).
    pub fn is_conservative(&self, place_count: usize) -> bool {
        let mut covered = vec![false; place_count];
        for s in &self.p_semiflows {
            for i in s.support() {
                covered[i] = true;
            }
        }
        place_count > 0 && covered.into_iter().all(|c| c)
    }

    /// A strictly positive T-invariant (every transition fires at least once), if one
    /// exists: the sum of all minimal T-semiflows when their supports cover `T`.
    pub fn positive_t_invariant(&self, transition_count: usize) -> Option<Vec<u64>> {
        if !self.is_consistent(transition_count) {
            return None;
        }
        let mut sum = vec![0u64; transition_count];
        for s in &self.t_semiflows {
            for (i, &v) in s.vector.iter().enumerate() {
                sum[i] += v;
            }
        }
        Some(sum)
    }

    /// The minimal T-semiflows whose support contains `transition`.
    pub fn t_semiflows_containing(&self, transition: TransitionId) -> Vec<&Semiflow> {
        self.t_semiflows
            .iter()
            .filter(|s| s.contains(transition.index()))
            .collect()
    }

    /// Sums one minimal T-semiflow per requested transition (the smallest-support one),
    /// producing a T-invariant whose support contains every requested transition.
    ///
    /// Returns `None` if some requested transition appears in no semiflow.
    pub fn covering_t_invariant(&self, transitions: &[TransitionId]) -> Option<Vec<u64>> {
        if self.t_semiflows.is_empty() {
            return None;
        }
        let len = self.t_semiflows[0].vector.len();
        let mut sum = vec![0u64; len];
        let mut any = false;
        for &t in transitions {
            let best = self
                .t_semiflows_containing(t)
                .into_iter()
                .min_by_key(|s| s.support().len())?;
            for (i, &v) in best.vector.iter().enumerate() {
                sum[i] += v;
            }
            any = true;
        }
        if any {
            Some(sum)
        } else {
            None
        }
    }
}

/// Computes the minimal semi-positive solutions of `x · rows = 0` (one unknown per row)
/// with the Farkas algorithm. Returns the semiflows and whether the computation stayed
/// within the row budget.
fn farkas(rows: &[Vec<i128>]) -> (Vec<Semiflow>, bool) {
    let n = rows.len();
    if n == 0 {
        return (Vec::new(), true);
    }
    let m = rows[0].len();
    // Each working row is (d_part, id_part).
    let mut work: Vec<(Vec<i128>, Vec<i128>)> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut id = vec![0i128; n];
            id[i] = 1;
            (r.clone(), id)
        })
        .collect();
    let mut complete = true;

    for col in 0..m {
        let mut next: Vec<(Vec<i128>, Vec<i128>)> = Vec::new();
        let (zeros, nonzeros): (Vec<_>, Vec<_>) = work.into_iter().partition(|(d, _)| d[col] == 0);
        next.extend(zeros);
        let positives: Vec<&(Vec<i128>, Vec<i128>)> =
            nonzeros.iter().filter(|(d, _)| d[col] > 0).collect();
        let negatives: Vec<&(Vec<i128>, Vec<i128>)> =
            nonzeros.iter().filter(|(d, _)| d[col] < 0).collect();
        for pos in &positives {
            for neg in &negatives {
                let a = pos.0[col];
                let b = -neg.0[col];
                let d: Vec<i128> = (0..m).map(|j| b * pos.0[j] + a * neg.0[j]).collect();
                let id: Vec<i128> = (0..n).map(|j| b * pos.1[j] + a * neg.1[j]).collect();
                let (mut d, mut id) = (d, id);
                normalise(&mut d, &mut id);
                next.push((d, id));
                if next.len() > FARKAS_ROW_LIMIT {
                    complete = false;
                    break;
                }
            }
            if !complete {
                break;
            }
        }
        // Prune rows whose identity-part support strictly contains another row's support;
        // only minimal-support rows can yield minimal semiflows.
        next = prune_non_minimal(next);
        work = next;
        if !complete {
            break;
        }
    }

    let mut flows: Vec<Semiflow> = work
        .into_iter()
        .filter(|(d, id)| d.iter().all(|&v| v == 0) && id.iter().any(|&v| v > 0))
        .map(|(_, id)| Semiflow {
            vector: id.iter().map(|&v| v as u64).collect(),
        })
        .collect();
    flows.sort_by(|a, b| a.vector.cmp(&b.vector));
    flows.dedup();
    (prune_non_minimal_flows(flows), complete)
}

fn normalise(d: &mut [i128], id: &mut [i128]) {
    let mut g: i128 = 0;
    for &v in d.iter().chain(id.iter()) {
        g = gcd(g, v.abs());
    }
    if g > 1 {
        for v in d.iter_mut() {
            *v /= g;
        }
        for v in id.iter_mut() {
            *v /= g;
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

fn support(v: &[i128]) -> Vec<usize> {
    v.iter()
        .enumerate()
        .filter(|&(_, &x)| x != 0)
        .map(|(i, _)| i)
        .collect()
}

fn prune_non_minimal(rows: Vec<(Vec<i128>, Vec<i128>)>) -> Vec<(Vec<i128>, Vec<i128>)> {
    let supports: Vec<Vec<usize>> = rows.iter().map(|(_, id)| support(id)).collect();
    let mut keep = vec![true; rows.len()];
    for i in 0..rows.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rows.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            // If support(j) is a strict subset of support(i), row i is not minimal.
            if supports[j].len() < supports[i].len()
                && supports[j].iter().all(|x| supports[i].contains(x))
            {
                keep[i] = false;
            }
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(r, _)| r)
        .collect()
}

fn prune_non_minimal_flows(flows: Vec<Semiflow>) -> Vec<Semiflow> {
    let supports: Vec<Vec<usize>> = flows.iter().map(Semiflow::support).collect();
    let mut keep = vec![true; flows.len()];
    for i in 0..flows.len() {
        for j in 0..flows.len() {
            if i == j || !keep[j] {
                continue;
            }
            if supports[j].len() < supports[i].len()
                && supports[j].iter().all(|x| supports[i].contains(x))
            {
                keep[i] = false;
                break;
            }
        }
    }
    flows
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(f, _)| f)
        .collect()
}

/// Rank of the incidence matrix over the rationals; the dimension of the T-invariant
/// solution space is `|T| − rank(D)`.
pub fn incidence_rank(d: &IncidenceMatrix) -> usize {
    let nt = d.transition_count();
    let np = d.place_count();
    let mut rows: Vec<Vec<Rational>> = (0..nt)
        .map(|t| {
            (0..np)
                .map(|p| {
                    Rational::from_integer(
                        d.entry(TransitionId::new(t), crate::PlaceId::new(p)) as i128
                    )
                })
                .collect()
        })
        .collect();
    let mut rank = 0;
    let mut row = 0;
    for col in 0..np {
        if row >= nt {
            break;
        }
        let pivot = (row..nt).find(|&r| !rows[r][col].is_zero());
        let Some(pivot) = pivot else { continue };
        rows.swap(row, pivot);
        let pv = rows[row][col];
        let pivot_row = rows[row].clone();
        for (r, other) in rows.iter_mut().enumerate() {
            if r != row && !other[col].is_zero() {
                let factor = other[col] / pv;
                for (c, value) in other.iter_mut().enumerate().skip(col) {
                    *value = *value - pivot_row[c] * factor;
                }
            }
        }
        row += 1;
        rank += 1;
    }
    rank
}

/// Dimension of the T-invariant space of `net` (`|T| − rank(D)`).
pub fn t_invariant_space_dimension(net: &PetriNet) -> usize {
    let d = IncidenceMatrix::from_net(net);
    net.transition_count() - incidence_rank(&d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn figure2() -> PetriNet {
        let mut b = NetBuilder::new("figure2");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let p2 = b.place("p2", 0);
        let t3 = b.transition("t3");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 2).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_p_t(p2, t3, 2).unwrap();
        b.build().unwrap()
    }

    /// Figure 3a: choice place p1 feeding t2/t3, each branch rejoining through t4/t5.
    fn figure3a() -> PetriNet {
        let mut b = NetBuilder::new("figure3a");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let t3 = b.transition("t3");
        let p2 = b.place("p2", 0);
        let p3 = b.place("p3", 0);
        let t4 = b.transition("t4");
        let t5 = b.transition("t5");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.arc_p_t(p1, t3, 1).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_t_p(t3, p3, 1).unwrap();
        b.arc_p_t(p2, t4, 1).unwrap();
        b.arc_p_t(p3, t5, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure2_minimal_t_semiflow() {
        let net = figure2();
        let inv = InvariantAnalysis::of(&net);
        assert!(inv.complete);
        assert_eq!(inv.t_semiflows.len(), 1);
        assert_eq!(inv.t_semiflows[0].vector, vec![4, 2, 1]);
        assert!(inv.is_consistent(net.transition_count()));
        assert_eq!(inv.positive_t_invariant(3), Some(vec![4, 2, 1]));
    }

    #[test]
    fn figure3a_has_one_semiflow_per_choice_branch() {
        // f(s) = a(1,1,0,1,0) + b(1,0,1,0,1) per the paper.
        let net = figure3a();
        let inv = InvariantAnalysis::of(&net);
        assert_eq!(inv.t_semiflows.len(), 2);
        let mut vectors: Vec<Vec<u64>> = inv.t_semiflows.iter().map(|s| s.vector.clone()).collect();
        vectors.sort();
        assert_eq!(vectors, vec![vec![1, 0, 1, 0, 1], vec![1, 1, 0, 1, 0]]);
        assert!(inv.is_consistent(net.transition_count()));
    }

    #[test]
    fn inconsistent_net_detected() {
        // t1 -> p1 -> t2, but t2 produces 2 tokens back into p1: no non-trivial invariant
        // can balance the net unless weights cancel; make them unbalanced.
        let mut b = NetBuilder::new("inconsistent");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let p2 = b.place("p2", 0);
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        // p2 is a sink place that accumulates forever -> t2 cannot be in any semiflow.
        let net = b.build().unwrap();
        let inv = InvariantAnalysis::of(&net);
        assert!(!inv.is_consistent(net.transition_count()));
        assert!(inv.positive_t_invariant(net.transition_count()).is_none());
    }

    #[test]
    fn semiflow_support_queries() {
        let net = figure3a();
        let inv = InvariantAnalysis::of(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let with_t2 = inv.t_semiflows_containing(t2);
        assert_eq!(with_t2.len(), 1);
        assert!(with_t2[0].contains(t2.index()));
        assert!(!with_t2[0].contains(t3.index()));
    }

    #[test]
    fn covering_invariant_spans_requested_transitions() {
        let net = figure3a();
        let inv = InvariantAnalysis::of(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let cover = inv.covering_t_invariant(&[t2, t3]).unwrap();
        assert!(cover[t2.index()] > 0 && cover[t3.index()] > 0);
        let d = IncidenceMatrix::from_net(&net);
        assert!(d.is_t_invariant(&cover));
    }

    #[test]
    fn p_semiflows_of_a_cycle() {
        // A simple token-conserving cycle: p1 -> t1 -> p2 -> t2 -> p1.
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let inv = InvariantAnalysis::of(&net);
        assert!(inv.is_conservative(net.place_count()));
        assert_eq!(inv.p_semiflows.len(), 1);
        assert_eq!(inv.p_semiflows[0].vector, vec![1, 1]);
    }

    #[test]
    fn invariant_space_dimension() {
        let net = figure2();
        assert_eq!(t_invariant_space_dimension(&net), 1);
        let net = figure3a();
        // Five transitions, rank 3 (three places with independent rows) -> dimension 2.
        assert_eq!(t_invariant_space_dimension(&net), 2);
    }

    #[test]
    fn empty_net_has_no_semiflows() {
        let net = NetBuilder::new("empty").build().unwrap();
        let inv = InvariantAnalysis::of(&net);
        assert!(inv.t_semiflows.is_empty());
        assert!(!inv.is_consistent(net.transition_count()));
    }
}
