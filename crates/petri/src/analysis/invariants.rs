//! T-invariants and P-invariants via the Farkas algorithm, and consistency.
//!
//! A *T-invariant* (T-semiflow) is a non-negative, non-zero integer vector `f` indexed by
//! transitions with `fᵀ · D = 0`: firing every transition `f[t]` times returns the net to
//! the marking it started from, *if* the firings can be ordered without deadlock. The
//! existence of such vectors is the algebraic half of schedulability (Definition 2.1 of the
//! paper); the other half — deadlock-free realisability — is checked by simulation in
//! [`crate::analysis`]'s callers.
//!
//! The production elimination ([`InvariantAnalysis::of_matrix`]) works on **sparse,
//! fraction-free integer rows**: incidence matrices of real nets are overwhelmingly
//! sparse, every row combination stays in (gcd-normalised) integers, identical rows are
//! deduplicated through a hash table, and the minimal-support pruning runs on bitsets.
//! The seed's dense implementation is retained verbatim as
//! [`InvariantAnalysis::of_matrix_naive`] — the oracle the equivalence tests pin the
//! sparse path against (the semiflow bases are identical).

use super::incidence::IncidenceMatrix;
use super::rational::Rational;
use crate::{PetriNet, TransitionId};
use std::collections::HashMap;

/// Maximum number of intermediate rows the Farkas elimination may generate before the
/// computation is considered intractable for the calling analysis.
const FARKAS_ROW_LIMIT: usize = 200_000;

/// A minimal semi-positive invariant with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Semiflow {
    /// The invariant vector (indexed by transition for T-semiflows, by place for
    /// P-semiflows).
    pub vector: Vec<u64>,
}

impl Semiflow {
    /// Indices with a non-zero entry.
    ///
    /// Allocates a fresh `Vec` per call; hot loops (the per-component covering checks of
    /// the scheduler) should use the allocation-free [`Semiflow::support_iter`] instead.
    pub fn support(&self) -> Vec<usize> {
        self.support_iter().collect()
    }

    /// Iterates over the indices with a non-zero entry without allocating.
    pub fn support_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.vector
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(i, _)| i)
    }

    /// Number of non-zero entries (the support cardinality), without allocating.
    pub fn support_len(&self) -> usize {
        self.vector.iter().filter(|&&v| v > 0).count()
    }

    /// Returns `true` if the entry at `index` is non-zero.
    pub fn contains(&self, index: usize) -> bool {
        self.vector.get(index).copied().unwrap_or(0) > 0
    }
}

/// Result of the invariant analysis of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantAnalysis {
    /// Minimal T-semiflows (minimal-support non-negative solutions of `fᵀD = 0`).
    pub t_semiflows: Vec<Semiflow>,
    /// Minimal P-semiflows (minimal-support non-negative solutions of `D·y = 0`).
    pub p_semiflows: Vec<Semiflow>,
    /// Whether the Farkas eliminations stayed within the row budget.
    pub complete: bool,
}

impl InvariantAnalysis {
    /// Runs the full invariant analysis on `net` (the sparse fraction-free elimination).
    pub fn of(net: &PetriNet) -> Self {
        let d = IncidenceMatrix::from_net(net);
        InvariantAnalysis::of_matrix(&d)
    }

    /// Runs the full invariant analysis on `net` through the retained dense elimination
    /// ([`InvariantAnalysis::of_matrix_naive`]).
    pub fn of_naive(net: &PetriNet) -> Self {
        let d = IncidenceMatrix::from_net(net);
        InvariantAnalysis::of_matrix_naive(&d)
    }

    /// Computes only the T-semiflow side of the analysis, building the sparse rows
    /// straight from the net's precomputed delta rows — no dense incidence matrix is
    /// ever materialised. Returns the minimal T-semiflows and the completeness flag.
    ///
    /// This is the scheduler's per-component entry: Definition 3.5 never consults
    /// P-semiflows, so the transpose elimination (roughly half of
    /// [`InvariantAnalysis::of`]'s work) is skipped entirely on that path.
    pub fn t_semiflows_of(net: &PetriNet) -> (Vec<Semiflow>, bool) {
        let rows: Vec<Vec<(u32, i128)>> = net
            .transitions()
            .map(|t| {
                let mut row: Vec<(u32, i128)> = net
                    .delta_row(t)
                    .iter()
                    .map(|&(p, d)| (p.index() as u32, d as i128))
                    .collect();
                row.sort_by_key(|&(c, _)| c);
                row
            })
            .collect();
        farkas_sparse(&rows, net.transition_count())
    }

    /// Runs the analysis on a pre-computed incidence matrix using the sparse
    /// fraction-free Farkas elimination: rows are sorted `(index, value)` lists, row
    /// combinations are integer (Bareiss-style cross-multiplication followed by gcd
    /// normalisation, so no rationals ever appear), exact duplicate rows are dropped
    /// through a hash table as they are generated, and minimal-support pruning runs on
    /// per-row support bitsets. The semiflow basis is identical to
    /// [`InvariantAnalysis::of_matrix_naive`]'s.
    pub fn of_matrix(d: &IncidenceMatrix) -> Self {
        let nt = d.transition_count();
        let np = d.place_count();
        // Row i is transition i's row of D, in sparse form.
        let t_rows: Vec<Vec<(u32, i128)>> = (0..nt)
            .map(|t| {
                (0..np)
                    .filter_map(|p| {
                        let v = d.entry(TransitionId::new(t), crate::PlaceId::new(p));
                        (v != 0).then_some((p as u32, v as i128))
                    })
                    .collect()
            })
            .collect();
        let (t_semiflows, t_complete) = farkas_sparse(&t_rows, nt);
        // For P-semiflows solve D · y = 0, i.e. run Farkas on the transpose.
        let p_rows: Vec<Vec<(u32, i128)>> = (0..np)
            .map(|p| {
                (0..nt)
                    .filter_map(|t| {
                        let v = d.entry(TransitionId::new(t), crate::PlaceId::new(p));
                        (v != 0).then_some((t as u32, v as i128))
                    })
                    .collect()
            })
            .collect();
        let (p_semiflows, p_complete) = farkas_sparse(&p_rows, np);
        InvariantAnalysis {
            t_semiflows,
            p_semiflows,
            complete: t_complete && p_complete,
        }
    }

    /// Runs the analysis on a pre-computed incidence matrix with the seed's dense
    /// `Vec<Vec<i128>>` elimination — the reference oracle for
    /// [`InvariantAnalysis::of_matrix`], retained verbatim and pinned to identical
    /// semiflow bases by the seeded equivalence suite.
    pub fn of_matrix_naive(d: &IncidenceMatrix) -> Self {
        let nt = d.transition_count();
        let np = d.place_count();
        // Row i of `t_rows` is transition i's row of D.
        let t_rows: Vec<Vec<i128>> = (0..nt)
            .map(|t| {
                (0..np)
                    .map(|p| d.entry(TransitionId::new(t), crate::PlaceId::new(p)) as i128)
                    .collect()
            })
            .collect();
        let (t_semiflows, t_complete) = farkas(&t_rows);
        // For P-semiflows solve D · y = 0, i.e. run Farkas on the transpose.
        let p_rows: Vec<Vec<i128>> = (0..np)
            .map(|p| {
                (0..nt)
                    .map(|t| d.entry(TransitionId::new(t), crate::PlaceId::new(p)) as i128)
                    .collect()
            })
            .collect();
        let (p_semiflows, p_complete) = farkas(&p_rows);
        InvariantAnalysis {
            t_semiflows,
            p_semiflows,
            complete: t_complete && p_complete,
        }
    }

    /// Returns `true` if the union of the supports of the minimal T-semiflows covers every
    /// transition — equivalently (Definition 2.1) there exists `f > 0` with `fᵀD = 0` and
    /// the net is *consistent*.
    pub fn is_consistent(&self, transition_count: usize) -> bool {
        let mut covered = vec![false; transition_count];
        for s in &self.t_semiflows {
            for i in s.support_iter() {
                covered[i] = true;
            }
        }
        transition_count > 0 && covered.into_iter().all(|c| c)
    }

    /// Returns `true` if the union of the supports of the minimal P-semiflows covers every
    /// place (the net is *conservative*).
    pub fn is_conservative(&self, place_count: usize) -> bool {
        let mut covered = vec![false; place_count];
        for s in &self.p_semiflows {
            for i in s.support_iter() {
                covered[i] = true;
            }
        }
        place_count > 0 && covered.into_iter().all(|c| c)
    }

    /// A strictly positive T-invariant (every transition fires at least once), if one
    /// exists: the sum of all minimal T-semiflows when their supports cover `T`.
    pub fn positive_t_invariant(&self, transition_count: usize) -> Option<Vec<u64>> {
        if !self.is_consistent(transition_count) {
            return None;
        }
        let mut sum = vec![0u64; transition_count];
        for s in &self.t_semiflows {
            for (i, &v) in s.vector.iter().enumerate() {
                sum[i] += v;
            }
        }
        Some(sum)
    }

    /// The minimal T-semiflows whose support contains `transition`.
    pub fn t_semiflows_containing(&self, transition: TransitionId) -> Vec<&Semiflow> {
        self.t_semiflows
            .iter()
            .filter(|s| s.contains(transition.index()))
            .collect()
    }

    /// Sums one minimal T-semiflow per requested transition (the smallest-support one),
    /// producing a T-invariant whose support contains every requested transition.
    ///
    /// Returns `None` if some requested transition appears in no semiflow.
    pub fn covering_t_invariant(&self, transitions: &[TransitionId]) -> Option<Vec<u64>> {
        if self.t_semiflows.is_empty() {
            return None;
        }
        let len = self.t_semiflows[0].vector.len();
        let mut sum = vec![0u64; len];
        let mut any = false;
        for &t in transitions {
            let best = self
                .t_semiflows_containing(t)
                .into_iter()
                .min_by_key(|s| s.support_len())?;
            for (i, &v) in best.vector.iter().enumerate() {
                sum[i] += v;
            }
            any = true;
        }
        if any {
            Some(sum)
        } else {
            None
        }
    }
}

/// Computes the minimal semi-positive solutions of `x · rows = 0` (one unknown per row)
/// with the Farkas algorithm. Returns the semiflows and whether the computation stayed
/// within the row budget.
fn farkas(rows: &[Vec<i128>]) -> (Vec<Semiflow>, bool) {
    let n = rows.len();
    if n == 0 {
        return (Vec::new(), true);
    }
    let m = rows[0].len();
    // Each working row is (d_part, id_part).
    let mut work: Vec<(Vec<i128>, Vec<i128>)> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut id = vec![0i128; n];
            id[i] = 1;
            (r.clone(), id)
        })
        .collect();
    let mut complete = true;

    for col in 0..m {
        let mut next: Vec<(Vec<i128>, Vec<i128>)> = Vec::new();
        let (zeros, nonzeros): (Vec<_>, Vec<_>) = work.into_iter().partition(|(d, _)| d[col] == 0);
        next.extend(zeros);
        let positives: Vec<&(Vec<i128>, Vec<i128>)> =
            nonzeros.iter().filter(|(d, _)| d[col] > 0).collect();
        let negatives: Vec<&(Vec<i128>, Vec<i128>)> =
            nonzeros.iter().filter(|(d, _)| d[col] < 0).collect();
        for pos in &positives {
            for neg in &negatives {
                let a = pos.0[col];
                let b = -neg.0[col];
                let d: Vec<i128> = (0..m).map(|j| b * pos.0[j] + a * neg.0[j]).collect();
                let id: Vec<i128> = (0..n).map(|j| b * pos.1[j] + a * neg.1[j]).collect();
                let (mut d, mut id) = (d, id);
                normalise(&mut d, &mut id);
                next.push((d, id));
                if next.len() > FARKAS_ROW_LIMIT {
                    complete = false;
                    break;
                }
            }
            if !complete {
                break;
            }
        }
        // Prune rows whose identity-part support strictly contains another row's support;
        // only minimal-support rows can yield minimal semiflows.
        next = prune_non_minimal(next);
        work = next;
        if !complete {
            break;
        }
    }

    let mut flows: Vec<Semiflow> = work
        .into_iter()
        .filter(|(d, id)| d.iter().all(|&v| v == 0) && id.iter().any(|&v| v > 0))
        .map(|(_, id)| Semiflow {
            vector: id.iter().map(|&v| v as u64).collect(),
        })
        .collect();
    flows.sort_by(|a, b| a.vector.cmp(&b.vector));
    flows.dedup();
    (prune_non_minimal_flows(flows), complete)
}

/// One working row of the sparse elimination: the remaining matrix part and the
/// identity (solution) part, both as `(index, value)` lists sorted by index with no
/// zero values, plus the id-part support as a bitset for O(words) minimality checks.
#[derive(Debug, Clone)]
struct SparseRow {
    d: Vec<(u32, i128)>,
    id: Vec<(u32, i128)>,
    /// Bitset over the `n` unknowns: bit set ⇔ the id part has a non-zero entry there.
    support: Vec<u64>,
    /// Popcount of `support`, cached for the strict-subset pruning.
    support_len: u32,
}

impl SparseRow {
    /// The value at column `col` of the d part (0 if absent).
    fn d_at(&self, col: u32) -> i128 {
        match self.d.binary_search_by_key(&col, |&(c, _)| c) {
            Ok(i) => self.d[i].1,
            Err(_) => 0,
        }
    }
}

/// `out = a·x + b·y` over sorted sparse vectors, dropping cancelled entries.
fn sparse_axpby(
    a: i128,
    x: &[(u32, i128)],
    b: i128,
    y: &[(u32, i128)],
    out: &mut Vec<(u32, i128)>,
) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < x.len() || j < y.len() {
        match (x.get(i), y.get(j)) {
            (Some(&(cx, vx)), Some(&(cy, vy))) if cx == cy => {
                let v = a * vx + b * vy;
                if v != 0 {
                    out.push((cx, v));
                }
                i += 1;
                j += 1;
            }
            (Some(&(cx, vx)), Some(&(cy, _))) if cx < cy => {
                out.push((cx, a * vx));
                i += 1;
            }
            (Some(_), Some(&(cy, vy))) => {
                out.push((cy, b * vy));
                j += 1;
            }
            (Some(&(cx, vx)), None) => {
                out.push((cx, a * vx));
                i += 1;
            }
            (None, Some(&(cy, vy))) => {
                out.push((cy, b * vy));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// Divides every value of a combined row by the gcd of all its values (fraction-free
/// normalisation: the row stays integer and as small as possible).
fn normalise_sparse(d: &mut [(u32, i128)], id: &mut [(u32, i128)]) {
    let mut g: i128 = 0;
    for &(_, v) in d.iter().chain(id.iter()) {
        g = gcd(g, v.abs());
    }
    if g > 1 {
        for (_, v) in d.iter_mut() {
            *v /= g;
        }
        for (_, v) in id.iter_mut() {
            *v /= g;
        }
    }
}

/// The SplitMix64 finalizer: a cheap, well-dispersed `u64 → u64` mixer. Used here to
/// hash elimination rows for duplicate removal, and by downstream crates (the scheduler's
/// structural fingerprints) so the workspace keeps a single copy of the constants.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Content hash of a normalised row, used to drop exact duplicates as they are
/// generated (duplicate rows breed duplicate offspring, so early removal can shrink the
/// elimination exponentially without changing the final basis).
fn hash_sparse_row(d: &[(u32, i128)], id: &[(u32, i128)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        h = (h ^ splitmix64(x)).wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &(c, v) in d {
        fold(c as u64);
        fold(v as u64);
        fold((v >> 64) as u64);
    }
    fold(u64::MAX); // separator between the two parts
    for &(c, v) in id {
        fold(c as u64);
        fold(v as u64);
        fold((v >> 64) as u64);
    }
    h
}

/// `true` if `small`'s bits are a strict subset of `big`'s (callers pre-compare the
/// cached popcounts, so equality never reaches here with `small_len < big_len`).
fn bitset_strict_subset(small: &[u64], big: &[u64]) -> bool {
    small.iter().zip(big).all(|(&s, &b)| s & !b == 0)
}

/// Sparse fraction-free Farkas: computes the minimal semi-positive solutions of
/// `x · rows = 0` (one unknown per row, columns indexed up to the largest index present).
/// Returns the semiflows and whether the computation stayed within the row budget. The
/// result is identical to the dense [`farkas`]'s.
pub(crate) fn farkas_sparse(rows: &[Vec<(u32, i128)>], n: usize) -> (Vec<Semiflow>, bool) {
    if n == 0 {
        return (Vec::new(), true);
    }
    let m = rows
        .iter()
        .flat_map(|r| r.iter().map(|&(c, _)| c as usize + 1))
        .max()
        .unwrap_or(0);
    let words = n.div_ceil(64);
    let mut work: Vec<SparseRow> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut support = vec![0u64; words];
            support[i / 64] |= 1u64 << (i % 64);
            SparseRow {
                d: r.clone(),
                id: vec![(i as u32, 1)],
                support,
                support_len: 1,
            }
        })
        .collect();
    let mut complete = true;
    let mut d_buf: Vec<(u32, i128)> = Vec::new();
    let mut id_buf: Vec<(u32, i128)> = Vec::new();

    for col in 0..m as u32 {
        // Partition preserving order: zero rows survive, signed rows combine pairwise.
        let mut next: Vec<SparseRow> = Vec::with_capacity(work.len());
        let mut positives: Vec<SparseRow> = Vec::new();
        let mut negatives: Vec<SparseRow> = Vec::new();
        for row in work {
            match row.d_at(col).signum() {
                0 => next.push(row),
                1 => positives.push(row),
                _ => negatives.push(row),
            }
        }
        // Hash-dedup table over the rows combined at *this* column (surviving zero rows
        // are already mutually distinct — their content never changes — so only the new
        // rows need hashing): content hash → indices into `next` to compare.
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut combined_any = false;
        'combine: for pos in &positives {
            for neg in &negatives {
                let a = pos.d_at(col);
                let b = -neg.d_at(col);
                // d/id = b·pos + a·neg: the entries at `col` cancel exactly.
                sparse_axpby(b, &pos.d, a, &neg.d, &mut d_buf);
                sparse_axpby(b, &pos.id, a, &neg.id, &mut id_buf);
                normalise_sparse(&mut d_buf, &mut id_buf);
                let h = hash_sparse_row(&d_buf, &id_buf);
                let slot = seen.entry(h).or_default();
                if slot
                    .iter()
                    .any(|&i| next[i].d == d_buf && next[i].id == id_buf)
                {
                    continue; // exact duplicate: identical offspring, drop it now
                }
                let mut support = vec![0u64; words];
                for &(c, _) in &id_buf {
                    support[c as usize / 64] |= 1u64 << (c as usize % 64);
                }
                let support_len = id_buf.len() as u32;
                slot.push(next.len());
                combined_any = true;
                next.push(SparseRow {
                    d: d_buf.clone(),
                    id: id_buf.clone(),
                    support,
                    support_len,
                });
                if next.len() > FARKAS_ROW_LIMIT {
                    complete = false;
                    break 'combine;
                }
            }
        }
        // Prune rows whose id-part support strictly contains another row's support;
        // only minimal-support rows can yield minimal semiflows. When the column
        // combined nothing, the surviving rows were already mutually minimal after the
        // previous prune (dropping unpaired rows cannot create new subset relations),
        // so the quadratic pass is skipped.
        if combined_any {
            let mut keep = vec![true; next.len()];
            for i in 0..next.len() {
                if !keep[i] {
                    continue;
                }
                for j in 0..next.len() {
                    if i == j || !keep[j] {
                        continue;
                    }
                    if next[j].support_len < next[i].support_len
                        && bitset_strict_subset(&next[j].support, &next[i].support)
                    {
                        keep[i] = false;
                        break;
                    }
                }
            }
            let mut kept = Vec::with_capacity(next.len());
            for (row, k) in next.into_iter().zip(keep) {
                if k {
                    kept.push(row);
                }
            }
            work = kept;
        } else {
            work = next;
        }
        if !complete {
            break;
        }
    }

    let mut flows: Vec<Semiflow> = work
        .into_iter()
        .filter(|row| row.d.is_empty() && row.id.iter().any(|&(_, v)| v > 0))
        .map(|row| {
            let mut vector = vec![0u64; n];
            for &(c, v) in &row.id {
                vector[c as usize] = v as u64;
            }
            Semiflow { vector }
        })
        .collect();
    flows.sort_by(|a, b| a.vector.cmp(&b.vector));
    flows.dedup();
    (prune_non_minimal_flows(flows), complete)
}

fn normalise(d: &mut [i128], id: &mut [i128]) {
    let mut g: i128 = 0;
    for &v in d.iter().chain(id.iter()) {
        g = gcd(g, v.abs());
    }
    if g > 1 {
        for v in d.iter_mut() {
            *v /= g;
        }
        for v in id.iter_mut() {
            *v /= g;
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

fn support(v: &[i128]) -> Vec<usize> {
    v.iter()
        .enumerate()
        .filter(|&(_, &x)| x != 0)
        .map(|(i, _)| i)
        .collect()
}

fn prune_non_minimal(rows: Vec<(Vec<i128>, Vec<i128>)>) -> Vec<(Vec<i128>, Vec<i128>)> {
    let supports: Vec<Vec<usize>> = rows.iter().map(|(_, id)| support(id)).collect();
    let mut keep = vec![true; rows.len()];
    for i in 0..rows.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rows.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            // If support(j) is a strict subset of support(i), row i is not minimal.
            if supports[j].len() < supports[i].len()
                && supports[j].iter().all(|x| supports[i].contains(x))
            {
                keep[i] = false;
            }
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(r, _)| r)
        .collect()
}

fn prune_non_minimal_flows(flows: Vec<Semiflow>) -> Vec<Semiflow> {
    let supports: Vec<Vec<usize>> = flows.iter().map(Semiflow::support).collect();
    let mut keep = vec![true; flows.len()];
    for i in 0..flows.len() {
        for j in 0..flows.len() {
            if i == j || !keep[j] {
                continue;
            }
            if supports[j].len() < supports[i].len()
                && supports[j].iter().all(|x| supports[i].contains(x))
            {
                keep[i] = false;
                break;
            }
        }
    }
    flows
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(f, _)| f)
        .collect()
}

/// Rank of the incidence matrix over the rationals; the dimension of the T-invariant
/// solution space is `|T| − rank(D)`.
pub fn incidence_rank(d: &IncidenceMatrix) -> usize {
    let nt = d.transition_count();
    let np = d.place_count();
    let mut rows: Vec<Vec<Rational>> = (0..nt)
        .map(|t| {
            (0..np)
                .map(|p| {
                    Rational::from_integer(
                        d.entry(TransitionId::new(t), crate::PlaceId::new(p)) as i128
                    )
                })
                .collect()
        })
        .collect();
    let mut rank = 0;
    let mut row = 0;
    for col in 0..np {
        if row >= nt {
            break;
        }
        let pivot = (row..nt).find(|&r| !rows[r][col].is_zero());
        let Some(pivot) = pivot else { continue };
        rows.swap(row, pivot);
        let pv = rows[row][col];
        let pivot_row = rows[row].clone();
        for (r, other) in rows.iter_mut().enumerate() {
            if r != row && !other[col].is_zero() {
                let factor = other[col] / pv;
                for (c, value) in other.iter_mut().enumerate().skip(col) {
                    *value = *value - pivot_row[c] * factor;
                }
            }
        }
        row += 1;
        rank += 1;
    }
    rank
}

/// Dimension of the T-invariant space of `net` (`|T| − rank(D)`).
pub fn t_invariant_space_dimension(net: &PetriNet) -> usize {
    let d = IncidenceMatrix::from_net(net);
    net.transition_count() - incidence_rank(&d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn figure2() -> PetriNet {
        let mut b = NetBuilder::new("figure2");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let p2 = b.place("p2", 0);
        let t3 = b.transition("t3");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 2).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_p_t(p2, t3, 2).unwrap();
        b.build().unwrap()
    }

    /// Figure 3a: choice place p1 feeding t2/t3, each branch rejoining through t4/t5.
    fn figure3a() -> PetriNet {
        let mut b = NetBuilder::new("figure3a");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let t3 = b.transition("t3");
        let p2 = b.place("p2", 0);
        let p3 = b.place("p3", 0);
        let t4 = b.transition("t4");
        let t5 = b.transition("t5");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.arc_p_t(p1, t3, 1).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_t_p(t3, p3, 1).unwrap();
        b.arc_p_t(p2, t4, 1).unwrap();
        b.arc_p_t(p3, t5, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure2_minimal_t_semiflow() {
        let net = figure2();
        let inv = InvariantAnalysis::of(&net);
        assert!(inv.complete);
        assert_eq!(inv.t_semiflows.len(), 1);
        assert_eq!(inv.t_semiflows[0].vector, vec![4, 2, 1]);
        assert!(inv.is_consistent(net.transition_count()));
        assert_eq!(inv.positive_t_invariant(3), Some(vec![4, 2, 1]));
    }

    #[test]
    fn figure3a_has_one_semiflow_per_choice_branch() {
        // f(s) = a(1,1,0,1,0) + b(1,0,1,0,1) per the paper.
        let net = figure3a();
        let inv = InvariantAnalysis::of(&net);
        assert_eq!(inv.t_semiflows.len(), 2);
        let mut vectors: Vec<Vec<u64>> = inv.t_semiflows.iter().map(|s| s.vector.clone()).collect();
        vectors.sort();
        assert_eq!(vectors, vec![vec![1, 0, 1, 0, 1], vec![1, 1, 0, 1, 0]]);
        assert!(inv.is_consistent(net.transition_count()));
    }

    #[test]
    fn inconsistent_net_detected() {
        // t1 -> p1 -> t2, but t2 produces 2 tokens back into p1: no non-trivial invariant
        // can balance the net unless weights cancel; make them unbalanced.
        let mut b = NetBuilder::new("inconsistent");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let p2 = b.place("p2", 0);
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        // p2 is a sink place that accumulates forever -> t2 cannot be in any semiflow.
        let net = b.build().unwrap();
        let inv = InvariantAnalysis::of(&net);
        assert!(!inv.is_consistent(net.transition_count()));
        assert!(inv.positive_t_invariant(net.transition_count()).is_none());
    }

    #[test]
    fn semiflow_support_queries() {
        let net = figure3a();
        let inv = InvariantAnalysis::of(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let with_t2 = inv.t_semiflows_containing(t2);
        assert_eq!(with_t2.len(), 1);
        assert!(with_t2[0].contains(t2.index()));
        assert!(!with_t2[0].contains(t3.index()));
    }

    #[test]
    fn covering_invariant_spans_requested_transitions() {
        let net = figure3a();
        let inv = InvariantAnalysis::of(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let cover = inv.covering_t_invariant(&[t2, t3]).unwrap();
        assert!(cover[t2.index()] > 0 && cover[t3.index()] > 0);
        let d = IncidenceMatrix::from_net(&net);
        assert!(d.is_t_invariant(&cover));
    }

    #[test]
    fn p_semiflows_of_a_cycle() {
        // A simple token-conserving cycle: p1 -> t1 -> p2 -> t2 -> p1.
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let inv = InvariantAnalysis::of(&net);
        assert!(inv.is_conservative(net.place_count()));
        assert_eq!(inv.p_semiflows.len(), 1);
        assert_eq!(inv.p_semiflows[0].vector, vec![1, 1]);
    }

    #[test]
    fn invariant_space_dimension() {
        let net = figure2();
        assert_eq!(t_invariant_space_dimension(&net), 1);
        let net = figure3a();
        // Five transitions, rank 3 (three places with independent rows) -> dimension 2.
        assert_eq!(t_invariant_space_dimension(&net), 2);
    }

    #[test]
    fn empty_net_has_no_semiflows() {
        let net = NetBuilder::new("empty").build().unwrap();
        let inv = InvariantAnalysis::of(&net);
        assert!(inv.t_semiflows.is_empty());
        assert!(!inv.is_consistent(net.transition_count()));
    }
}
