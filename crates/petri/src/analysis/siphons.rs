//! Siphons, traps and Commoner's liveness condition for free-choice nets.
//!
//! A *siphon* is a set of places whose every producing transition is also a consumer of
//! the set: once a siphon is emptied it can never regain tokens, permanently disabling
//! its output transitions. A *trap* is the dual: once marked it can never be emptied.
//! Hack's theorem (Commoner's condition) states that a free-choice net is live iff every
//! minimal siphon contains an initially marked trap. The quasi-static scheduler does not
//! need liveness per se, but the analysis is the classical structural companion of the
//! MG-decomposition the paper builds on, and it gives designers an orthogonal diagnosis
//! when a specification deadlocks.

use crate::{Marking, PetriNet, PlaceId};
use std::collections::BTreeSet;

/// Limit on the number of candidate place subsets examined during minimal-siphon
/// enumeration; beyond this the result is flagged as truncated.
const ENUMERATION_LIMIT: usize = 200_000;

/// A set of places (siphon or trap), kept sorted.
pub type PlaceSet = Vec<PlaceId>;

/// Result of the siphon/trap analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiphonAnalysis {
    /// Minimal (non-empty) siphons of the net.
    pub minimal_siphons: Vec<PlaceSet>,
    /// Maximal trap contained in each minimal siphon (empty when none exists).
    pub traps_in_siphons: Vec<PlaceSet>,
    /// Whether the enumeration completed within its budget.
    pub complete: bool,
}

impl SiphonAnalysis {
    /// Runs the analysis on `net`.
    pub fn of(net: &PetriNet) -> Self {
        let minimal_siphons = minimal_siphons(net);
        let complete = minimal_siphons.len() < ENUMERATION_LIMIT;
        let traps_in_siphons = minimal_siphons
            .iter()
            .map(|siphon| maximal_trap_within(net, siphon))
            .collect();
        SiphonAnalysis {
            minimal_siphons,
            traps_in_siphons,
            complete,
        }
    }

    /// Commoner's condition: every minimal siphon contains a trap marked under `marking`.
    ///
    /// For free-choice nets this is equivalent to liveness (Hack's theorem); for other
    /// classes it is sufficient for deadlock-freedom.
    pub fn commoner_holds(&self, marking: &Marking) -> bool {
        self.minimal_siphons
            .iter()
            .zip(self.traps_in_siphons.iter())
            .all(|(_, trap)| !trap.is_empty() && trap.iter().any(|&p| marking.tokens(p) > 0))
    }

    /// Siphons that are unmarked under `marking` — each is a certificate that the
    /// transitions consuming from it can die.
    pub fn unmarked_siphons(&self, marking: &Marking) -> Vec<&PlaceSet> {
        self.minimal_siphons
            .iter()
            .filter(|siphon| siphon.iter().all(|&p| marking.tokens(p) == 0))
            .collect()
    }
}

/// Returns `true` if `places` is a siphon: every transition producing into the set also
/// consumes from it (`•S ⊆ S•`).
pub fn is_siphon(net: &PetriNet, places: &[PlaceId]) -> bool {
    if places.is_empty() {
        return false;
    }
    let set: BTreeSet<PlaceId> = places.iter().copied().collect();
    for &p in places {
        for &(producer, _) in net.producers(p) {
            let consumes_from_set = net.inputs(producer).iter().any(|&(q, _)| set.contains(&q));
            if !consumes_from_set {
                return false;
            }
        }
    }
    true
}

/// Returns `true` if `places` is a trap: every transition consuming from the set also
/// produces into it (`S• ⊆ •S`).
pub fn is_trap(net: &PetriNet, places: &[PlaceId]) -> bool {
    if places.is_empty() {
        return false;
    }
    let set: BTreeSet<PlaceId> = places.iter().copied().collect();
    for &p in places {
        for &(consumer, _) in net.consumers(p) {
            let produces_into_set = net.outputs(consumer).iter().any(|&(q, _)| set.contains(&q));
            if !produces_into_set {
                return false;
            }
        }
    }
    true
}

/// Shrinks an arbitrary place set to the largest siphon it contains (possibly empty):
/// repeatedly drop places that have a producer not consuming from the set.
pub fn largest_siphon_within(net: &PetriNet, places: &[PlaceId]) -> PlaceSet {
    shrink(net, places, |net, set, p| {
        net.producers(p)
            .iter()
            .all(|&(producer, _)| net.inputs(producer).iter().any(|&(q, _)| set.contains(&q)))
    })
}

/// Shrinks an arbitrary place set to the largest trap it contains (possibly empty).
pub fn maximal_trap_within(net: &PetriNet, places: &[PlaceId]) -> PlaceSet {
    shrink(net, places, |net, set, p| {
        net.consumers(p)
            .iter()
            .all(|&(consumer, _)| net.outputs(consumer).iter().any(|&(q, _)| set.contains(&q)))
    })
}

fn shrink(
    net: &PetriNet,
    places: &[PlaceId],
    keep: impl Fn(&PetriNet, &BTreeSet<PlaceId>, PlaceId) -> bool,
) -> PlaceSet {
    let mut set: BTreeSet<PlaceId> = places.iter().copied().collect();
    while let Some(&drop) = set.iter().find(|&&p| !keep(net, &set, p)) {
        set.remove(&drop);
        if set.is_empty() {
            break;
        }
    }
    set.into_iter().collect()
}

/// Enumerates the minimal (inclusion-wise) non-empty siphons of `net`.
///
/// The enumeration grows candidate sets place by place, closing each candidate under the
/// "producers must consume from the set" rule, which is exact for the net sizes handled by
/// the scheduler (tens of places).
pub fn minimal_siphons(net: &PetriNet) -> Vec<PlaceSet> {
    let mut found: Vec<BTreeSet<PlaceId>> = Vec::new();
    let mut examined = 0usize;
    for seed in net.places() {
        if examined > ENUMERATION_LIMIT {
            break;
        }
        // Close the seed under the siphon condition: whenever a producer of a member does
        // not consume from the set, one of its input places must be added; branch over the
        // alternatives.
        let mut stack: Vec<BTreeSet<PlaceId>> = vec![[seed].into_iter().collect()];
        while let Some(candidate) = stack.pop() {
            examined += 1;
            if examined > ENUMERATION_LIMIT {
                break;
            }
            // Find a violation.
            let violation = candidate.iter().copied().find_map(|p| {
                net.producers(p)
                    .iter()
                    .map(|&(producer, _)| producer)
                    .find(|&producer| {
                        !net.inputs(producer)
                            .iter()
                            .any(|&(q, _)| candidate.contains(&q))
                    })
            });
            match violation {
                None => {
                    if !candidate.is_empty() && !found.iter().any(|s| s.is_subset(&candidate)) {
                        found.retain(|s| !candidate.is_subset(s) || s == &candidate);
                        found.push(candidate);
                    }
                }
                Some(producer) => {
                    let inputs = net.inputs(producer);
                    if inputs.is_empty() {
                        // A source transition produces into the candidate: no superset can
                        // ever be a siphon, drop this branch.
                        continue;
                    }
                    for &(q, _) in inputs {
                        let mut next = candidate.clone();
                        next.insert(q);
                        if !found.iter().any(|s| s.is_subset(&next)) {
                            stack.push(next);
                        }
                    }
                }
            }
        }
    }
    let mut result: Vec<PlaceSet> = found
        .into_iter()
        .map(|s| s.into_iter().collect::<Vec<_>>())
        .collect();
    result.sort();
    result.dedup();
    // Keep only inclusion-minimal sets.
    let snapshot = result.clone();
    result.retain(|candidate| {
        !snapshot.iter().any(|other| {
            other.len() < candidate.len() && other.iter().all(|p| candidate.contains(p))
        })
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    /// A live token ring: p1 -> t1 -> p2 -> t2 -> p1 with one token.
    fn ring() -> PetriNet {
        let mut b = NetBuilder::new("ring");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        b.build().unwrap()
    }

    /// The classic non-live free-choice example: two rings sharing a place that one ring
    /// can steal from the other permanently.
    fn unmarked_siphon_net() -> PetriNet {
        let mut b = NetBuilder::new("dead");
        let start = b.place("start", 1);
        let grab = b.transition("grab");
        let held = b.place("held", 0);
        let consume = b.transition("consume");
        let gone = b.place("gone", 0);
        let sink = b.transition("sink");
        b.arc_p_t(start, grab, 1).unwrap();
        b.arc_t_p(grab, held, 1).unwrap();
        b.arc_p_t(held, consume, 1).unwrap();
        b.arc_t_p(consume, gone, 1).unwrap();
        b.arc_p_t(gone, sink, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ring_places_form_a_siphon_and_a_trap() {
        let net = ring();
        let all: Vec<PlaceId> = net.places().collect();
        assert!(is_siphon(&net, &all));
        assert!(is_trap(&net, &all));
        assert!(!is_siphon(&net, &[]));
        // A single place of the ring is neither (its producer takes from the other place).
        assert!(!is_siphon(&net, &all[..1]));
        assert!(!is_trap(&net, &all[..1]));
    }

    #[test]
    fn ring_satisfies_commoner() {
        let net = ring();
        let analysis = SiphonAnalysis::of(&net);
        assert!(analysis.complete);
        assert_eq!(analysis.minimal_siphons.len(), 1);
        assert!(analysis.commoner_holds(net.initial_marking()));
        assert!(analysis.unmarked_siphons(net.initial_marking()).is_empty());
        // Empty the ring: the siphon is now unmarked and Commoner fails.
        let empty = Marking::zeroes(net.place_count());
        assert!(!analysis.commoner_holds(&empty));
        assert_eq!(analysis.unmarked_siphons(&empty).len(), 1);
    }

    #[test]
    fn chain_siphons_reveal_finite_execution() {
        let net = unmarked_siphon_net();
        let analysis = SiphonAnalysis::of(&net);
        // {start} is a minimal siphon with no trap inside: once consumed the chain dies —
        // the structural counterpart of the paper's "source place means finite execution".
        let start = net.place_by_name("start").unwrap();
        assert!(analysis.minimal_siphons.contains(&vec![start]));
        assert!(!analysis.commoner_holds(net.initial_marking()));
    }

    #[test]
    fn shrinking_finds_largest_substructures() {
        let net = ring();
        let all: Vec<PlaceId> = net.places().collect();
        assert_eq!(largest_siphon_within(&net, &all), all);
        assert_eq!(maximal_trap_within(&net, &all), all);
        assert!(largest_siphon_within(&net, &all[..1]).is_empty());
    }

    #[test]
    fn figure5_has_no_unmarked_siphon_trouble() {
        // The schedulable figure 5 net is open (source transitions feed it), so its
        // siphons are all replenishable from the environment; the analysis must simply
        // not report spurious structures containing the source-fed places.
        let net = crate::gallery::figure5();
        let analysis = SiphonAnalysis::of(&net);
        for siphon in &analysis.minimal_siphons {
            assert!(is_siphon(&net, siphon));
        }
    }

    #[test]
    fn traps_inside_siphons_are_traps() {
        let net = ring();
        let analysis = SiphonAnalysis::of(&net);
        for (siphon, trap) in analysis
            .minimal_siphons
            .iter()
            .zip(analysis.traps_in_siphons.iter())
        {
            if !trap.is_empty() {
                assert!(is_trap(&net, trap));
                assert!(trap.iter().all(|p| siphon.contains(p)));
            }
        }
    }
}
