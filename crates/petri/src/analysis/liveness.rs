//! Liveness analysis over the explored state space.

use super::reachability::ReachabilityOptions;
use crate::statespace::{ExploreOptions, StateSpace};
use crate::{PetriNet, TransitionId};

/// Outcome of a liveness query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessReport {
    /// Every transition can be fired again from every reachable marking.
    Live,
    /// At least one transition can become permanently disabled; the offending transitions
    /// are listed.
    NotLive {
        /// Transitions that are not live.
        transitions: Vec<TransitionId>,
    },
    /// The exploration was truncated, so liveness could not be decided.
    Unknown,
}

impl LivenessReport {
    /// Returns `true` if the net was proven live.
    pub fn is_live(&self) -> bool {
        matches!(self, LivenessReport::Live)
    }
}

/// Checks liveness of `net`: for every reachable marking and every transition `t`, some
/// marking enabling `t` must remain reachable.
///
/// The check is exact when the reachability graph is complete within `options`; otherwise
/// [`LivenessReport::Unknown`] is returned.
pub fn check_liveness(net: &PetriNet, options: ReachabilityOptions) -> LivenessReport {
    check_liveness_with(net, &ExploreOptions::from(options))
}

/// [`check_liveness`] with explicit engine configuration (thread count and token-arena
/// width); the verdict is identical for every configuration.
pub fn check_liveness_with(net: &PetriNet, options: &ExploreOptions) -> LivenessReport {
    check_liveness_in(net, &StateSpace::explore_with(net, options))
}

/// [`check_liveness`] on an already-explored state space, so callers running several
/// analyses over the same bounds share one exploration. The verdict is the one
/// [`check_liveness_with`] would produce for the options `space` was explored with.
pub fn check_liveness_in(net: &PetriNet, space: &StateSpace) -> LivenessReport {
    if !space.is_complete() {
        return LivenessReport::Unknown;
    }
    let mut not_live = Vec::new();
    for t in net.transitions() {
        let can = space.can_eventually_fire(net, t);
        if can.iter().any(|&c| !c) {
            not_live.push(t);
        }
    }
    if not_live.is_empty() {
        LivenessReport::Live
    } else {
        LivenessReport::NotLive {
            transitions: not_live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    #[test]
    fn token_cycle_is_live() {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        assert!(check_liveness(&net, ReachabilityOptions::default()).is_live());
    }

    #[test]
    fn one_shot_transition_is_not_live() {
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let once = b.transition("once");
        let p1 = b.place("p1", 1);
        let spin = b.transition("spin");
        b.arc_p_t(start, once, 1).unwrap();
        b.arc_p_t(p1, spin, 1).unwrap();
        b.arc_t_p(spin, p1, 1).unwrap();
        let net = b.build().unwrap();
        match check_liveness(&net, ReachabilityOptions::default()) {
            LivenessReport::NotLive { transitions } => {
                assert_eq!(transitions, vec![once]);
            }
            other => panic!("expected not live, got {other:?}"),
        }
    }

    #[test]
    fn truncated_exploration_is_unknown() {
        let mut b = NetBuilder::new("src");
        let t = b.transition("src");
        let p = b.place("p", 0);
        b.arc_t_p(t, p, 1).unwrap();
        let net = b.build().unwrap();
        let report = check_liveness(
            &net,
            ReachabilityOptions {
                max_markings: 10,
                max_tokens_per_place: 3,
            },
        );
        assert_eq!(report, LivenessReport::Unknown);
        assert!(!report.is_live());
    }
}
