//! Minimal exact rational arithmetic used by the structural analyses.
//!
//! The state equation `f(σ)ᵀ · D = 0` is solved over the rationals before being scaled to
//! the smallest integer solution, so the kernel needs exact fractions. The numerators and
//! denominators are kept in `i128`, which is ample for the net sizes a quasi-static
//! scheduler meets (the paper's largest example has 49 transitions).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Greatest common divisor of two non-negative integers.
pub fn gcd_u64(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two positive integers.
///
/// # Panics
///
/// Panics on overflow; callers work with repetition-vector magnitudes that fit easily.
pub fn lcm_u64(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd_u64(a, b) * b
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// An exact rational number with `i128` numerator and denominator.
///
/// The representation is always normalised: the denominator is positive and the fraction
/// is reduced. Arithmetic panics on overflow, which is acceptable for the bounded problem
/// sizes of structural Petri-net analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational denominator must be non-zero");
        // Integer fast path: a fraction over 1 is already normalised, so the gcd loop —
        // the dominant cost when rationals are built from integer matrix entries — can
        // be skipped entirely.
        if den == 1 {
            return Rational { num, den: 1 };
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates a rational from an integer.
    pub fn from_integer(value: i128) -> Self {
        Rational { num: value, den: 1 }
    }

    /// Numerator of the reduced fraction.
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced fraction (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

/// Scales a rational vector to the smallest non-negative integer vector with the same
/// direction: multiplies by the LCM of denominators and divides by the GCD of numerators.
///
/// Returns `None` if any entry is negative or the vector is all zero.
pub fn smallest_integer_vector(values: &[Rational]) -> Option<Vec<u64>> {
    if values.iter().any(Rational::is_negative) || values.iter().all(Rational::is_zero) {
        return None;
    }
    let mut lcm: i128 = 1;
    for v in values {
        let d = v.denom();
        lcm = lcm / gcd_i128(lcm, d) * d;
    }
    let scaled: Vec<i128> = values
        .iter()
        .map(|v| v.numer() * (lcm / v.denom()))
        .collect();
    let mut g: i128 = 0;
    for &s in &scaled {
        g = gcd_i128(g, s);
    }
    let g = g.max(1);
    Some(scaled.iter().map(|&s| (s / g) as u64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(0, 5), 5);
        assert_eq!(gcd_u64(7, 0), 7);
        assert_eq!(lcm_u64(4, 6), 12);
        assert_eq!(lcm_u64(0, 6), 0);
    }

    #[test]
    fn normalisation() {
        let r = Rational::new(2, 4);
        assert_eq!((r.numer(), r.denom()), (1, 2));
        let r = Rational::new(3, -6);
        assert_eq!((r.numer(), r.denom()), (-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    fn integer_fast_path_matches_general_construction() {
        // den == 1 short-circuits the gcd; the result must be indistinguishable from the
        // general path (and from from_integer) for positive, negative and zero values.
        for num in [-7i128, -1, 0, 1, 2, 41] {
            let fast = Rational::new(num, 1);
            assert_eq!(fast, Rational::from_integer(num));
            assert_eq!((fast.numer(), fast.denom()), (num, 1));
            // Equivalent fraction through the slow path reduces to the same value.
            assert_eq!(Rational::new(num * 3, 3), fast);
        }
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
        assert_eq!(a.recip(), Rational::from_integer(2));
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::from_integer(2) > Rational::new(3, 2));
        assert_eq!(
            Rational::new(2, 4).cmp(&Rational::new(1, 2)),
            Ordering::Equal
        );
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::new(-3, 4).to_string(), "-3/4");
    }

    #[test]
    fn smallest_integer_vector_scales_to_coprime() {
        let v = vec![Rational::new(1, 2), Rational::new(1, 4), Rational::ONE];
        assert_eq!(smallest_integer_vector(&v), Some(vec![2, 1, 4]));
        let v = vec![Rational::from_integer(2), Rational::from_integer(4)];
        assert_eq!(smallest_integer_vector(&v), Some(vec![1, 2]));
    }

    #[test]
    fn smallest_integer_vector_rejects_negative_or_zero() {
        let v = vec![Rational::new(-1, 2), Rational::ONE];
        assert_eq!(smallest_integer_vector(&v), None);
        let v = vec![Rational::ZERO, Rational::ZERO];
        assert_eq!(smallest_integer_vector(&v), None);
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
