//! Deadlock detection over the explored state space.

use super::reachability::ReachabilityOptions;
use crate::statespace::{ExploreOptions, StateSpace};
use crate::{Marking, PetriNet, TransitionId};

/// Outcome of a deadlock search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockReport {
    /// No reachable dead marking exists (within a completely explored state space).
    DeadlockFree,
    /// A reachable dead marking was found, together with a firing sequence leading to it.
    Deadlock {
        /// The dead marking.
        marking: Marking,
        /// A firing sequence from the initial marking reaching it.
        trace: Vec<TransitionId>,
    },
    /// The exploration was truncated, so absence of deadlock could not be proven.
    Unknown,
}

impl DeadlockReport {
    /// Returns `true` if a deadlock was found.
    pub fn has_deadlock(&self) -> bool {
        matches!(self, DeadlockReport::Deadlock { .. })
    }
}

/// Searches for a reachable dead marking (no transition enabled).
///
/// Nets with source transitions can never deadlock because source transitions are always
/// enabled; the search still runs and simply reports [`DeadlockReport::DeadlockFree`] when
/// the explored space is complete.
pub fn find_deadlock(net: &PetriNet, options: ReachabilityOptions) -> DeadlockReport {
    find_deadlock_with(net, &ExploreOptions::from(options))
}

/// [`find_deadlock`] with explicit engine configuration (thread count and token-arena
/// width); the verdict is identical for every configuration.
pub fn find_deadlock_with(net: &PetriNet, options: &ExploreOptions) -> DeadlockReport {
    find_deadlock_in(net, &StateSpace::explore_with(net, options))
}

/// [`find_deadlock`] on an already-explored state space, so callers that run several
/// analyses over the same bounds (e.g. the `fcpn-serve` `/analyze` endpoint) pay for
/// one exploration instead of one per check. The verdict is the one
/// [`find_deadlock_with`] would produce for the options `space` was explored with.
pub fn find_deadlock_in(net: &PetriNet, space: &StateSpace) -> DeadlockReport {
    // A state with no outgoing edge may simply have had its successors cut off by the
    // exploration budget; confirm it is genuinely dead before reporting it.
    let target = space.dead_states().into_iter().find(|&s| {
        let tokens = space.tokens(s);
        net.transitions().all(|t| !net.is_enabled_at(tokens, t))
    });
    if let Some(target) = target {
        return DeadlockReport::Deadlock {
            marking: space.marking(target),
            trace: space.path_to(target),
        };
    }
    if space.is_complete() {
        DeadlockReport::DeadlockFree
    } else {
        DeadlockReport::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    #[test]
    fn live_cycle_is_deadlock_free() {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            find_deadlock(&net, ReachabilityOptions::default()),
            DeadlockReport::DeadlockFree
        );
    }

    #[test]
    fn one_shot_chain_deadlocks_with_trace() {
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let t1 = b.transition("t1");
        let mid = b.place("mid", 0);
        let t2 = b.transition("t2");
        let end = b.place("end", 0);
        b.arc_p_t(start, t1, 1).unwrap();
        b.arc_t_p(t1, mid, 1).unwrap();
        b.arc_p_t(mid, t2, 1).unwrap();
        b.arc_t_p(t2, end, 1).unwrap();
        let net = b.build().unwrap();
        match find_deadlock(&net, ReachabilityOptions::default()) {
            DeadlockReport::Deadlock { marking, trace } => {
                assert_eq!(trace, vec![t1, t2]);
                assert_eq!(marking.tokens(end), 1);
                assert_eq!(marking.tokens(start), 0);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn truncated_exploration_is_unknown() {
        let mut b = NetBuilder::new("big");
        let start = b.place("start", 1);
        let t1 = b.transition("t1");
        let mid = b.place("mid", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(start, t1, 1).unwrap();
        b.arc_t_p(t1, mid, 1).unwrap();
        b.arc_p_t(mid, t2, 1).unwrap();
        let net = b.build().unwrap();
        let report = find_deadlock(
            &net,
            ReachabilityOptions {
                max_markings: 1,
                max_tokens_per_place: 64,
            },
        );
        // Only the initial marking fits the budget; it is not dead, so the result is
        // inconclusive rather than "deadlock free".
        assert_eq!(report, DeadlockReport::Unknown);
        assert!(!report.has_deadlock());
    }
}
