//! Boundedness analysis: k-boundedness over the explored state space and structural
//! unboundedness detection via a coverability (Karp–Miller style) search.

use crate::{Marking, PetriNet, PlaceId, TransitionId};
use std::collections::VecDeque;

/// Outcome of a boundedness query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Boundedness {
    /// Every reachable marking keeps every place at or below `k` tokens.
    Bounded {
        /// The smallest bound observed (the net is `k`-bounded).
        k: u64,
    },
    /// A reachable marking strictly covers one of its ancestors, so the pumping sequence
    /// can be repeated forever and the listed places grow without bound.
    Unbounded {
        /// Places whose token count can grow without bound.
        places: Vec<PlaceId>,
        /// A firing sequence from the initial marking that ends with the pumpable loop.
        witness: Vec<TransitionId>,
    },
    /// The analysis budget was exhausted before a verdict was reached.
    Unknown,
}

impl Boundedness {
    /// Returns `true` for the [`Boundedness::Bounded`] variant.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Boundedness::Bounded { .. })
    }

    /// Returns `true` for the [`Boundedness::Unbounded`] variant.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, Boundedness::Unbounded { .. })
    }
}

/// Options for the coverability search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundednessOptions {
    /// Maximum number of tree nodes to expand.
    pub max_nodes: usize,
}

impl Default for BoundednessOptions {
    fn default() -> Self {
        BoundednessOptions { max_nodes: 50_000 }
    }
}

struct Node {
    marking: Marking,
    parent: Option<usize>,
    via: Option<TransitionId>,
}

/// Decides boundedness of `net` from its initial marking with a coverability-style
/// breadth-first search: a marking strictly covering one of its ancestors witnesses
/// unboundedness (the classical Karp–Miller argument), while exhaustion of the finite
/// state space without such a witness proves boundedness.
pub fn check_boundedness(net: &PetriNet, options: BoundednessOptions) -> Boundedness {
    let mut nodes: Vec<Node> = vec![Node {
        marking: net.initial_marking().clone(),
        parent: None,
        via: None,
    }];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    let mut seen: Vec<Marking> = vec![net.initial_marking().clone()];
    let mut max_tokens = net.initial_marking().max_tokens();

    while let Some(current) = queue.pop_front() {
        if nodes.len() > options.max_nodes {
            return Boundedness::Unknown;
        }
        let marking = nodes[current].marking.clone();
        for t in net.transitions() {
            if !net.is_enabled(&marking, t) {
                continue;
            }
            let mut next = marking.clone();
            if net.fire(&mut next, t).is_err() {
                continue;
            }
            // Walk ancestors: a strictly covered ancestor proves unboundedness.
            let mut ancestor = Some(current);
            while let Some(a) = ancestor {
                if next.strictly_covers(&nodes[a].marking) {
                    let places = next
                        .iter()
                        .filter(|&(p, k)| k > nodes[a].marking.tokens(p))
                        .map(|(p, _)| p)
                        .collect();
                    let mut witness = vec![t];
                    let mut walk = current;
                    while let (Some(parent), Some(via)) = (nodes[walk].parent, nodes[walk].via) {
                        witness.push(via);
                        walk = parent;
                    }
                    witness.reverse();
                    return Boundedness::Unbounded { places, witness };
                }
                ancestor = nodes[a].parent;
            }
            if seen.contains(&next) {
                continue;
            }
            max_tokens = max_tokens.max(next.max_tokens());
            seen.push(next.clone());
            nodes.push(Node {
                marking: next,
                parent: Some(current),
                via: Some(t),
            });
            queue.push_back(nodes.len() - 1);
        }
    }
    Boundedness::Bounded { k: max_tokens }
}

/// Convenience query: is the net `k`-bounded for the given `k`?
///
/// Returns `None` if the analysis was inconclusive.
pub fn is_k_bounded(net: &PetriNet, k: u64, options: BoundednessOptions) -> Option<bool> {
    match check_boundedness(net, options) {
        Boundedness::Bounded { k: observed } => Some(observed <= k),
        Boundedness::Unbounded { .. } => Some(false),
        Boundedness::Unknown => None,
    }
}

/// Convenience query: is the net safe (1-bounded)?
///
/// Returns `None` if the analysis was inconclusive.
pub fn is_safe(net: &PetriNet, options: BoundednessOptions) -> Option<bool> {
    is_k_bounded(net, 1, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    #[test]
    fn token_conserving_cycle_is_1_bounded() {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let result = check_boundedness(&net, BoundednessOptions::default());
        assert_eq!(result, Boundedness::Bounded { k: 1 });
        assert_eq!(is_safe(&net, BoundednessOptions::default()), Some(true));
        assert_eq!(is_k_bounded(&net, 3, BoundednessOptions::default()), Some(true));
    }

    #[test]
    fn source_transition_makes_net_unbounded() {
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        let result = check_boundedness(&net, BoundednessOptions::default());
        match result {
            Boundedness::Unbounded { places, witness } => {
                assert_eq!(places, vec![p]);
                assert_eq!(witness, vec![t1]);
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
        assert_eq!(is_safe(&net, BoundednessOptions::default()), Some(false));
    }

    #[test]
    fn two_bounded_buffer() {
        // Producer limited by a credit place of 2 tokens: classic 2-bounded buffer.
        let mut b = NetBuilder::new("credit");
        let credit = b.place("credit", 2);
        let produce = b.transition("produce");
        let buf = b.place("buf", 0);
        let consume = b.transition("consume");
        b.arc_p_t(credit, produce, 1).unwrap();
        b.arc_t_p(produce, buf, 1).unwrap();
        b.arc_p_t(buf, consume, 1).unwrap();
        b.arc_t_p(consume, credit, 1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            check_boundedness(&net, BoundednessOptions::default()),
            Boundedness::Bounded { k: 2 }
        );
        assert_eq!(is_safe(&net, BoundednessOptions::default()), Some(false));
        assert_eq!(is_k_bounded(&net, 2, BoundednessOptions::default()), Some(true));
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        let mut b = NetBuilder::new("wide");
        // A large bounded net that exceeds a tiny node budget.
        let seed = b.place("seed", 3);
        for i in 0..6 {
            let t = b.transition(format!("t{i}"));
            let p = b.place(format!("p{i}"), 0);
            b.arc_p_t(seed, t, 1).unwrap();
            b.arc_t_p(t, p, 1).unwrap();
        }
        let net = b.build().unwrap();
        let result = check_boundedness(&net, BoundednessOptions { max_nodes: 2 });
        assert_eq!(result, Boundedness::Unknown);
        assert_eq!(is_safe(&net, BoundednessOptions { max_nodes: 2 }), None);
    }

    #[test]
    fn unbounded_witness_includes_prefix() {
        // t_init must fire once before the pumping loop (t_loop) becomes active.
        let mut b = NetBuilder::new("prefix");
        let start = b.place("start", 1);
        let t_init = b.transition("t_init");
        let gate = b.place("gate", 0);
        let t_loop = b.transition("t_loop");
        let acc = b.place("acc", 0);
        b.arc_p_t(start, t_init, 1).unwrap();
        b.arc_t_p(t_init, gate, 1).unwrap();
        b.arc_p_t(gate, t_loop, 1).unwrap();
        b.arc_t_p(t_loop, gate, 1).unwrap();
        b.arc_t_p(t_loop, acc, 1).unwrap();
        let net = b.build().unwrap();
        match check_boundedness(&net, BoundednessOptions::default()) {
            Boundedness::Unbounded { places, witness } => {
                assert_eq!(places, vec![acc]);
                assert_eq!(witness, vec![t_init, t_loop]);
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
    }
}
