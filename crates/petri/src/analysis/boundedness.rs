//! Boundedness analysis: k-boundedness over the explored state space and structural
//! unboundedness detection via a coverability (Karp–Miller style) search.

use super::reachability::ReachabilityOptions;
use crate::budget::{Interrupt, MemoryBudget};
use crate::cancel::{CancelGate, CancelToken};
use crate::statespace::{ExploreOptions, MarkingArena, StateSpace};
use crate::{PetriNet, PlaceId, TransitionId};
use std::collections::VecDeque;

/// Outcome of a boundedness query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Boundedness {
    /// Every reachable marking keeps every place at or below `k` tokens.
    Bounded {
        /// The smallest bound observed (the net is `k`-bounded).
        k: u64,
    },
    /// A reachable marking strictly covers one of its ancestors, so the pumping sequence
    /// can be repeated forever and the listed places grow without bound.
    Unbounded {
        /// Places whose token count can grow without bound.
        places: Vec<PlaceId>,
        /// A firing sequence from the initial marking that ends with the pumpable loop.
        witness: Vec<TransitionId>,
    },
    /// The analysis budget was exhausted before a verdict was reached.
    Unknown,
}

impl Boundedness {
    /// Returns `true` for the [`Boundedness::Bounded`] variant.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Boundedness::Bounded { .. })
    }

    /// Returns `true` for the [`Boundedness::Unbounded`] variant.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, Boundedness::Unbounded { .. })
    }
}

/// Options for the coverability search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundednessOptions {
    /// Maximum number of tree nodes to expand.
    pub max_nodes: usize,
}

impl Default for BoundednessOptions {
    fn default() -> Self {
        BoundednessOptions { max_nodes: 50_000 }
    }
}

/// Returns `true` if `a` covers `b` component-wise with strict excess somewhere.
fn strictly_covers(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x >= y) && a != b
}

/// Decides boundedness of `net` from its initial marking with a coverability-style
/// breadth-first search: a marking strictly covering one of its ancestors witnesses
/// unboundedness (the classical Karp–Miller argument), while exhaustion of the finite
/// state space without such a witness proves boundedness.
///
/// The search runs on the state-space engine's primitives: discovered markings are
/// interned in a [`MarkingArena`] (the former `Vec<Marking>` membership scan was O(V)
/// per successor) and successors are generated with the allocation-free
/// [`PetriNet::fire_into`] fast path.
pub fn check_boundedness(net: &PetriNet, options: BoundednessOptions) -> Boundedness {
    check_boundedness_covering(
        net,
        options,
        &CancelToken::never(),
        &MemoryBudget::unlimited(),
    )
    .expect("never-firing guards cannot interrupt")
}

/// [`check_boundedness`] with explicit engine configuration.
///
/// With `explore.threads > 1` a (parallel, narrow-arena) reachability exploration is run
/// first, bounded by `options.max_nodes` states and `explore.reach.max_tokens_per_place`
/// tokens per place: a *complete* exploration enumerates the full reachable set, which
/// proves boundedness directly with `k` the largest token count observed — the same `k`
/// the covering search reports. When the exploration is truncated (by either bound, in
/// particular for every unbounded net) the verdict falls back to the sequential
/// Karp–Miller covering search, whose ancestor walks are inherently order-dependent and
/// therefore not sharded.
pub fn check_boundedness_with(
    net: &PetriNet,
    options: BoundednessOptions,
    explore: &ExploreOptions,
) -> Boundedness {
    try_check_boundedness_with(net, options, explore)
        .expect("boundedness check interrupted; use try_check_boundedness_with with armed guards")
}

/// [`check_boundedness_with`] for callers that arm `explore.cancel` or
/// `explore.memory`: both the parallel reachability prepass and the covering search
/// poll the token, charge the budget, and surface an [`Interrupt`] instead of a
/// verdict when either guard trips. Never-firing guards make this identical to
/// [`check_boundedness_with`].
///
/// # Errors
///
/// [`Interrupt::Cancelled`] when `explore.cancel` fires, [`Interrupt::Exhausted`]
/// when `explore.memory` runs out, before a verdict is reached.
pub fn try_check_boundedness_with(
    net: &PetriNet,
    options: BoundednessOptions,
    explore: &ExploreOptions,
) -> Result<Boundedness, Interrupt> {
    if explore.resolved_threads() > 1 {
        let reach = ReachabilityOptions {
            max_markings: options.max_nodes,
            max_tokens_per_place: explore.reach.max_tokens_per_place,
        };
        let space = StateSpace::try_explore_with(
            net,
            &ExploreOptions {
                reach,
                ..explore.clone()
            },
        )?;
        if space.is_complete() {
            return Ok(Boundedness::Bounded {
                k: space.max_tokens_observed(),
            });
        }
    }
    check_boundedness_covering(net, options, &explore.cancel, &explore.memory)
}

/// The sequential coverability-style covering search (see [`check_boundedness`]).
fn check_boundedness_covering(
    net: &PetriNet,
    options: BoundednessOptions,
    cancel: &CancelToken,
    memory: &MemoryBudget,
) -> Result<Boundedness, Interrupt> {
    let places = net.place_count();
    // Arena row (u64 words) + raw hash + amortized interner slot, plus the parent
    // pointer and firing label — the covering search's per-node footprint.
    let node_bytes = (places * 8) as u64 + 8 + 24 + 16;
    let mut meter = memory.meter();
    meter.charge(node_bytes, "boundedness")?;
    let mut arena = MarkingArena::new(places);
    arena.intern(net.initial_marking().as_slice());
    // Parent pointers and firing labels, parallel to the arena's state ids.
    let mut parents: Vec<Option<u32>> = vec![None];
    let mut via: Vec<Option<TransitionId>> = vec![None];
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);
    let mut max_tokens = net.initial_marking().max_tokens();

    let mut current = vec![0u64; places];
    let mut scratch = vec![0u64; places];
    let mut cancel_gate = CancelGate::new(crate::statespace::CANCEL_STRIDE);

    while let Some(node) = queue.pop_front() {
        cancel_gate.check(cancel)?;
        if arena.len() > options.max_nodes {
            return Ok(Boundedness::Unknown);
        }
        current.copy_from_slice(arena.state(node));
        for t in net.transitions() {
            if !net.fire_into(&current, &mut scratch, t) {
                continue;
            }
            // Walk ancestors: a strictly covered ancestor proves unboundedness.
            let mut ancestor = Some(node);
            while let Some(a) = ancestor {
                if strictly_covers(&scratch, arena.state(a)) {
                    let pumped = arena.state(a);
                    let places = scratch
                        .iter()
                        .enumerate()
                        .filter(|&(p, &k)| k > pumped[p])
                        .map(|(p, _)| PlaceId::new(p))
                        .collect();
                    let mut witness = vec![t];
                    let mut walk = node;
                    while let (Some(parent), Some(fired)) =
                        (parents[walk as usize], via[walk as usize])
                    {
                        witness.push(fired);
                        walk = parent;
                    }
                    witness.reverse();
                    return Ok(Boundedness::Unbounded { places, witness });
                }
                ancestor = parents[a as usize];
            }
            let (id, inserted) = arena.intern(&scratch);
            if !inserted {
                continue;
            }
            meter.charge(node_bytes, "boundedness")?;
            max_tokens = max_tokens.max(scratch.iter().copied().max().unwrap_or(0));
            parents.push(Some(node));
            via.push(Some(t));
            debug_assert_eq!(parents.len(), arena.len());
            queue.push_back(id);
        }
    }
    Ok(Boundedness::Bounded { k: max_tokens })
}

/// Convenience query: is the net `k`-bounded for the given `k`?
///
/// Returns `None` if the analysis was inconclusive.
pub fn is_k_bounded(net: &PetriNet, k: u64, options: BoundednessOptions) -> Option<bool> {
    match check_boundedness(net, options) {
        Boundedness::Bounded { k: observed } => Some(observed <= k),
        Boundedness::Unbounded { .. } => Some(false),
        Boundedness::Unknown => None,
    }
}

/// Convenience query: is the net safe (1-bounded)?
///
/// Returns `None` if the analysis was inconclusive.
pub fn is_safe(net: &PetriNet, options: BoundednessOptions) -> Option<bool> {
    is_k_bounded(net, 1, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    #[test]
    fn token_conserving_cycle_is_1_bounded() {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let result = check_boundedness(&net, BoundednessOptions::default());
        assert_eq!(result, Boundedness::Bounded { k: 1 });
        assert_eq!(is_safe(&net, BoundednessOptions::default()), Some(true));
        assert_eq!(
            is_k_bounded(&net, 3, BoundednessOptions::default()),
            Some(true)
        );
    }

    #[test]
    fn source_transition_makes_net_unbounded() {
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        let result = check_boundedness(&net, BoundednessOptions::default());
        match result {
            Boundedness::Unbounded { places, witness } => {
                assert_eq!(places, vec![p]);
                assert_eq!(witness, vec![t1]);
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
        assert_eq!(is_safe(&net, BoundednessOptions::default()), Some(false));
    }

    #[test]
    fn two_bounded_buffer() {
        // Producer limited by a credit place of 2 tokens: classic 2-bounded buffer.
        let mut b = NetBuilder::new("credit");
        let credit = b.place("credit", 2);
        let produce = b.transition("produce");
        let buf = b.place("buf", 0);
        let consume = b.transition("consume");
        b.arc_p_t(credit, produce, 1).unwrap();
        b.arc_t_p(produce, buf, 1).unwrap();
        b.arc_p_t(buf, consume, 1).unwrap();
        b.arc_t_p(consume, credit, 1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            check_boundedness(&net, BoundednessOptions::default()),
            Boundedness::Bounded { k: 2 }
        );
        assert_eq!(is_safe(&net, BoundednessOptions::default()), Some(false));
        assert_eq!(
            is_k_bounded(&net, 2, BoundednessOptions::default()),
            Some(true)
        );
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        let mut b = NetBuilder::new("wide");
        // A large bounded net that exceeds a tiny node budget.
        let seed = b.place("seed", 3);
        for i in 0..6 {
            let t = b.transition(format!("t{i}"));
            let p = b.place(format!("p{i}"), 0);
            b.arc_p_t(seed, t, 1).unwrap();
            b.arc_t_p(t, p, 1).unwrap();
        }
        let net = b.build().unwrap();
        let result = check_boundedness(&net, BoundednessOptions { max_nodes: 2 });
        assert_eq!(result, Boundedness::Unknown);
        assert_eq!(is_safe(&net, BoundednessOptions { max_nodes: 2 }), None);
    }

    #[test]
    fn parallel_fast_path_agrees_with_covering_search() {
        use crate::gallery;
        let explore = ExploreOptions {
            threads: 2,
            ..ExploreOptions::default()
        };
        // Bounded: the parallel fast path proves it with the same k.
        let net = gallery::marked_ring(6, 3);
        assert_eq!(
            check_boundedness_with(&net, BoundednessOptions::default(), &explore),
            check_boundedness(&net, BoundednessOptions::default())
        );
        // Unbounded: the exploration is truncated, so the verdict falls back to the
        // covering search and keeps its witness.
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            check_boundedness_with(&net, BoundednessOptions::default(), &explore),
            check_boundedness(&net, BoundednessOptions::default())
        );
    }

    #[test]
    fn unbounded_witness_includes_prefix() {
        // t_init must fire once before the pumping loop (t_loop) becomes active.
        let mut b = NetBuilder::new("prefix");
        let start = b.place("start", 1);
        let t_init = b.transition("t_init");
        let gate = b.place("gate", 0);
        let t_loop = b.transition("t_loop");
        let acc = b.place("acc", 0);
        b.arc_p_t(start, t_init, 1).unwrap();
        b.arc_t_p(t_init, gate, 1).unwrap();
        b.arc_p_t(gate, t_loop, 1).unwrap();
        b.arc_t_p(t_loop, gate, 1).unwrap();
        b.arc_t_p(t_loop, acc, 1).unwrap();
        let net = b.build().unwrap();
        match check_boundedness(&net, BoundednessOptions::default()) {
            Boundedness::Unbounded { places, witness } => {
                assert_eq!(places, vec![acc]);
                assert_eq!(witness, vec![t_init, t_loop]);
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
    }
}
