//! Conflicts and the Equal Conflict Relation (Teruel), used by the valid-schedule
//! definition (Definition 3.1 of the paper).

use crate::{PetriNet, PlaceId, TransitionId};

/// Two transitions `t` and `t'` are in *Equal Conflict Relation* if they have identical,
/// non-empty `Pre` vectors: `Pre[P, t] = Pre[P, t'] ≠ 0`. In a free-choice net the
/// conflicting successors of a choice place are exactly the members of one equal-conflict
/// set, so whenever one of them is enabled all of them are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictAnalysis {
    /// Equal-conflict equivalence classes with at least two members (actual conflicts),
    /// each sorted by transition index.
    pub equal_conflict_sets: Vec<Vec<TransitionId>>,
    /// Choice places and their competing output transitions.
    pub choices: Vec<(PlaceId, Vec<TransitionId>)>,
}

impl ConflictAnalysis {
    /// Computes the equal-conflict sets and choice structure of `net`.
    pub fn of(net: &PetriNet) -> Self {
        let mut classes: Vec<Vec<TransitionId>> = Vec::new();
        let mut assigned = vec![false; net.transition_count()];
        for t in net.transitions() {
            if assigned[t.index()] || net.inputs(t).is_empty() {
                continue;
            }
            let mut class = vec![t];
            assigned[t.index()] = true;
            for u in net.transitions() {
                if u == t || assigned[u.index()] {
                    continue;
                }
                if same_pre(net, t, u) {
                    class.push(u);
                    assigned[u.index()] = true;
                }
            }
            if class.len() > 1 {
                class.sort();
                classes.push(class);
            }
        }
        let choices = net
            .choice_places()
            .into_iter()
            .map(|p| {
                let mut outs: Vec<TransitionId> =
                    net.consumers(p).iter().map(|&(t, _)| t).collect();
                outs.sort();
                (p, outs)
            })
            .collect();
        ConflictAnalysis {
            equal_conflict_sets: classes,
            choices,
        }
    }

    /// Returns `true` if `a` and `b` are in Equal Conflict Relation (the characteristic
    /// function `Q(t, t')` of Definition 3.1).
    pub fn in_equal_conflict(&self, a: TransitionId, b: TransitionId) -> bool {
        a != b
            && self
                .equal_conflict_sets
                .iter()
                .any(|c| c.contains(&a) && c.contains(&b))
    }

    /// The transitions in equal conflict with `t` (excluding `t` itself).
    pub fn conflict_peers(&self, t: TransitionId) -> Vec<TransitionId> {
        self.equal_conflict_sets
            .iter()
            .find(|c| c.contains(&t))
            .map(|c| c.iter().copied().filter(|&u| u != t).collect())
            .unwrap_or_default()
    }

    /// Number of free (actual) choices in the net.
    pub fn choice_count(&self) -> usize {
        self.choices.len()
    }

    /// Returns `true` if `t` competes with at least one other transition.
    pub fn is_conflicting(&self, t: TransitionId) -> bool {
        !self.conflict_peers(t).is_empty()
    }
}

fn same_pre(net: &PetriNet, a: TransitionId, b: TransitionId) -> bool {
    let pa = net.inputs(a);
    let pb = net.inputs(b);
    if pa.len() != pb.len() {
        return false;
    }
    let mut va: Vec<(PlaceId, u64)> = pa.to_vec();
    let mut vb: Vec<(PlaceId, u64)> = pb.to_vec();
    va.sort();
    vb.sort();
    va == vb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    /// Figure 3a of the paper: t2 and t3 compete for the token in p1.
    fn figure3a() -> PetriNet {
        let mut b = NetBuilder::new("figure3a");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let t3 = b.transition("t3");
        let p2 = b.place("p2", 0);
        let p3 = b.place("p3", 0);
        let t4 = b.transition("t4");
        let t5 = b.transition("t5");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.arc_p_t(p1, t3, 1).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_t_p(t3, p3, 1).unwrap();
        b.arc_p_t(p2, t4, 1).unwrap();
        b.arc_p_t(p3, t5, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn equal_conflict_sets_of_figure3a() {
        let net = figure3a();
        let ca = ConflictAnalysis::of(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let t4 = net.transition_by_name("t4").unwrap();
        assert_eq!(ca.equal_conflict_sets, vec![vec![t2, t3]]);
        assert!(ca.in_equal_conflict(t2, t3));
        assert!(ca.in_equal_conflict(t3, t2));
        assert!(!ca.in_equal_conflict(t2, t2));
        assert!(!ca.in_equal_conflict(t2, t4));
        assert_eq!(ca.conflict_peers(t2), vec![t3]);
        assert!(ca.conflict_peers(t4).is_empty());
        assert!(ca.is_conflicting(t2));
        assert!(!ca.is_conflicting(t4));
        assert_eq!(ca.choice_count(), 1);
    }

    #[test]
    fn marked_graph_has_no_conflicts() {
        let mut b = NetBuilder::new("mg");
        let t1 = b.transition("t1");
        let t2 = b.transition("t2");
        b.channel("p", t1, t2, 0).unwrap();
        let net = b.build().unwrap();
        let ca = ConflictAnalysis::of(&net);
        assert!(ca.equal_conflict_sets.is_empty());
        assert_eq!(ca.choice_count(), 0);
    }

    #[test]
    fn different_weights_break_equal_conflict() {
        // Both transitions read p, but with different weights: they conflict structurally
        // but are not in Equal Conflict Relation (Pre vectors differ), and the net is not
        // free choice in the strict weighted sense used for scheduling decisions.
        let mut b = NetBuilder::new("weights");
        let p = b.place("p", 2);
        let a = b.transition("a");
        let c = b.transition("c");
        b.arc_p_t(p, a, 1).unwrap();
        b.arc_p_t(p, c, 2).unwrap();
        let net = b.build().unwrap();
        let ca = ConflictAnalysis::of(&net);
        assert!(ca.equal_conflict_sets.is_empty());
        assert!(!ca.in_equal_conflict(a, c));
        // The structural choice is still reported.
        assert_eq!(ca.choice_count(), 1);
    }

    #[test]
    fn source_transitions_never_in_conflict() {
        let mut b = NetBuilder::new("sources");
        let s1 = b.transition("s1");
        let s2 = b.transition("s2");
        let p = b.place("p", 0);
        b.arc_t_p(s1, p, 1).unwrap();
        b.arc_t_p(s2, p, 1).unwrap();
        let net = b.build().unwrap();
        let ca = ConflictAnalysis::of(&net);
        // Both have empty Pre vectors; the relation requires Pre ≠ 0.
        assert!(ca.equal_conflict_sets.is_empty());
        assert!(!ca.in_equal_conflict(s1, s2));
    }
}
