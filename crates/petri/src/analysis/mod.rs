//! Structural and behavioural analyses of Petri nets.
//!
//! The submodules cover the properties Section 2 of the paper lists as "relevant to our
//! discussion": reachability, boundedness, deadlock-freedom, liveness, plus the
//! structural machinery quasi-static scheduling is built on — incidence matrices,
//! T-invariants/consistency, net-class classification and the Equal Conflict Relation.

mod boundedness;
mod classification;
mod conflict;
mod coverability;
mod deadlock;
mod incidence;
mod invariants;
mod liveness;
mod rational;
mod reachability;
mod siphons;

pub use boundedness::{
    check_boundedness, check_boundedness_with, is_k_bounded, is_safe, try_check_boundedness_with,
    Boundedness, BoundednessOptions,
};
pub use classification::{Classification, NetClass};
pub use conflict::ConflictAnalysis;
pub use coverability::{
    CoverabilityEdge, CoverabilityGraph, CoverabilityOptions, OmegaMarking, Tokens,
};
pub use deadlock::{find_deadlock, find_deadlock_in, find_deadlock_with, DeadlockReport};
pub use incidence::IncidenceMatrix;
pub(crate) use invariants::farkas_sparse;
pub use invariants::{
    incidence_rank, splitmix64, t_invariant_space_dimension, InvariantAnalysis, Semiflow,
};
pub use liveness::{check_liveness, check_liveness_in, check_liveness_with, LivenessReport};
pub use rational::{gcd_u64, lcm_u64, smallest_integer_vector, Rational};
pub use reachability::{ReachabilityEdge, ReachabilityGraph, ReachabilityOptions};
pub use siphons::{
    is_siphon, is_trap, largest_siphon_within, maximal_trap_within, minimal_siphons, PlaceSet,
    SiphonAnalysis,
};
