//! Explicit-state reachability exploration.
//!
//! Reachability is decidable for Petri nets but expensive in general; the explorer here is
//! a budgeted breadth-first construction of the reachability graph, sufficient for the net
//! sizes handled by a quasi-static scheduler and for validating schedules produced by the
//! `fcpn-qss` crate.

use crate::{Marking, PetriNet, TransitionId};
use std::collections::{HashMap, VecDeque};

/// Budget and cut-offs for state-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityOptions {
    /// Maximum number of distinct markings to explore before declaring the result
    /// incomplete.
    pub max_markings: usize,
    /// Markings with any place above this bound are not expanded (they are recorded as
    /// frontier states). This keeps nets with source transitions explorable.
    pub max_tokens_per_place: u64,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_markings: 100_000,
            max_tokens_per_place: 64,
        }
    }
}

/// An edge of the reachability graph: firing `transition` in marking `from` yields `to`
/// (indices into [`ReachabilityGraph::markings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityEdge {
    /// Index of the source marking.
    pub from: usize,
    /// Transition fired.
    pub transition: TransitionId,
    /// Index of the target marking.
    pub to: usize,
}

/// The (possibly truncated) reachability graph of a marked net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityGraph {
    /// All distinct markings discovered; index 0 is the initial marking.
    pub markings: Vec<Marking>,
    /// Firing edges between discovered markings.
    pub edges: Vec<ReachabilityEdge>,
    /// `true` if the whole reachable state space was enumerated within the budget and
    /// token cut-off (no marking was left unexpanded).
    pub complete: bool,
    /// Indices of markings that were discovered but not expanded because of the cut-offs.
    pub frontier: Vec<usize>,
}

impl ReachabilityGraph {
    /// Explores the state space of `net` from its initial marking.
    pub fn explore(net: &PetriNet, options: ReachabilityOptions) -> Self {
        Self::explore_from(net, net.initial_marking().clone(), options)
    }

    /// Explores the state space of `net` from an arbitrary marking.
    pub fn explore_from(net: &PetriNet, initial: Marking, options: ReachabilityOptions) -> Self {
        let mut markings = Vec::new();
        let mut edges = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut frontier = Vec::new();
        let mut queue = VecDeque::new();
        let mut complete = true;

        index.insert(initial.clone(), 0);
        markings.push(initial);
        queue.push_back(0usize);

        while let Some(current) = queue.pop_front() {
            let marking = markings[current].clone();
            if marking.max_tokens() > options.max_tokens_per_place {
                frontier.push(current);
                complete = false;
                continue;
            }
            for t in net.transitions() {
                if !net.is_enabled(&marking, t) {
                    continue;
                }
                let mut next = marking.clone();
                if net.fire(&mut next, t).is_err() {
                    continue;
                }
                let target = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if markings.len() >= options.max_markings {
                            complete = false;
                            continue;
                        }
                        let i = markings.len();
                        index.insert(next.clone(), i);
                        markings.push(next);
                        queue.push_back(i);
                        i
                    }
                };
                edges.push(ReachabilityEdge {
                    from: current,
                    transition: t,
                    to: target,
                });
            }
        }

        ReachabilityGraph {
            markings,
            edges,
            complete,
            frontier,
        }
    }

    /// Number of distinct markings discovered.
    pub fn marking_count(&self) -> usize {
        self.markings.len()
    }

    /// Returns `true` if `marking` was discovered during exploration.
    pub fn contains(&self, marking: &Marking) -> bool {
        self.markings.iter().any(|m| m == marking)
    }

    /// Index of `marking` in the graph, if discovered.
    pub fn index_of(&self, marking: &Marking) -> Option<usize> {
        self.markings.iter().position(|m| m == marking)
    }

    /// Outgoing edges of the marking at `index`.
    pub fn successors(&self, index: usize) -> impl Iterator<Item = &ReachabilityEdge> + '_ {
        self.edges.iter().filter(move |e| e.from == index)
    }

    /// The largest token count observed in any place across all discovered markings.
    pub fn max_tokens_observed(&self) -> u64 {
        self.markings.iter().map(Marking::max_tokens).max().unwrap_or(0)
    }

    /// Indices of markings with no outgoing edge (dead markings). Only meaningful when the
    /// graph is [`complete`](Self::complete).
    pub fn dead_markings(&self) -> Vec<usize> {
        (0..self.markings.len())
            .filter(|&i| self.successors(i).next().is_none())
            .collect()
    }

    /// Computes, for every marking index, whether a marking enabling `transition` is
    /// reachable from it (backward reachability over the graph).
    pub fn can_eventually_fire(&self, net: &PetriNet, transition: TransitionId) -> Vec<bool> {
        let n = self.markings.len();
        let mut can = vec![false; n];
        // Seed: markings that enable the transition directly.
        for (i, m) in self.markings.iter().enumerate() {
            if net.is_enabled(m, transition) {
                can[i] = true;
            }
        }
        // Propagate backwards until a fixpoint: if any successor can, the predecessor can.
        let mut changed = true;
        while changed {
            changed = false;
            for e in &self.edges {
                if can[e.to] && !can[e.from] {
                    can[e.from] = true;
                    changed = true;
                }
            }
        }
        can
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn bounded_cycle() -> PetriNet {
        // p1 -> t1 -> p2 -> t2 -> p1 with one token: two reachable markings.
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn explores_bounded_cycle_completely() {
        let net = bounded_cycle();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        assert!(g.complete);
        assert_eq!(g.marking_count(), 2);
        assert_eq!(g.edges.len(), 2);
        assert!(g.dead_markings().is_empty());
        assert_eq!(g.max_tokens_observed(), 1);
        assert!(g.contains(net.initial_marking()));
        assert_eq!(g.index_of(net.initial_marking()), Some(0));
    }

    #[test]
    fn respects_marking_budget() {
        let net = bounded_cycle();
        let g = ReachabilityGraph::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1,
                max_tokens_per_place: 64,
            },
        );
        assert!(!g.complete);
        assert_eq!(g.marking_count(), 1);
    }

    #[test]
    fn source_transition_nets_hit_token_cutoff() {
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        let g = ReachabilityGraph::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1000,
                max_tokens_per_place: 5,
            },
        );
        assert!(!g.complete);
        assert!(!g.frontier.is_empty());
        assert!(g.max_tokens_observed() >= 5);
    }

    #[test]
    fn dead_marking_detected() {
        // t1 -> p -> t2, single shot: firing t1 then t2 leads to a dead empty marking
        // only if t1 cannot re-fire; make t1 consume from a one-token place.
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(start, t1, 1).unwrap();
        b.arc_t_p(t1, p, 1).unwrap();
        b.arc_p_t(p, t2, 1).unwrap();
        let net = b.build().unwrap();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        assert!(g.complete);
        assert_eq!(g.dead_markings().len(), 1);
    }

    #[test]
    fn can_eventually_fire_propagates_backwards() {
        let net = bounded_cycle();
        let t2 = net.transition_by_name("t2").unwrap();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        let can = g.can_eventually_fire(&net, t2);
        // From both reachable markings t2 can eventually fire (it is a live cycle).
        assert_eq!(can, vec![true, true]);
    }
}
