//! Explicit-state reachability exploration.
//!
//! Reachability is decidable for Petri nets but expensive in general; the explorer here is
//! a budgeted breadth-first construction of the reachability graph, sufficient for the net
//! sizes handled by a quasi-static scheduler and for validating schedules produced by the
//! `fcpn-qss` crate.
//!
//! Since the introduction of the arena-interned engine
//! ([`StateSpace`](crate::statespace::StateSpace)), [`ReachabilityGraph`] is a thin
//! compatibility view: [`ReachabilityGraph::explore`] delegates to the engine and then
//! materialises owned [`Marking`]s and an edge list for callers that want them. The
//! pre-engine explorer is retained as [`ReachabilityGraph::explore_naive`] — it is the
//! reference implementation the property tests compare the engine against, and the
//! baseline the benchmark suite measures speedups over.

use crate::statespace::{ExploreOptions, SliceTable, StateSpace};
use crate::{Marking, PetriNet, TransitionId};
use std::collections::{HashMap, VecDeque};

/// Budget and cut-offs for state-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityOptions {
    /// Maximum number of distinct markings to explore before declaring the result
    /// incomplete.
    pub max_markings: usize,
    /// Markings with any place above this bound are not expanded (they are recorded as
    /// frontier states). This keeps nets with source transitions explorable.
    pub max_tokens_per_place: u64,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_markings: 100_000,
            max_tokens_per_place: 64,
        }
    }
}

/// An edge of the reachability graph: firing `transition` in marking `from` yields `to`
/// (indices into [`ReachabilityGraph::markings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityEdge {
    /// Index of the source marking.
    pub from: usize,
    /// Transition fired.
    pub transition: TransitionId,
    /// Index of the target marking.
    pub to: usize,
}

/// The (possibly truncated) reachability graph of a marked net.
///
/// Edges are stored sorted by source marking (the construction is breadth-first, so they
/// come out in that order), which lets [`successors`](ReachabilityGraph::successors)
/// binary-search its row instead of scanning the whole edge list.
///
/// The public fields are kept for compatibility with pre-engine code but should be
/// treated as **read-only views**: the accelerated queries rely on construction
/// invariants — `edges` sorted by `from`, and a private hash index over `markings` —
/// that direct mutation would silently invalidate. Build graphs through the `explore*`
/// constructors (or [`ReachabilityGraph::from_statespace`]) only.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    /// All distinct markings discovered; index 0 is the initial marking. Read-only:
    /// [`contains`](ReachabilityGraph::contains) / [`index_of`](ReachabilityGraph::index_of)
    /// answer from a hash index built at construction time.
    pub markings: Vec<Marking>,
    /// Firing edges between discovered markings, sorted by `from`. Read-only:
    /// [`successors`](ReachabilityGraph::successors) binary-searches on that order.
    pub edges: Vec<ReachabilityEdge>,
    /// `true` if the whole reachable state space was enumerated within the budget and
    /// token cut-off (no marking was left unexpanded).
    pub complete: bool,
    /// Indices of markings that were discovered but not expanded because of the cut-offs.
    pub frontier: Vec<usize>,
    /// Hash-of-slice lookup backing [`contains`](ReachabilityGraph::contains) /
    /// [`index_of`](ReachabilityGraph::index_of) in O(1).
    index: SliceTable,
}

impl PartialEq for ReachabilityGraph {
    fn eq(&self, other: &Self) -> bool {
        // The lookup table is derived data; two graphs are equal iff their observable
        // parts are.
        self.markings == other.markings
            && self.edges == other.edges
            && self.complete == other.complete
            && self.frontier == other.frontier
    }
}

impl Eq for ReachabilityGraph {}

impl ReachabilityGraph {
    /// Explores the state space of `net` from its initial marking using the
    /// arena-interned engine.
    pub fn explore(net: &PetriNet, options: ReachabilityOptions) -> Self {
        Self::from_statespace(StateSpace::explore(net, options))
    }

    /// Explores the state space of `net` from an arbitrary marking using the
    /// arena-interned engine.
    pub fn explore_from(net: &PetriNet, initial: Marking, options: ReachabilityOptions) -> Self {
        Self::from_statespace(StateSpace::explore_from(net, initial, options))
    }

    /// [`ReachabilityGraph::explore`] with explicit engine configuration — thread count
    /// and token-arena width ([`ExploreOptions`]). The resulting graph is canonical:
    /// identical to the sequential default for every configuration.
    pub fn explore_with(net: &PetriNet, options: &ExploreOptions) -> Self {
        Self::from_statespace(StateSpace::explore_with(net, options))
    }

    /// Converts an explored [`StateSpace`] into the owned-marking view.
    pub fn from_statespace(space: StateSpace) -> Self {
        let parts = space.into_parts();
        let states = parts.fwd_offsets.len() - 1;
        let markings: Vec<Marking> = (0..states)
            .map(|s| {
                Marking::from_vec(parts.arena[s * parts.places..(s + 1) * parts.places].to_vec())
            })
            .collect();
        let mut edges = Vec::with_capacity(parts.edge_to.len());
        for from in 0..states {
            let (start, end) = (
                parts.fwd_offsets[from] as usize,
                parts.fwd_offsets[from + 1] as usize,
            );
            for e in start..end {
                edges.push(ReachabilityEdge {
                    from,
                    transition: TransitionId::new(parts.edge_transition[e] as usize),
                    to: parts.edge_to[e] as usize,
                });
            }
        }
        ReachabilityGraph {
            markings,
            edges,
            complete: parts.complete,
            frontier: parts.frontier.into_iter().map(|s| s as usize).collect(),
            index: parts.table,
        }
    }

    /// The pre-engine breadth-first explorer: clones a [`Marking`] per expansion and
    /// interns through a `HashMap<Marking, usize>`.
    ///
    /// Retained as the reference implementation — `tests/properties.rs` asserts the
    /// engine discovers identical markings, edges and frontiers, and the
    /// `statespace` benchmark measures the engine's speedup against it. Prefer
    /// [`ReachabilityGraph::explore`] everywhere else.
    pub fn explore_naive(net: &PetriNet, options: ReachabilityOptions) -> Self {
        Self::explore_naive_from(net, net.initial_marking().clone(), options)
    }

    /// [`ReachabilityGraph::explore_naive`] from an arbitrary marking.
    pub fn explore_naive_from(
        net: &PetriNet,
        initial: Marking,
        options: ReachabilityOptions,
    ) -> Self {
        let mut markings = Vec::new();
        let mut edges = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut frontier = Vec::new();
        let mut queue = VecDeque::new();
        let mut complete = true;

        index.insert(initial.clone(), 0);
        markings.push(initial);
        queue.push_back(0usize);

        while let Some(current) = queue.pop_front() {
            let marking = markings[current].clone();
            if marking.max_tokens() > options.max_tokens_per_place {
                frontier.push(current);
                complete = false;
                continue;
            }
            for t in net.transitions() {
                if !net.is_enabled(&marking, t) {
                    continue;
                }
                let mut next = marking.clone();
                if net.fire(&mut next, t).is_err() {
                    continue;
                }
                let target = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if markings.len() >= options.max_markings {
                            complete = false;
                            continue;
                        }
                        let i = markings.len();
                        index.insert(next.clone(), i);
                        markings.push(next);
                        queue.push_back(i);
                        i
                    }
                };
                edges.push(ReachabilityEdge {
                    from: current,
                    transition: t,
                    to: target,
                });
            }
        }

        let index = SliceTable::index_markings(&markings);
        ReachabilityGraph {
            markings,
            edges,
            complete,
            frontier,
            index,
        }
    }

    /// Number of distinct markings discovered.
    pub fn marking_count(&self) -> usize {
        self.markings.len()
    }

    /// Returns `true` if `marking` was discovered during exploration — O(1) via the
    /// interner's hash lookup.
    pub fn contains(&self, marking: &Marking) -> bool {
        self.index_of(marking).is_some()
    }

    /// Index of `marking` in the graph, if discovered — O(1) via the interner's hash
    /// lookup.
    pub fn index_of(&self, marking: &Marking) -> Option<usize> {
        if self
            .markings
            .first()
            .is_some_and(|m| m.len() != marking.len())
        {
            return None;
        }
        self.index
            .find(marking.as_slice(), |id| {
                self.markings[id as usize].as_slice()
            })
            .map(|id| id as usize)
    }

    /// Outgoing edges of the marking at `index` — O(log E + out-degree) thanks to the
    /// sorted edge list.
    pub fn successors(&self, index: usize) -> impl Iterator<Item = &ReachabilityEdge> + '_ {
        let start = self.edges.partition_point(|e| e.from < index);
        self.edges[start..]
            .iter()
            .take_while(move |e| e.from == index)
    }

    /// The largest token count observed in any place across all discovered markings.
    pub fn max_tokens_observed(&self) -> u64 {
        self.markings
            .iter()
            .map(Marking::max_tokens)
            .max()
            .unwrap_or(0)
    }

    /// Indices of markings with no outgoing edge (dead markings), via one O(V + E)
    /// out-degree pass. Only meaningful when the graph is
    /// [`complete`](Self::complete).
    pub fn dead_markings(&self) -> Vec<usize> {
        let mut has_out = vec![false; self.markings.len()];
        for e in &self.edges {
            has_out[e.from] = true;
        }
        has_out
            .into_iter()
            .enumerate()
            .filter(|&(_, out)| !out)
            .map(|(i, _)| i)
            .collect()
    }

    /// Computes, for every marking index, whether a marking enabling `transition` is
    /// reachable from it — one seed scan plus one backward traversal over a reverse
    /// adjacency built on the fly: O(V + E) instead of the former O(V·E) fixpoint.
    pub fn can_eventually_fire(&self, net: &PetriNet, transition: TransitionId) -> Vec<bool> {
        let n = self.markings.len();
        // Reverse CSR by counting sort.
        let mut offsets = vec![0u32; n + 1];
        for e in &self.edges {
            offsets[e.to + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut preds = vec![0u32; self.edges.len()];
        let mut fill = offsets.clone();
        for e in &self.edges {
            preds[fill[e.to] as usize] = e.from as u32;
            fill[e.to] += 1;
        }

        let mut can = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (i, m) in self.markings.iter().enumerate() {
            if net.is_enabled(m, transition) {
                can[i] = true;
                stack.push(i);
            }
        }
        while let Some(s) = stack.pop() {
            for &p in &preds[offsets[s] as usize..offsets[s + 1] as usize] {
                if !can[p as usize] {
                    can[p as usize] = true;
                    stack.push(p as usize);
                }
            }
        }
        can
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn bounded_cycle() -> PetriNet {
        // p1 -> t1 -> p2 -> t2 -> p1 with one token: two reachable markings.
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn explores_bounded_cycle_completely() {
        let net = bounded_cycle();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        assert!(g.complete);
        assert_eq!(g.marking_count(), 2);
        assert_eq!(g.edges.len(), 2);
        assert!(g.dead_markings().is_empty());
        assert_eq!(g.max_tokens_observed(), 1);
        assert!(g.contains(net.initial_marking()));
        assert_eq!(g.index_of(net.initial_marking()), Some(0));
    }

    #[test]
    fn engine_and_naive_agree_on_cycle() {
        let net = bounded_cycle();
        let engine = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        let naive = ReachabilityGraph::explore_naive(&net, ReachabilityOptions::default());
        assert_eq!(engine, naive);
    }

    #[test]
    fn lookups_reject_foreign_markings() {
        let net = bounded_cycle();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        assert_eq!(g.index_of(&Marking::from_vec(vec![5, 5])), None);
        assert!(!g.contains(&Marking::from_vec(vec![1, 1, 1])));
    }

    #[test]
    fn respects_marking_budget() {
        let net = bounded_cycle();
        let g = ReachabilityGraph::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1,
                max_tokens_per_place: 64,
            },
        );
        assert!(!g.complete);
        assert_eq!(g.marking_count(), 1);
    }

    #[test]
    fn source_transition_nets_hit_token_cutoff() {
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        let g = ReachabilityGraph::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1000,
                max_tokens_per_place: 5,
            },
        );
        assert!(!g.complete);
        assert!(!g.frontier.is_empty());
        assert!(g.max_tokens_observed() >= 5);
    }

    #[test]
    fn dead_marking_detected() {
        // t1 -> p -> t2, single shot: firing t1 then t2 leads to a dead empty marking
        // only if t1 cannot re-fire; make t1 consume from a one-token place.
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(start, t1, 1).unwrap();
        b.arc_t_p(t1, p, 1).unwrap();
        b.arc_p_t(p, t2, 1).unwrap();
        let net = b.build().unwrap();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        assert!(g.complete);
        assert_eq!(g.dead_markings().len(), 1);
    }

    #[test]
    fn can_eventually_fire_propagates_backwards() {
        let net = bounded_cycle();
        let t2 = net.transition_by_name("t2").unwrap();
        let g = ReachabilityGraph::explore(&net, ReachabilityOptions::default());
        let can = g.can_eventually_fire(&net, t2);
        // From both reachable markings t2 can eventually fire (it is a live cycle).
        assert_eq!(can, vec![true, true]);
    }

    #[test]
    fn successors_row_is_exact() {
        let net = crate::gallery::figure5();
        let g = ReachabilityGraph::explore(
            &net,
            ReachabilityOptions {
                max_markings: 2_000,
                max_tokens_per_place: 4,
            },
        );
        for i in 0..g.marking_count() {
            let via_scan: Vec<_> = g.edges.iter().filter(|e| e.from == i).collect();
            let via_row: Vec<_> = g.successors(i).collect();
            assert_eq!(via_scan, via_row);
        }
    }
}
