//! Structural net-class classification: marked graphs, conflict-free nets, free-choice
//! nets (Section 2 of the paper).

use crate::{PetriNet, PlaceId};
use std::fmt;

/// Structural subclasses of Petri nets relevant to quasi-static scheduling.
///
/// The classes form a hierarchy: every marked graph and every state machine is free
/// choice, and every marked graph is conflict free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetClass {
    /// Each place has at most one input and one output transition: pure concurrency and
    /// synchronisation, no conflict (equivalent to an SDF graph).
    MarkedGraph,
    /// Each place has at most one output transition: no conflict, but merges allowed.
    ConflictFree,
    /// Every arc from a place is either the unique outgoing arc of that place or the
    /// unique incoming arc of its target transition: conflict and synchronisation never
    /// interfere.
    FreeChoice,
    /// None of the above.
    General,
}

impl fmt::Display for NetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetClass::MarkedGraph => "marked graph",
            NetClass::ConflictFree => "conflict free",
            NetClass::FreeChoice => "free choice",
            NetClass::General => "general",
        };
        f.write_str(s)
    }
}

/// Detailed classification report for a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// The most specific class the net belongs to.
    pub class: NetClass,
    /// Places that violate the free-choice condition (empty iff the net is free choice).
    pub free_choice_violations: Vec<PlaceId>,
    /// Choice places (more than one output transition).
    pub choice_places: Vec<PlaceId>,
    /// Merge places (more than one input transition).
    pub merge_places: Vec<PlaceId>,
}

impl Classification {
    /// Classifies `net`.
    pub fn of(net: &PetriNet) -> Self {
        let choice_places = net.choice_places();
        let merge_places = net.merge_places();
        let free_choice_violations = free_choice_violations(net);
        let class = if choice_places.is_empty() && merge_places.is_empty() {
            NetClass::MarkedGraph
        } else if choice_places.is_empty() {
            NetClass::ConflictFree
        } else if free_choice_violations.is_empty() {
            NetClass::FreeChoice
        } else {
            NetClass::General
        };
        Classification {
            class,
            free_choice_violations,
            choice_places,
            merge_places,
        }
    }

    /// `true` if the net is a marked graph (every place has at most one producer and one
    /// consumer).
    pub fn is_marked_graph(&self) -> bool {
        self.class == NetClass::MarkedGraph
    }

    /// `true` if the net is conflict free (no place has more than one consumer).
    pub fn is_conflict_free(&self) -> bool {
        matches!(self.class, NetClass::MarkedGraph | NetClass::ConflictFree)
    }

    /// `true` if the net is free choice.
    pub fn is_free_choice(&self) -> bool {
        !matches!(self.class, NetClass::General)
    }
}

/// Places violating the free-choice condition: a place with several output transitions
/// where some successor transition has other input places as well, so that it can be
/// enabled or disabled independently of its conflict peers.
fn free_choice_violations(net: &PetriNet) -> Vec<PlaceId> {
    let mut violations = Vec::new();
    for p in net.places() {
        let consumers = net.consumers(p);
        if consumers.len() <= 1 {
            continue;
        }
        // `p` is a choice: every arc p -> t must be the unique incoming arc of t.
        let violated = consumers.iter().any(|&(t, _)| net.inputs(t).len() != 1);
        if violated {
            violations.push(p);
        }
    }
    violations
}

/// Convenience free functions mirroring [`Classification`] for one-off queries.
impl PetriNet {
    /// Returns `true` if every place of the net has at most one producer and one consumer.
    pub fn is_marked_graph(&self) -> bool {
        Classification::of(self).is_marked_graph()
    }

    /// Returns `true` if no place of the net has more than one consumer.
    pub fn is_conflict_free(&self) -> bool {
        Classification::of(self).is_conflict_free()
    }

    /// Returns `true` if the net satisfies the free-choice condition.
    pub fn is_free_choice(&self) -> bool {
        Classification::of(self).is_free_choice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    /// Figure 1a of the paper: a place with two output transitions, each with a single
    /// input place — a free-choice conflict.
    fn figure1a() -> PetriNet {
        let mut b = NetBuilder::new("figure1a");
        let p = b.place("p", 1);
        let t1 = b.transition("t1");
        let t2 = b.transition("t2");
        b.arc_p_t(p, t1, 1).unwrap();
        b.arc_p_t(p, t2, 1).unwrap();
        b.build().unwrap()
    }

    /// Figure 1b of the paper: t3 shares input place p with t2 but also has a private
    /// input place, so there is a marking enabling t3 but not t2 — not free choice.
    fn figure1b() -> PetriNet {
        let mut b = NetBuilder::new("figure1b");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t1 = b.transition("t1");
        let t2 = b.transition("t2");
        let t3 = b.transition("t3");
        b.arc_p_t(p, t2, 1).unwrap();
        b.arc_p_t(p, t3, 1).unwrap();
        b.arc_p_t(q, t3, 1).unwrap();
        b.arc_t_p(t1, q, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1a_is_free_choice() {
        let net = figure1a();
        let c = Classification::of(&net);
        assert_eq!(c.class, NetClass::FreeChoice);
        assert!(c.is_free_choice());
        assert!(!c.is_conflict_free());
        assert!(c.free_choice_violations.is_empty());
        assert_eq!(c.choice_places.len(), 1);
        assert!(net.is_free_choice());
    }

    #[test]
    fn figure1b_is_not_free_choice() {
        let net = figure1b();
        let c = Classification::of(&net);
        assert_eq!(c.class, NetClass::General);
        assert!(!c.is_free_choice());
        assert_eq!(
            c.free_choice_violations,
            vec![net.place_by_name("p").unwrap()]
        );
        assert!(!net.is_free_choice());
    }

    #[test]
    fn chain_is_marked_graph() {
        let mut b = NetBuilder::new("chain");
        let t1 = b.transition("t1");
        let t2 = b.transition("t2");
        b.channel("p", t1, t2, 0).unwrap();
        let net = b.build().unwrap();
        let c = Classification::of(&net);
        assert_eq!(c.class, NetClass::MarkedGraph);
        assert!(c.is_marked_graph());
        assert!(c.is_conflict_free());
        assert!(c.is_free_choice());
        assert!(net.is_marked_graph());
    }

    #[test]
    fn merge_without_choice_is_conflict_free() {
        let mut b = NetBuilder::new("merge");
        let t1 = b.transition("t1");
        let t2 = b.transition("t2");
        let t3 = b.transition("t3");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        b.arc_t_p(t2, p, 1).unwrap();
        b.arc_p_t(p, t3, 1).unwrap();
        let net = b.build().unwrap();
        let c = Classification::of(&net);
        assert_eq!(c.class, NetClass::ConflictFree);
        assert!(!c.is_marked_graph());
        assert!(c.is_conflict_free());
        assert_eq!(c.merge_places.len(), 1);
        assert!(net.is_conflict_free());
    }

    #[test]
    fn class_display() {
        assert_eq!(NetClass::FreeChoice.to_string(), "free choice");
        assert_eq!(NetClass::MarkedGraph.to_string(), "marked graph");
        assert_eq!(NetClass::ConflictFree.to_string(), "conflict free");
        assert_eq!(NetClass::General.to_string(), "general");
    }
}
