//! The Karp–Miller coverability graph: a finite abstraction of the (possibly infinite)
//! reachability set in which unbounded places are represented by the symbolic value ω.
//!
//! The quasi-static scheduler decides boundedness structurally (through consistency of
//! the T-reductions); the coverability graph is the complementary behavioural tool: it
//! terminates on *every* net, identifies exactly which places can grow without bound, and
//! supports coverability queries ("can a marking with at least k tokens in p be
//! reached?") that are useful when diagnosing a specification the scheduler rejected.

use crate::budget::{Interrupt, MemoryBudget};
use crate::cancel::{CancelGate, CancelToken};
use crate::statespace::SliceTable;
use crate::{Marking, PetriNet, PlaceId, TransitionId};
use std::collections::VecDeque;
use std::fmt;

/// The `u64` code of the symbolic ω value in the interned node encoding.
///
/// A finite count can never legitimately reach this value in practice: token counts that
/// large would have overflowed the token game long before, and the Karp–Miller
/// acceleration turns any strictly growing place into ω well below it. Should a
/// pathological input produce one anyway, [`OmegaMarking::encode_into`] reports the
/// ambiguity and the build double-checks interner hits against the actual nodes.
const OMEGA_CODE: u64 = u64::MAX;

/// A token count that may be the symbolic value ω (arbitrarily many).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tokens {
    /// A concrete number of tokens.
    Finite(u64),
    /// Arbitrarily many tokens (the place is pumpable on this path).
    Omega,
}

impl Tokens {
    /// Returns `true` for the ω value.
    pub fn is_omega(&self) -> bool {
        matches!(self, Tokens::Omega)
    }

    fn at_least(&self, needed: u64) -> bool {
        match self {
            Tokens::Finite(k) => *k >= needed,
            Tokens::Omega => true,
        }
    }

    fn checked_add(&self, delta: u64) -> Tokens {
        match self {
            Tokens::Finite(k) => Tokens::Finite(k + delta),
            Tokens::Omega => Tokens::Omega,
        }
    }

    fn checked_sub(&self, delta: u64) -> Tokens {
        match self {
            Tokens::Finite(k) => Tokens::Finite(k.saturating_sub(delta)),
            Tokens::Omega => Tokens::Omega,
        }
    }
}

impl fmt::Display for Tokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tokens::Finite(k) => write!(f, "{k}"),
            Tokens::Omega => write!(f, "ω"),
        }
    }
}

/// An ω-marking: one [`Tokens`] value per place.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OmegaMarking {
    tokens: Vec<Tokens>,
}

impl OmegaMarking {
    /// Lifts a concrete marking to an ω-marking.
    pub fn from_marking(marking: &Marking) -> Self {
        OmegaMarking {
            tokens: marking
                .as_slice()
                .iter()
                .map(|&k| Tokens::Finite(k))
                .collect(),
        }
    }

    /// The value of `place`.
    pub fn tokens(&self, place: PlaceId) -> Tokens {
        self.tokens[place.index()]
    }

    /// Places carrying the ω value.
    pub fn omega_places(&self) -> Vec<PlaceId> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_omega())
            .map(|(i, _)| PlaceId::new(i))
            .collect()
    }

    /// Component-wise ≥ (with ω above every finite value).
    pub fn covers(&self, other: &OmegaMarking) -> bool {
        self.tokens
            .iter()
            .zip(other.tokens.iter())
            .all(|(a, b)| match (a, b) {
                (Tokens::Omega, _) => true,
                (Tokens::Finite(_), Tokens::Omega) => false,
                (Tokens::Finite(x), Tokens::Finite(y)) => x >= y,
            })
    }

    fn is_enabled(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.inputs(t)
            .iter()
            .all(|&(p, w)| self.tokens[p.index()].at_least(w))
    }

    fn fire(&self, net: &PetriNet, t: TransitionId) -> OmegaMarking {
        let mut next = self.clone();
        for &(p, w) in net.inputs(t) {
            next.tokens[p.index()] = next.tokens[p.index()].checked_sub(w);
        }
        for &(p, w) in net.outputs(t) {
            next.tokens[p.index()] = next.tokens[p.index()].checked_add(w);
        }
        next
    }

    /// Appends the node's `u64` encoding (ω as [`OMEGA_CODE`]) to a flat arena, for the
    /// hash-of-slice interner. Returns `true` when a *finite* count collided with the ω
    /// code, i.e. the encoding is ambiguous and interner hits need re-verification.
    fn encode_into(&self, arena: &mut Vec<u64>) -> bool {
        let mut ambiguous = false;
        arena.extend(self.tokens.iter().map(|t| match t {
            Tokens::Finite(k) => {
                ambiguous |= *k == OMEGA_CODE;
                *k
            }
            Tokens::Omega => OMEGA_CODE,
        }));
        ambiguous
    }

    /// Accelerates `self` with respect to an ancestor it strictly covers: places where it
    /// is strictly larger become ω (the Karp–Miller acceleration).
    fn accelerate(&mut self, ancestor: &OmegaMarking) {
        for (mine, theirs) in self.tokens.iter_mut().zip(ancestor.tokens.iter()) {
            if let (Tokens::Finite(a), Tokens::Finite(b)) = (&mine, theirs) {
                if *a > *b {
                    *mine = Tokens::Omega;
                }
            }
        }
    }
}

impl fmt::Display for OmegaMarking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// An edge of the coverability graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverabilityEdge {
    /// Index of the source node.
    pub from: usize,
    /// Transition fired.
    pub transition: TransitionId,
    /// Index of the target node.
    pub to: usize,
}

/// The Karp–Miller coverability graph of a marked net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverabilityGraph {
    /// Discovered ω-markings; index 0 is the (lifted) initial marking.
    pub nodes: Vec<OmegaMarking>,
    /// Edges between nodes.
    pub edges: Vec<CoverabilityEdge>,
    /// Whether construction stayed within the node budget (it terminates in theory, but a
    /// guard is kept for pathological inputs).
    pub complete: bool,
}

/// Options for coverability-graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverabilityOptions {
    /// Maximum number of nodes to construct.
    pub max_nodes: usize,
}

impl Default for CoverabilityOptions {
    fn default() -> Self {
        CoverabilityOptions { max_nodes: 50_000 }
    }
}

impl CoverabilityGraph {
    /// Builds the coverability graph of `net` from its initial marking.
    ///
    /// Node identity is resolved through the state-space engine's hash-of-slice interner
    /// (ω encoded as a sentinel word): each successor costs one hash and, on a hit, one
    /// slice comparison, instead of the former `nodes.iter().position(..)` scan that made
    /// construction O(V) *per successor* — O(V·E) overall. The discovery order, and hence
    /// the node numbering and edge list, are identical to
    /// [`CoverabilityGraph::build_naive`]'s.
    pub fn build(net: &PetriNet, options: CoverabilityOptions) -> Self {
        Self::try_build(
            net,
            options,
            &CancelToken::never(),
            &MemoryBudget::unlimited(),
        )
        .expect("never-firing guards cannot interrupt")
    }

    /// [`CoverabilityGraph::build`] for callers that arm a [`CancelToken`] or a
    /// [`MemoryBudget`]: the Karp–Miller loop polls the token on the explorers' stride
    /// and charges every admitted node and edge against the budget. Never-firing
    /// guards leave the graph bit-for-bit identical to [`CoverabilityGraph::build`]'s.
    ///
    /// # Errors
    ///
    /// [`Interrupt::Cancelled`] when `cancel` fires, [`Interrupt::Exhausted`] when a
    /// charge against `memory` fails; the partial graph is discarded either way — a
    /// budget violation is an error, never a silently `complete = false` graph.
    pub fn try_build(
        net: &PetriNet,
        options: CoverabilityOptions,
        cancel: &CancelToken,
        memory: &MemoryBudget,
    ) -> Result<Self, Interrupt> {
        let places = net.place_count();
        let mut cancel_gate = CancelGate::new(crate::statespace::CANCEL_STRIDE);
        // Encoded row + ω-marking tokens + amortized interner slot + parent/queue links.
        let node_bytes = (places * 24) as u64 + 40;
        let edge_bytes = 24u64;
        let mut meter = memory.meter();
        meter.charge(node_bytes, "coverability")?;
        let mut nodes = vec![OmegaMarking::from_marking(net.initial_marking())];
        let mut encoded: Vec<u64> = Vec::with_capacity(places * 64);
        // Once any node encodes a *finite* u64::MAX (pathological, but expressible),
        // encodings stop being injective and every interner hit is re-verified against
        // the actual nodes; a mismatch falls back to the exact linear scan.
        let mut ambiguous = nodes[0].encode_into(&mut encoded);
        let mut table = SliceTable::with_capacity(64);
        let mut scratch: Vec<u64> = Vec::with_capacity(places);
        table.insert_unique(crate::statespace::hash_tokens(&encoded[..places]), 0);
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut edges = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::from([0usize]);
        let mut complete = true;

        while let Some(current) = queue.pop_front() {
            for t in net.transitions() {
                cancel_gate.check(cancel)?;
                if !nodes[current].is_enabled(net, t) {
                    continue;
                }
                let mut next = nodes[current].fire(net, t);
                // Accelerate against every ancestor on the path that the successor covers.
                let mut ancestor = Some(current);
                while let Some(a) = ancestor {
                    if next.covers(&nodes[a]) && next != nodes[a] {
                        next.accelerate(&nodes[a]);
                    }
                    ancestor = parents[a];
                }
                scratch.clear();
                ambiguous |= next.encode_into(&mut scratch);
                let found = table
                    .find(&scratch, |id| {
                        let start = id as usize * places;
                        &encoded[start..start + places]
                    })
                    .map(|id| id as usize)
                    .filter(|&id| !ambiguous || nodes[id] == next)
                    .or_else(|| {
                        if ambiguous {
                            nodes.iter().position(|n| n == &next)
                        } else {
                            None
                        }
                    });
                let target = match found {
                    Some(existing) => existing,
                    None => {
                        if nodes.len() >= options.max_nodes {
                            complete = false;
                            continue;
                        }
                        meter.charge(node_bytes, "coverability")?;
                        let id = nodes.len();
                        encoded.extend_from_slice(&scratch);
                        table.insert_unique(crate::statespace::hash_tokens(&scratch), id as u32);
                        nodes.push(next);
                        parents.push(Some(current));
                        queue.push_back(id);
                        id
                    }
                };
                meter.charge(edge_bytes, "coverability")?;
                edges.push(CoverabilityEdge {
                    from: current,
                    transition: t,
                    to: target,
                });
            }
        }
        Ok(CoverabilityGraph {
            nodes,
            edges,
            complete,
        })
    }

    /// The pre-interner construction, retained as the reference implementation: node
    /// identity is resolved by a linear `nodes.iter().position(..)` scan, O(V) per
    /// successor. The `coverability` benchmark measures [`CoverabilityGraph::build`]'s
    /// asymptotic win against it, and the property tests pin their equivalence.
    pub fn build_naive(net: &PetriNet, options: CoverabilityOptions) -> Self {
        let mut nodes = vec![OmegaMarking::from_marking(net.initial_marking())];
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut edges = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::from([0usize]);
        let mut complete = true;

        while let Some(current) = queue.pop_front() {
            for t in net.transitions() {
                if !nodes[current].is_enabled(net, t) {
                    continue;
                }
                let mut next = nodes[current].fire(net, t);
                // Accelerate against every ancestor on the path that the successor covers.
                let mut ancestor = Some(current);
                while let Some(a) = ancestor {
                    if next.covers(&nodes[a]) && next != nodes[a] {
                        let ancestor_marking = nodes[a].clone();
                        next.accelerate(&ancestor_marking);
                    }
                    ancestor = parents[a];
                }
                let target = match nodes.iter().position(|n| n == &next) {
                    Some(existing) => existing,
                    None => {
                        if nodes.len() >= options.max_nodes {
                            complete = false;
                            continue;
                        }
                        nodes.push(next);
                        parents.push(Some(current));
                        queue.push_back(nodes.len() - 1);
                        nodes.len() - 1
                    }
                };
                edges.push(CoverabilityEdge {
                    from: current,
                    transition: t,
                    to: target,
                });
            }
        }
        CoverabilityGraph {
            nodes,
            edges,
            complete,
        }
    }

    /// Places that can accumulate tokens without bound (carry ω in some node).
    pub fn unbounded_places(&self) -> Vec<PlaceId> {
        let mut places: Vec<PlaceId> = self
            .nodes
            .iter()
            .flat_map(OmegaMarking::omega_places)
            .collect();
        places.sort();
        places.dedup();
        places
    }

    /// Returns `true` if every place stays bounded (no ω anywhere).
    pub fn is_bounded(&self) -> bool {
        self.unbounded_places().is_empty()
    }

    /// Coverability query: can a marking with at least `needed` tokens in `place` be
    /// covered?
    pub fn can_cover(&self, place: PlaceId, needed: u64) -> bool {
        self.nodes.iter().any(|n| n.tokens(place).at_least(needed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gallery, NetBuilder};

    #[test]
    fn bounded_cycle_has_no_omega() {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(graph.complete);
        assert!(graph.is_bounded());
        assert_eq!(graph.nodes.len(), 2);
        assert!(graph.can_cover(p1, 1));
        assert!(!graph.can_cover(p1, 2));
    }

    #[test]
    fn source_transition_net_gets_omega() {
        let mut b = NetBuilder::new("source");
        let t = b.transition("src");
        let p = b.place("p", 0);
        b.arc_t_p(t, p, 1).unwrap();
        let net = b.build().unwrap();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(graph.complete);
        assert!(!graph.is_bounded());
        assert_eq!(graph.unbounded_places(), vec![p]);
        // ω covers any demand.
        assert!(graph.can_cover(p, 1_000_000));
        // The graph stays tiny thanks to the acceleration.
        assert!(graph.nodes.len() <= 3);
    }

    #[test]
    fn figure3b_adversarial_branch_is_visible_as_omega() {
        // The full figure 3b net is unbounded when the environment keeps choosing the same
        // branch; the coverability graph sees that as ω on p2 and p3.
        let net = gallery::figure3b();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(graph.complete);
        let p2 = net.place_by_name("p2").unwrap();
        let p3 = net.place_by_name("p3").unwrap();
        let unbounded = graph.unbounded_places();
        assert!(unbounded.contains(&p2));
        assert!(unbounded.contains(&p3));
    }

    #[test]
    fn omega_display_and_covering() {
        let a = OmegaMarking {
            tokens: vec![Tokens::Finite(2), Tokens::Omega],
        };
        let b = OmegaMarking {
            tokens: vec![Tokens::Finite(1), Tokens::Finite(5)],
        };
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(a.to_string(), "(2, ω)");
        assert_eq!(a.omega_places(), vec![PlaceId::new(1)]);
    }

    #[test]
    fn interned_build_matches_naive_reference() {
        let cases: Vec<(&str, crate::PetriNet, CoverabilityOptions)> = vec![
            (
                "figure3b",
                gallery::figure3b(),
                CoverabilityOptions::default(),
            ),
            (
                "figure5",
                gallery::figure5(),
                CoverabilityOptions::default(),
            ),
            (
                "figure7",
                gallery::figure7(),
                CoverabilityOptions::default(),
            ),
            (
                "marked_ring(8,4)",
                gallery::marked_ring(8, 4),
                CoverabilityOptions::default(),
            ),
            (
                "choice_chain(3)",
                gallery::choice_chain(3),
                CoverabilityOptions::default(),
            ),
            (
                "figure5-budget",
                gallery::figure5(),
                CoverabilityOptions { max_nodes: 5 },
            ),
        ];
        for (label, net, options) in cases {
            let interned = CoverabilityGraph::build(&net, options);
            let naive = CoverabilityGraph::build_naive(&net, options);
            assert_eq!(interned, naive, "{label}");
        }
    }

    #[test]
    fn node_budget_marks_incomplete() {
        let net = gallery::figure5();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions { max_nodes: 2 });
        assert!(!graph.complete);
        assert!(graph.nodes.len() <= 2);
    }

    #[test]
    fn armed_but_unreached_guards_are_bit_identical() {
        let net = gallery::figure5();
        let baseline = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        let armed = CoverabilityGraph::try_build(
            &net,
            CoverabilityOptions::default(),
            &crate::CancelToken::new(),
            &crate::MemoryBudget::with_limit(1 << 40),
        )
        .expect("unreached guards never interrupt");
        assert_eq!(armed, baseline);
    }

    #[test]
    fn try_build_observes_cancellation_and_exhaustion() {
        let net = gallery::figure5();
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        assert_eq!(
            CoverabilityGraph::try_build(
                &net,
                CoverabilityOptions::default(),
                &cancel,
                &crate::MemoryBudget::unlimited(),
            ),
            Err(Interrupt::Cancelled)
        );
        // A tiny byte budget fails with the typed error — deterministically, at the
        // same stage, run after run.
        let exhaust = || {
            CoverabilityGraph::try_build(
                &net,
                CoverabilityOptions::default(),
                &CancelToken::never(),
                &crate::MemoryBudget::with_limit(64),
            )
            .expect_err("64 bytes cannot hold the graph")
        };
        let err = exhaust();
        assert!(matches!(err, Interrupt::Exhausted(e) if e.stage == "coverability"));
        assert_eq!(err, exhaust());
    }
}
