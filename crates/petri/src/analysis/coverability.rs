//! The Karp–Miller coverability graph: a finite abstraction of the (possibly infinite)
//! reachability set in which unbounded places are represented by the symbolic value ω.
//!
//! The quasi-static scheduler decides boundedness structurally (through consistency of
//! the T-reductions); the coverability graph is the complementary behavioural tool: it
//! terminates on *every* net, identifies exactly which places can grow without bound, and
//! supports coverability queries ("can a marking with at least k tokens in p be
//! reached?") that are useful when diagnosing a specification the scheduler rejected.

use crate::{Marking, PetriNet, PlaceId, TransitionId};
use std::collections::VecDeque;
use std::fmt;

/// A token count that may be the symbolic value ω (arbitrarily many).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tokens {
    /// A concrete number of tokens.
    Finite(u64),
    /// Arbitrarily many tokens (the place is pumpable on this path).
    Omega,
}

impl Tokens {
    /// Returns `true` for the ω value.
    pub fn is_omega(&self) -> bool {
        matches!(self, Tokens::Omega)
    }

    fn at_least(&self, needed: u64) -> bool {
        match self {
            Tokens::Finite(k) => *k >= needed,
            Tokens::Omega => true,
        }
    }

    fn checked_add(&self, delta: u64) -> Tokens {
        match self {
            Tokens::Finite(k) => Tokens::Finite(k + delta),
            Tokens::Omega => Tokens::Omega,
        }
    }

    fn checked_sub(&self, delta: u64) -> Tokens {
        match self {
            Tokens::Finite(k) => Tokens::Finite(k.saturating_sub(delta)),
            Tokens::Omega => Tokens::Omega,
        }
    }
}

impl fmt::Display for Tokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tokens::Finite(k) => write!(f, "{k}"),
            Tokens::Omega => write!(f, "ω"),
        }
    }
}

/// An ω-marking: one [`Tokens`] value per place.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OmegaMarking {
    tokens: Vec<Tokens>,
}

impl OmegaMarking {
    /// Lifts a concrete marking to an ω-marking.
    pub fn from_marking(marking: &Marking) -> Self {
        OmegaMarking {
            tokens: marking
                .as_slice()
                .iter()
                .map(|&k| Tokens::Finite(k))
                .collect(),
        }
    }

    /// The value of `place`.
    pub fn tokens(&self, place: PlaceId) -> Tokens {
        self.tokens[place.index()]
    }

    /// Places carrying the ω value.
    pub fn omega_places(&self) -> Vec<PlaceId> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_omega())
            .map(|(i, _)| PlaceId::new(i))
            .collect()
    }

    /// Component-wise ≥ (with ω above every finite value).
    pub fn covers(&self, other: &OmegaMarking) -> bool {
        self.tokens
            .iter()
            .zip(other.tokens.iter())
            .all(|(a, b)| match (a, b) {
                (Tokens::Omega, _) => true,
                (Tokens::Finite(_), Tokens::Omega) => false,
                (Tokens::Finite(x), Tokens::Finite(y)) => x >= y,
            })
    }

    fn is_enabled(&self, net: &PetriNet, t: TransitionId) -> bool {
        net.inputs(t)
            .iter()
            .all(|&(p, w)| self.tokens[p.index()].at_least(w))
    }

    fn fire(&self, net: &PetriNet, t: TransitionId) -> OmegaMarking {
        let mut next = self.clone();
        for &(p, w) in net.inputs(t) {
            next.tokens[p.index()] = next.tokens[p.index()].checked_sub(w);
        }
        for &(p, w) in net.outputs(t) {
            next.tokens[p.index()] = next.tokens[p.index()].checked_add(w);
        }
        next
    }

    /// Accelerates `self` with respect to an ancestor it strictly covers: places where it
    /// is strictly larger become ω (the Karp–Miller acceleration).
    fn accelerate(&mut self, ancestor: &OmegaMarking) {
        for (mine, theirs) in self.tokens.iter_mut().zip(ancestor.tokens.iter()) {
            if let (Tokens::Finite(a), Tokens::Finite(b)) = (&mine, theirs) {
                if *a > *b {
                    *mine = Tokens::Omega;
                }
            }
        }
    }
}

impl fmt::Display for OmegaMarking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// An edge of the coverability graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverabilityEdge {
    /// Index of the source node.
    pub from: usize,
    /// Transition fired.
    pub transition: TransitionId,
    /// Index of the target node.
    pub to: usize,
}

/// The Karp–Miller coverability graph of a marked net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverabilityGraph {
    /// Discovered ω-markings; index 0 is the (lifted) initial marking.
    pub nodes: Vec<OmegaMarking>,
    /// Edges between nodes.
    pub edges: Vec<CoverabilityEdge>,
    /// Whether construction stayed within the node budget (it terminates in theory, but a
    /// guard is kept for pathological inputs).
    pub complete: bool,
}

/// Options for coverability-graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverabilityOptions {
    /// Maximum number of nodes to construct.
    pub max_nodes: usize,
}

impl Default for CoverabilityOptions {
    fn default() -> Self {
        CoverabilityOptions { max_nodes: 50_000 }
    }
}

impl CoverabilityGraph {
    /// Builds the coverability graph of `net` from its initial marking.
    pub fn build(net: &PetriNet, options: CoverabilityOptions) -> Self {
        let mut nodes = vec![OmegaMarking::from_marking(net.initial_marking())];
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut edges = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::from([0usize]);
        let mut complete = true;

        while let Some(current) = queue.pop_front() {
            for t in net.transitions() {
                if !nodes[current].is_enabled(net, t) {
                    continue;
                }
                let mut next = nodes[current].fire(net, t);
                // Accelerate against every ancestor on the path that the successor covers.
                let mut ancestor = Some(current);
                while let Some(a) = ancestor {
                    if next.covers(&nodes[a]) && next != nodes[a] {
                        let ancestor_marking = nodes[a].clone();
                        next.accelerate(&ancestor_marking);
                    }
                    ancestor = parents[a];
                }
                let target = match nodes.iter().position(|n| n == &next) {
                    Some(existing) => existing,
                    None => {
                        if nodes.len() >= options.max_nodes {
                            complete = false;
                            continue;
                        }
                        nodes.push(next);
                        parents.push(Some(current));
                        queue.push_back(nodes.len() - 1);
                        nodes.len() - 1
                    }
                };
                edges.push(CoverabilityEdge {
                    from: current,
                    transition: t,
                    to: target,
                });
            }
        }
        CoverabilityGraph {
            nodes,
            edges,
            complete,
        }
    }

    /// Places that can accumulate tokens without bound (carry ω in some node).
    pub fn unbounded_places(&self) -> Vec<PlaceId> {
        let mut places: Vec<PlaceId> = self
            .nodes
            .iter()
            .flat_map(OmegaMarking::omega_places)
            .collect();
        places.sort();
        places.dedup();
        places
    }

    /// Returns `true` if every place stays bounded (no ω anywhere).
    pub fn is_bounded(&self) -> bool {
        self.unbounded_places().is_empty()
    }

    /// Coverability query: can a marking with at least `needed` tokens in `place` be
    /// covered?
    pub fn can_cover(&self, place: PlaceId, needed: u64) -> bool {
        self.nodes.iter().any(|n| n.tokens(place).at_least(needed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gallery, NetBuilder};

    #[test]
    fn bounded_cycle_has_no_omega() {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(graph.complete);
        assert!(graph.is_bounded());
        assert_eq!(graph.nodes.len(), 2);
        assert!(graph.can_cover(p1, 1));
        assert!(!graph.can_cover(p1, 2));
    }

    #[test]
    fn source_transition_net_gets_omega() {
        let mut b = NetBuilder::new("source");
        let t = b.transition("src");
        let p = b.place("p", 0);
        b.arc_t_p(t, p, 1).unwrap();
        let net = b.build().unwrap();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(graph.complete);
        assert!(!graph.is_bounded());
        assert_eq!(graph.unbounded_places(), vec![p]);
        // ω covers any demand.
        assert!(graph.can_cover(p, 1_000_000));
        // The graph stays tiny thanks to the acceleration.
        assert!(graph.nodes.len() <= 3);
    }

    #[test]
    fn figure3b_adversarial_branch_is_visible_as_omega() {
        // The full figure 3b net is unbounded when the environment keeps choosing the same
        // branch; the coverability graph sees that as ω on p2 and p3.
        let net = gallery::figure3b();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions::default());
        assert!(graph.complete);
        let p2 = net.place_by_name("p2").unwrap();
        let p3 = net.place_by_name("p3").unwrap();
        let unbounded = graph.unbounded_places();
        assert!(unbounded.contains(&p2));
        assert!(unbounded.contains(&p3));
    }

    #[test]
    fn omega_display_and_covering() {
        let a = OmegaMarking {
            tokens: vec![Tokens::Finite(2), Tokens::Omega],
        };
        let b = OmegaMarking {
            tokens: vec![Tokens::Finite(1), Tokens::Finite(5)],
        };
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(a.to_string(), "(2, ω)");
        assert_eq!(a.omega_places(), vec![PlaceId::new(1)]);
    }

    #[test]
    fn node_budget_marks_incomplete() {
        let net = gallery::figure5();
        let graph = CoverabilityGraph::build(&net, CoverabilityOptions { max_nodes: 2 });
        assert!(!graph.complete);
        assert!(graph.nodes.len() <= 2);
    }
}
