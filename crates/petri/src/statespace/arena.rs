//! Token storage: the [`TokenWord`] abstraction over narrow arena words and the
//! [`MarkingArena`] used by analyses that need interned markings without the full graph.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::statespace::MarkingArena;
//!
//! let mut arena = MarkingArena::new(3);
//! let (id, fresh) = arena.intern(&[1, 0, 2]);
//! assert!(fresh);
//! assert_eq!(arena.intern(&[1, 0, 2]), (id, false)); // deduplicated
//! assert_eq!(arena.state(id), &[1, 0, 2]);
//! assert_eq!(arena.find(&[9, 9, 9]), None);
//! ```

use super::interner::{Probe, SliceTable};
use super::{hash_tokens, StateId};

/// A machine word the token arena can be monomorphised over.
///
/// The engine picks the narrowest width whose range provably covers every token count
/// the exploration can store (see
/// [`ExploreOptions::width`](super::ExploreOptions::width)): most gallery nets fit `u8`,
/// which cuts the memory traffic of state copies, probe comparisons and arena appends 8×
/// relative to the `u64` baseline.
///
/// All arithmetic is defined on the token *values*, so every width hashes and compares
/// markings identically; the width is an encoding choice, never a semantic one.
pub trait TokenWord: Copy + Eq + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// Largest token count this width can store.
    const MAX_TOKENS: u64;
    /// Width name used by benchmark schemas and diagnostics (`"u8"`, `"u16"`, `"u64"`).
    const NAME: &'static str;

    /// Converts from a `u64` token count.
    ///
    /// Callers guarantee `value <= MAX_TOKENS`; the conversion truncates otherwise.
    fn from_u64(value: u64) -> Self;

    /// The token count as a `u64`.
    fn to_u64(self) -> u64;

    /// Applies a transition's per-place net effect, mirroring the `u64` engine's checked
    /// semantics: returns `None` when the result would exceed [`TokenWord::MAX_TOKENS`]
    /// (the engine then drops the edge exactly like the safe path's `TokenOverflow`).
    ///
    /// Negative deltas never underflow for enabled transitions — `|delta|` is at most the
    /// pre-arc weight, which enabledness guarantees is covered.
    fn apply_delta(self, delta: i64) -> Option<Self>;

    /// The wrapping inverse of [`TokenWord::apply_delta`], used to revert a partially
    /// applied delta row after an overflow or to restore the scratch state after probing.
    fn unapply_delta(self, delta: i64) -> Self;
}

macro_rules! narrow_token_word {
    ($ty:ty, $name:literal) => {
        impl TokenWord for $ty {
            const MAX_TOKENS: u64 = <$ty>::MAX as u64;
            const NAME: &'static str = $name;

            #[inline]
            fn from_u64(value: u64) -> Self {
                value as $ty
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }

            #[inline]
            fn apply_delta(self, delta: i64) -> Option<Self> {
                if delta >= 0 {
                    // `self + delta` cannot overflow u64 (self ≤ MAX_TOKENS, delta ≤ i64::MAX).
                    let v = self as u64 + delta as u64;
                    if v <= Self::MAX_TOKENS {
                        Some(v as $ty)
                    } else {
                        None
                    }
                } else {
                    Some(((self as u64) - delta.unsigned_abs()) as $ty)
                }
            }

            #[inline]
            fn unapply_delta(self, delta: i64) -> Self {
                (self as u64).wrapping_sub(delta as u64) as $ty
            }
        }
    };
}

narrow_token_word!(u8, "u8");
narrow_token_word!(u16, "u16");

impl TokenWord for u64 {
    const MAX_TOKENS: u64 = u64::MAX;
    const NAME: &'static str = "u64";

    #[inline]
    fn from_u64(value: u64) -> Self {
        value
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self
    }

    #[inline]
    fn apply_delta(self, delta: i64) -> Option<Self> {
        if delta >= 0 {
            self.checked_add(delta as u64)
        } else {
            Some(self - delta.unsigned_abs())
        }
    }

    #[inline]
    fn unapply_delta(self, delta: i64) -> Self {
        self.wrapping_sub(delta as u64)
    }
}

/// Widens a whole arena to the `u64` representation the public query API serves.
/// The `u64` instantiation is the identity and moves the vector without copying.
pub(crate) fn widen_arena<W: TokenWord>(tokens: Vec<W>) -> Vec<u64> {
    // Specialisation by value: for W = u64 the iterator maps through `to_u64` which the
    // optimiser collapses to a no-op copy; the narrow widths genuinely convert.
    tokens.into_iter().map(TokenWord::to_u64).collect()
}

/// A growable arena of equal-length token vectors addressed by [`StateId`].
///
/// Used directly by analyses that need interned marking storage without the full graph
/// (e.g. the boundedness search), and internally by [`StateSpace`](super::StateSpace).
#[derive(Debug, Clone)]
pub struct MarkingArena {
    places: usize,
    tokens: Vec<u64>,
    table: SliceTable,
}

impl MarkingArena {
    /// Creates an empty arena for markings over `places` places.
    pub fn new(places: usize) -> Self {
        MarkingArena {
            places,
            tokens: Vec::with_capacity(places * 64),
            table: SliceTable::with_capacity(64),
        }
    }

    /// Number of interned markings.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if no marking has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The token slice of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`MarkingArena::intern`].
    #[inline]
    pub fn state(&self, id: StateId) -> &[u64] {
        let start = id as usize * self.places;
        &self.tokens[start..start + self.places]
    }

    /// Interns `tokens`, returning the state id and whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` does not have one entry per place.
    pub fn intern(&mut self, tokens: &[u64]) -> (StateId, bool) {
        assert_eq!(tokens.len(), self.places, "marking length mismatch");
        if self.table.needs_growth() {
            self.table.grow();
        }
        let hash = hash_tokens(tokens);
        let places = self.places;
        let arena = &self.tokens;
        match self.table.probe(hash, tokens, |id| {
            let start = id as usize * places;
            &arena[start..start + places]
        }) {
            Probe::Found(id) => (id, false),
            Probe::Vacant(slot) => {
                let id = self.len() as StateId;
                self.tokens.extend_from_slice(tokens);
                self.table.insert_at(slot, hash, id);
                (id, true)
            }
        }
    }

    /// Looks `tokens` up without inserting.
    pub fn find(&self, tokens: &[u64]) -> Option<StateId> {
        if tokens.len() != self.places {
            return None;
        }
        self.table.find(tokens, |id| {
            let start = id as usize * self.places;
            &self.tokens[start..start + self.places]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_arena_interns_and_finds() {
        let mut arena = MarkingArena::new(3);
        assert!(arena.is_empty());
        let (a, new_a) = arena.intern(&[1, 0, 2]);
        let (b, new_b) = arena.intern(&[0, 0, 0]);
        let (a2, new_a2) = arena.intern(&[1, 0, 2]);
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.state(a), &[1, 0, 2]);
        assert_eq!(arena.find(&[0, 0, 0]), Some(b));
        assert_eq!(arena.find(&[9, 9, 9]), None);
        assert_eq!(arena.find(&[1, 0]), None);
    }

    #[test]
    fn interner_survives_growth() {
        let mut arena = MarkingArena::new(2);
        for i in 0..500u64 {
            arena.intern(&[i, i % 7]);
        }
        assert_eq!(arena.len(), 500);
        for i in 0..500u64 {
            let id = arena
                .find(&[i, i % 7])
                .expect("interned marking is findable");
            assert_eq!(arena.state(id), &[i, i % 7]);
        }
    }

    #[test]
    fn token_words_round_trip_and_check_overflow() {
        assert_eq!(u8::from_u64(200).to_u64(), 200);
        assert_eq!(u8::MAX_TOKENS, 255);
        assert_eq!(100u8.apply_delta(55), Some(155u8));
        assert_eq!(200u8.apply_delta(56), None);
        assert_eq!(100u8.apply_delta(-100), Some(0u8));
        assert_eq!(155u8.unapply_delta(55), 100u8);
        assert_eq!(u16::MAX_TOKENS, 65_535);
        assert_eq!(u64::MAX.apply_delta(1), None);
        assert_eq!(5u64.apply_delta(-3), Some(2));
        assert_eq!(2u64.unapply_delta(-3), 5);
    }
}
