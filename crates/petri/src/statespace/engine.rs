//! The sequential explorer, adaptive width selection and the [`StateSpace`] graph.
//!
//! # Example
//!
//! Exploring with explicit engine knobs — here forcing the full-width arena — produces
//! the same canonical graph as the adaptive default:
//!
//! ```
//! use fcpn_petri::analysis::ReachabilityOptions;
//! use fcpn_petri::gallery;
//! use fcpn_petri::statespace::{ExploreOptions, StateSpace, TokenWidth};
//!
//! let net = gallery::marked_ring(5, 2);
//! let auto = StateSpace::explore(&net, ReachabilityOptions::default());
//! let wide = StateSpace::explore_with(
//!     &net,
//!     &ExploreOptions {
//!         width: TokenWidth::U64,
//!         ..ExploreOptions::default()
//!     },
//! );
//! assert_eq!(auto.token_width(), TokenWidth::U8); // narrow arena chosen automatically
//! assert_eq!(auto.state_count(), wide.state_count());
//! assert_eq!(auto.edge_count(), wide.edge_count());
//! ```

use super::arena::{widen_arena, TokenWord};
use super::interner::{Probe, SliceTable};
use super::{mix, parallel, place_key, raw_hash, StateId};
use crate::analysis::ReachabilityOptions;
use crate::budget::{Interrupt, MemoryBudget};
use crate::cancel::{CancelGate, CancelToken};
use crate::{Marking, PetriNet, TransitionId};

/// How many expanded states each explorer processes between cancellation polls.
///
/// Expanding one state costs at least a few hundred nanoseconds, so a stride of 256
/// bounds the polling overhead well below 1% while keeping the cancellation latency
/// in the tens of microseconds — far inside the service-level 50 ms bound.
pub(crate) const CANCEL_STRIDE: u64 = 256;

/// Canonical byte cost charged per admitted state: the arena row plus the raw hash
/// plus the (amortized, ~50% load) interner slot.
///
/// The explorers charge this **canonical cost model** — a pure function of the
/// admission sequence — rather than their physical allocations, so the sequential
/// and sharded engines exhaust a [`MemoryBudget`] at exactly the same state with
/// exactly the same error. Physical overshoot (shard-transient states, `Vec` growth
/// slack) is bounded by a small multiple of the admitted bytes and by the
/// `max_markings` clamp.
#[inline]
pub(crate) fn state_cost<W>(places: usize) -> u64 {
    (places * std::mem::size_of::<W>()) as u64 + 8 + 24
}

/// Canonical byte cost charged per admitted CSR edge (`edge_to` + `edge_transition`).
pub(crate) const EDGE_COST: u64 = 8;

/// Stage label of the explorers' budget charges.
pub(crate) const STAGE_REACHABILITY: &str = "reachability";

/// The storage width of the token arena.
///
/// `Auto` (the default) derives the narrowest sound width from the exploration bounds:
/// a stored state is either the initial marking or the successor of a state whose
/// tokens all fit the cut-off, so no stored token can exceed
/// `max(initial_max, max_tokens_per_place + max_positive_delta)`. When that bound fits
/// `u8`/`u16`, the narrow arena cuts the hot loop's memory traffic 4–8×.
///
/// A forced width narrower than the sound bound is silently widened to the narrowest
/// sound width — the engine never trades correctness for bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TokenWidth {
    /// Select the narrowest sound width automatically (the default).
    #[default]
    Auto,
    /// 8-bit tokens (bound ≤ 255).
    U8,
    /// 16-bit tokens (bound ≤ 65 535).
    U16,
    /// Full-width tokens; always sound.
    U64,
}

impl TokenWidth {
    /// The width name as used in benchmark schemas (`"u8"`, `"u16"`, `"u64"`).
    ///
    /// # Panics
    ///
    /// Panics on [`TokenWidth::Auto`], which is a selection policy rather than a width;
    /// resolved spaces ([`StateSpace::token_width`]) never carry it.
    pub fn name(self) -> &'static str {
        match self {
            TokenWidth::Auto => panic!("Auto is not a concrete token width"),
            TokenWidth::U8 => u8::NAME,
            TokenWidth::U16 => u16::NAME,
            TokenWidth::U64 => u64::NAME,
        }
    }

    pub(crate) fn rank(self) -> u8 {
        match self {
            TokenWidth::U8 => 0,
            TokenWidth::U16 => 1,
            TokenWidth::Auto | TokenWidth::U64 => 2,
        }
    }
}

/// Exploration configuration beyond the [`ReachabilityOptions`] budget: thread count and
/// token-arena width. The analysis entry points (`find_deadlock_with`,
/// `check_liveness_with`, …) accept this struct to expose the same knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// State budget and token cut-off (identical semantics to the sequential explorer).
    pub reach: ReachabilityOptions,
    /// Worker threads: `1` explores sequentially, `n > 1` runs the sharded parallel
    /// explorer with `n` workers, `0` uses [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Token-arena width selection.
    pub width: TokenWidth,
    /// Cooperative cancellation: the explorers poll this token every few hundred
    /// expanded states and abandon the exploration with [`Interrupt::Cancelled`] when
    /// it fires. The default ([`CancelToken::never`]) costs nothing and never fires; a
    /// token that never fires leaves the result bit-for-bit identical to the default.
    pub cancel: CancelToken,
    /// Byte budget charged per admitted state and edge (the canonical cost model).
    /// The default ([`MemoryBudget::unlimited`]) costs one branch per growth event and
    /// never exhausts; a budget that is never exhausted leaves the result bit-for-bit
    /// identical to the default.
    pub memory: MemoryBudget,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            reach: ReachabilityOptions::default(),
            threads: 1,
            width: TokenWidth::Auto,
            cancel: CancelToken::never(),
            memory: MemoryBudget::unlimited(),
        }
    }
}

impl From<ReachabilityOptions> for ExploreOptions {
    fn from(reach: ReachabilityOptions) -> Self {
        ExploreOptions {
            reach,
            ..ExploreOptions::default()
        }
    }
}

impl ExploreOptions {
    /// The worker count the exploration will actually use: `threads`, with `0` resolved
    /// through [`std::thread::available_parallelism`].
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Picks the narrowest token width whose range provably covers every token count the
/// exploration can store, then widens to the requested width when that is wider.
fn select_width(net: &PetriNet, initial: &[u64], options: &ExploreOptions) -> TokenWidth {
    let initial_max = initial.iter().copied().max().unwrap_or(0);
    let max_positive_delta = net
        .transitions()
        .flat_map(|t| net.delta_row(t))
        .filter(|&&(_, d)| d > 0)
        .map(|&(_, d)| d as u64)
        .max()
        .unwrap_or(0);
    // A state is stored either as the initial marking or as the successor of an expanded
    // state, whose tokens are all ≤ the cut-off; one firing adds at most
    // `max_positive_delta` to any place.
    let bound = initial_max.max(
        options
            .reach
            .max_tokens_per_place
            .saturating_add(max_positive_delta),
    );
    let minimal = if bound <= u8::MAX_TOKENS {
        TokenWidth::U8
    } else if bound <= u16::MAX_TOKENS {
        TokenWidth::U16
    } else {
        TokenWidth::U64
    };
    match options.width {
        TokenWidth::Auto => minimal,
        forced if forced.rank() >= minimal.rank() => forced,
        _ => minimal,
    }
}

/// Flattened per-net firing tables shared by the sequential explorer, every parallel
/// worker and the firing session: CSR input arcs and delta rows, per-transition constant
/// hash shifts, and the per-place consumer bitmasks driving candidate generation.
#[derive(Debug, Clone)]
pub(crate) struct NetTables {
    pub(crate) places: usize,
    pre_offsets: Vec<u32>,
    pre_rows: Vec<(u32, u64)>,
    delta_offsets: Vec<u32>,
    delta_rows: Vec<(u32, i64)>,
    pub(crate) hash_shift: Vec<u64>,
    mask_words: usize,
    consumer_masks: Vec<u64>,
    source_mask: Vec<u64>,
}

impl NetTables {
    pub(crate) fn build(net: &PetriNet) -> Self {
        let places = net.place_count();
        let transition_count = net.transition_count();
        let mut pre_offsets: Vec<u32> = Vec::with_capacity(transition_count + 1);
        let mut pre_rows: Vec<(u32, u64)> = Vec::new();
        let mut delta_offsets: Vec<u32> = Vec::with_capacity(transition_count + 1);
        let mut delta_rows: Vec<(u32, i64)> = Vec::new();
        let mut hash_shift: Vec<u64> = Vec::with_capacity(transition_count);
        pre_offsets.push(0);
        delta_offsets.push(0);
        for t in net.transitions() {
            for &(p, w) in net.inputs(t) {
                pre_rows.push((p.index() as u32, w));
            }
            pre_offsets.push(pre_rows.len() as u32);
            let mut shift = 0u64;
            for &(p, d) in net.delta_row(t) {
                delta_rows.push((p.index() as u32, d));
                shift = shift.wrapping_add((d as u64).wrapping_mul(place_key(p.index())));
            }
            delta_offsets.push(delta_rows.len() as u32);
            hash_shift.push(shift);
        }

        // Candidate generation: only transitions consuming from a currently marked place
        // (plus the always-enabled source transitions) can be enabled, so each state
        // gathers its candidates by OR-ing the consumer bitmasks of its marked places
        // and walking the set bits — which come out in transition-index order for free,
        // keeping the edge order identical to the naive explorer's full scan.
        let mask_words = transition_count.div_ceil(64).max(1);
        let mut consumer_masks: Vec<u64> = vec![0; places * mask_words];
        for p in net.places() {
            for &(t, _) in net.consumers(p) {
                consumer_masks[p.index() * mask_words + t.index() / 64] |= 1 << (t.index() % 64);
            }
        }
        // Source transitions (empty pre-set) are always enabled, so they seed every
        // state's candidate mask.
        let mut source_mask: Vec<u64> = vec![0; mask_words];
        for t in net.source_transitions() {
            source_mask[t.index() / 64] |= 1 << (t.index() % 64);
        }

        NetTables {
            places,
            pre_offsets,
            pre_rows,
            delta_offsets,
            delta_rows,
            hash_shift,
            mask_words,
            consumer_masks,
            source_mask,
        }
    }

    #[inline]
    pub(crate) fn pre(&self, t: usize) -> &[(u32, u64)] {
        &self.pre_rows[self.pre_offsets[t] as usize..self.pre_offsets[t + 1] as usize]
    }

    #[inline]
    pub(crate) fn delta(&self, t: usize) -> &[(u32, i64)] {
        &self.delta_rows[self.delta_offsets[t] as usize..self.delta_offsets[t + 1] as usize]
    }

    pub(crate) fn candidate_buffer(&self) -> Vec<u64> {
        vec![0; self.mask_words]
    }

    /// One fused pass over a state's tokens: gathers the candidate mask from the marked
    /// places' consumer rows and returns the largest token count (for the cut-off check).
    #[inline]
    pub(crate) fn gather_candidates<W: TokenWord>(&self, tokens: &[W], mask: &mut [u64]) -> u64 {
        mask.copy_from_slice(&self.source_mask);
        let mut max_tokens = 0u64;
        for (p, &count) in tokens.iter().enumerate() {
            let count = count.to_u64();
            if count == 0 {
                continue;
            }
            max_tokens = max_tokens.max(count);
            let row = &self.consumer_masks[p * self.mask_words..(p + 1) * self.mask_words];
            for (acc, &bits) in mask.iter_mut().zip(row) {
                *acc |= bits;
            }
        }
        max_tokens
    }

    /// Applies transition `t`'s delta row to `current` in place. Returns `false` — with
    /// `current` restored — when a place would exceed the width's maximum, mirroring the
    /// safe path's `TokenOverflow` edge drop.
    #[inline]
    pub(crate) fn apply_delta_in_place<W: TokenWord>(&self, current: &mut [W], t: usize) -> bool {
        let delta = self.delta(t);
        for (applied, &(p, d)) in delta.iter().enumerate() {
            let slot = &mut current[p as usize];
            match slot.apply_delta(d) {
                Some(v) => *slot = v,
                None => {
                    for &(q, e) in &delta[..applied] {
                        let undo = &mut current[q as usize];
                        *undo = undo.unapply_delta(e);
                    }
                    return false;
                }
            }
        }
        true
    }

    /// Reverts transition `t`'s delta row, restoring the expanded state in `current`.
    #[inline]
    pub(crate) fn revert_delta_in_place<W: TokenWord>(&self, current: &mut [W], t: usize) {
        for &(p, d) in self.delta(t) {
            let slot = &mut current[p as usize];
            *slot = slot.unapply_delta(d);
        }
    }

    /// Enabledness of transition `t` in `current` (input-arc scan only).
    #[inline]
    pub(crate) fn enabled<W: TokenWord>(&self, current: &[W], t: usize) -> bool {
        self.pre(t)
            .iter()
            .all(|&(p, w)| current[p as usize].to_u64() >= w)
    }
}

/// The width-generic output of an exploration, before widening into a [`StateSpace`].
pub(crate) struct RawSpace<W> {
    pub(crate) arena: Vec<W>,
    pub(crate) table: SliceTable,
    pub(crate) fwd_offsets: Vec<u32>,
    pub(crate) edge_to: Vec<u32>,
    pub(crate) edge_transition: Vec<u32>,
    pub(crate) complete: bool,
    pub(crate) frontier: Vec<StateId>,
}

/// The sequential breadth-first explorer, generic over the arena word.
///
/// The hot loop works entirely in place: the current state's tokens sit in one scratch
/// buffer, each enabled transition's precomputed delta row is applied to it, the
/// successor is probed (its hash derived in O(1) from the parent's via the transition's
/// constant hash shift), and the delta is reverted — the only per-state copies are one
/// read from the arena on expansion and one append on insertion.
fn explore_seq<W: TokenWord>(
    tables: &NetTables,
    initial: &[u64],
    options: ReachabilityOptions,
    cancel: &CancelToken,
    memory: &MemoryBudget,
) -> Result<RawSpace<W>, Interrupt> {
    let places = tables.places;
    let mut cancel_gate = CancelGate::new(CANCEL_STRIDE);
    let mut meter = memory.meter();
    let state_bytes = state_cost::<W>(places);
    meter.charge(state_bytes, STAGE_REACHABILITY)?;

    let mut arena: Vec<W> = Vec::with_capacity(places.max(1) * 256);
    arena.extend(initial.iter().map(|&k| W::from_u64(k)));
    let mut raw_hashes: Vec<u64> = Vec::with_capacity(256);
    raw_hashes.push(raw_hash(&arena));
    let mut table = SliceTable::with_capacity(256);
    if let Probe::Vacant(slot) = table.probe(mix(raw_hashes[0]), &arena[..places], |_| &[]) {
        table.insert_at(slot, mix(raw_hashes[0]), 0);
    }

    let mut fwd_offsets: Vec<u32> = Vec::with_capacity(256);
    fwd_offsets.push(0);
    let mut edge_to: Vec<u32> = Vec::new();
    let mut edge_transition: Vec<u32> = Vec::new();
    let mut frontier: Vec<StateId> = Vec::new();
    let mut complete = true;

    let mut current: Vec<W> = vec![W::from_u64(0); places];
    let mut candidate_mask = tables.candidate_buffer();

    // BFS. State ids are assigned in discovery order and the queue is FIFO, so the
    // expansion order *is* the id order — no explicit queue needed, and the edge list
    // comes out sorted by source (CSR rows for free).
    let mut state_count = 1usize;
    let mut cursor = 0usize;
    'states: while cursor < state_count {
        cancel_gate.check(cancel)?;
        let id = cursor;
        cursor += 1;
        current.copy_from_slice(&arena[id * places..(id + 1) * places]);
        let current_hash = raw_hashes[id];

        let max_tokens = tables.gather_candidates(&current, &mut candidate_mask);
        if max_tokens > options.max_tokens_per_place {
            frontier.push(id as StateId);
            complete = false;
            fwd_offsets.push(edge_to.len() as u32);
            continue 'states;
        }

        for (word, &mask_bits) in candidate_mask.iter().enumerate() {
            let mut bits = mask_bits;
            'transitions: while bits != 0 {
                let t = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !tables.enabled(&current, t) {
                    continue 'transitions;
                }
                // Fire in place; on (astronomically unlikely) token overflow, the delta
                // application reverts itself and the edge is dropped, mirroring the safe
                // path's TokenOverflow behaviour.
                if !tables.apply_delta_in_place(&mut current, t) {
                    continue 'transitions;
                }
                let successor_hash = current_hash.wrapping_add(tables.hash_shift[t]);
                let mixed = mix(successor_hash);
                let target = match table.probe(mixed, &current, |s| {
                    let start = s as usize * places;
                    &arena[start..start + places]
                }) {
                    Probe::Found(existing) => Some(existing),
                    Probe::Vacant(slot) => {
                        if state_count >= options.max_markings {
                            complete = false;
                            None
                        } else {
                            // Charge *before* growing so exhaustion never leaves a
                            // half-inserted state behind.
                            meter.charge(state_bytes, STAGE_REACHABILITY)?;
                            let new_id = state_count as StateId;
                            arena.extend_from_slice(&current);
                            raw_hashes.push(successor_hash);
                            table.insert_at(slot, mixed, new_id);
                            // Growing after insertion keeps the load factor below ~50%,
                            // so every probe is guaranteed a vacant slot.
                            if table.needs_growth() {
                                table.grow();
                            }
                            state_count += 1;
                            Some(new_id)
                        }
                    }
                };
                tables.revert_delta_in_place(&mut current, t);
                if let Some(target) = target {
                    meter.charge(EDGE_COST, STAGE_REACHABILITY)?;
                    edge_to.push(target);
                    edge_transition.push(t as u32);
                }
            }
        }
        fwd_offsets.push(edge_to.len() as u32);
    }

    Ok(RawSpace {
        arena,
        table,
        fwd_offsets,
        edge_to,
        edge_transition,
        complete,
        frontier,
    })
}

/// The arena-interned reachability graph of a marked net.
///
/// Construction ([`StateSpace::explore`]) is a breadth-first enumeration with the same
/// budget/cut-off semantics as [`ReachabilityOptions`]; queries run over CSR adjacency.
/// [`StateSpace::explore_with`] additionally exposes the token-width and thread knobs;
/// whatever variant builds the space, the resulting graph is canonical — identical ids,
/// edges and frontier across widths and thread counts.
#[derive(Debug)]
pub struct StateSpace {
    places: usize,
    arena: Vec<u64>,
    table: SliceTable,
    /// CSR row offsets into `edge_to`/`edge_transition`; row `s` holds the out-edges of
    /// state `s` in transition-index order.
    fwd_offsets: Vec<u32>,
    edge_to: Vec<u32>,
    edge_transition: Vec<u32>,
    /// Backward CSR, built lazily on the first predecessor-side query so pure
    /// explorations don't pay for it.
    back: std::sync::OnceLock<BackCsr>,
    complete: bool,
    frontier: Vec<StateId>,
    width: TokenWidth,
}

/// Reverse adjacency in CSR form: incoming edges of each state.
#[derive(Debug, Clone)]
struct BackCsr {
    offsets: Vec<u32>,
    from: Vec<u32>,
    transition: Vec<u32>,
}

impl Clone for StateSpace {
    fn clone(&self) -> Self {
        let back = std::sync::OnceLock::new();
        if let Some(b) = self.back.get() {
            let _ = back.set(b.clone());
        }
        StateSpace {
            places: self.places,
            arena: self.arena.clone(),
            table: self.table.clone(),
            fwd_offsets: self.fwd_offsets.clone(),
            edge_to: self.edge_to.clone(),
            edge_transition: self.edge_transition.clone(),
            back,
            complete: self.complete,
            frontier: self.frontier.clone(),
            width: self.width,
        }
    }
}

impl StateSpace {
    /// Explores the state space of `net` from its initial marking (sequential, automatic
    /// width).
    pub fn explore(net: &PetriNet, options: ReachabilityOptions) -> Self {
        Self::explore_with(net, &ExploreOptions::from(options))
    }

    /// Explores the state space of `net` from an arbitrary marking (sequential,
    /// automatic width).
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not have one entry per place of `net`.
    pub fn explore_from(net: &PetriNet, initial: Marking, options: ReachabilityOptions) -> Self {
        Self::explore_from_with(net, initial, &ExploreOptions::from(options))
    }

    /// Explores with explicit width/thread configuration from the initial marking.
    ///
    /// # Panics
    ///
    /// Panics if `options.cancel` fires or `options.memory` exhausts mid-exploration;
    /// callers that arm either guard must use [`StateSpace::try_explore_with`] to
    /// observe the interruption as an error.
    pub fn explore_with(net: &PetriNet, options: &ExploreOptions) -> Self {
        Self::try_explore_with(net, options)
            .expect("exploration interrupted; use try_explore_with with armed guards")
    }

    /// Explores with explicit width/thread configuration from an arbitrary marking.
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not have one entry per place of `net`, or if
    /// `options.cancel` fires or `options.memory` exhausts mid-exploration (use
    /// [`StateSpace::try_explore_from_with`] for armed guards).
    pub fn explore_from_with(net: &PetriNet, initial: Marking, options: &ExploreOptions) -> Self {
        Self::try_explore_from_with(net, initial, options)
            .expect("exploration interrupted; use try_explore_from_with with armed guards")
    }

    /// Fallible exploration from the initial marking.
    ///
    /// # Errors
    ///
    /// [`Interrupt::Cancelled`] when `options.cancel` fires before the exploration
    /// completes, [`Interrupt::Exhausted`] when a charge against `options.memory`
    /// fails; either way the partially built space is discarded — a budget violation
    /// is an error, never a silently truncated space.
    pub fn try_explore_with(net: &PetriNet, options: &ExploreOptions) -> Result<Self, Interrupt> {
        Self::try_explore_from_with(net, net.initial_marking().clone(), options)
    }

    /// Fallible exploration from an arbitrary marking.
    ///
    /// # Errors
    ///
    /// [`Interrupt::Cancelled`] when `options.cancel` fires before the exploration
    /// completes, [`Interrupt::Exhausted`] when a charge against `options.memory`
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not have one entry per place of `net`.
    pub fn try_explore_from_with(
        net: &PetriNet,
        initial: Marking,
        options: &ExploreOptions,
    ) -> Result<Self, Interrupt> {
        assert_eq!(initial.len(), net.place_count(), "marking length mismatch");
        let width = select_width(net, initial.as_slice(), options);
        let threads = options.resolved_threads();
        let tables = NetTables::build(net);
        match width {
            TokenWidth::U8 => Self::run::<u8>(&tables, initial.as_slice(), options, threads, width),
            TokenWidth::U16 => {
                Self::run::<u16>(&tables, initial.as_slice(), options, threads, width)
            }
            TokenWidth::Auto | TokenWidth::U64 => {
                Self::run::<u64>(&tables, initial.as_slice(), options, threads, width)
            }
        }
    }

    fn run<W: TokenWord>(
        tables: &NetTables,
        initial: &[u64],
        options: &ExploreOptions,
        threads: usize,
        width: TokenWidth,
    ) -> Result<Self, Interrupt> {
        let raw = if threads > 1 {
            parallel::explore_parallel::<W>(
                tables,
                initial,
                options.reach,
                threads,
                &options.cancel,
                &options.memory,
            )?
        } else {
            explore_seq::<W>(
                tables,
                initial,
                options.reach,
                &options.cancel,
                &options.memory,
            )?
        };
        // The narrow arena widens to `u64` words for the canonical [`StateSpace`];
        // charge the width delta so a budget covers what the caller actually keeps.
        let widen_extra = (8 - std::mem::size_of::<W>()) as u64 * raw.arena.len() as u64;
        if widen_extra > 0 {
            options.memory.charge(widen_extra, "widen")?;
        }
        Ok(Self::from_raw(raw, tables.places, width))
    }

    pub(crate) fn from_raw<W: TokenWord>(
        raw: RawSpace<W>,
        places: usize,
        width: TokenWidth,
    ) -> Self {
        StateSpace {
            places,
            arena: widen_arena(raw.arena),
            table: raw.table,
            fwd_offsets: raw.fwd_offsets,
            edge_to: raw.edge_to,
            edge_transition: raw.edge_transition,
            back: std::sync::OnceLock::new(),
            complete: raw.complete,
            frontier: raw.frontier,
            width,
        }
    }

    /// The token width the arena was explored with (never [`TokenWidth::Auto`]).
    pub fn token_width(&self) -> TokenWidth {
        self.width
    }

    /// The backward CSR, built by counting sort over the forward edges on first use.
    fn back(&self) -> &BackCsr {
        self.back.get_or_init(|| {
            let state_count = self.state_count();
            let edge_count = self.edge_to.len();
            let mut offsets = vec![0u32; state_count + 1];
            for &to in &self.edge_to {
                offsets[to as usize + 1] += 1;
            }
            for i in 0..state_count {
                offsets[i + 1] += offsets[i];
            }
            let mut from = vec![0u32; edge_count];
            let mut transition = vec![0u32; edge_count];
            let mut fill = offsets.clone();
            for source in 0..state_count {
                let (start, end) = (
                    self.fwd_offsets[source] as usize,
                    self.fwd_offsets[source + 1] as usize,
                );
                for e in start..end {
                    let slot = fill[self.edge_to[e] as usize] as usize;
                    from[slot] = source as u32;
                    transition[slot] = self.edge_transition[e];
                    fill[self.edge_to[e] as usize] += 1;
                }
            }
            BackCsr {
                offsets,
                from,
                transition,
            }
        })
    }

    /// Number of distinct markings discovered.
    pub fn state_count(&self) -> usize {
        self.fwd_offsets.len() - 1
    }

    /// Number of firing edges discovered.
    pub fn edge_count(&self) -> usize {
        self.edge_to.len()
    }

    /// `true` if the whole reachable state space was enumerated within the budget and
    /// token cut-off.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// States that were discovered but not expanded because of the token cut-off.
    pub fn frontier(&self) -> &[StateId] {
        &self.frontier
    }

    /// The token slice of state `id` — a view into the arena, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn tokens(&self, id: StateId) -> &[u64] {
        let start = id as usize * self.places;
        &self.arena[start..start + self.places]
    }

    /// The marking of state `id` as an owned [`Marking`].
    pub fn marking(&self, id: StateId) -> Marking {
        Marking::from_vec(self.tokens(id).to_vec())
    }

    /// Iterates over all discovered markings as token slices, in id order.
    pub fn states(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.state_count()).map(|s| self.tokens(s as StateId))
    }

    /// O(1) membership test through the interner.
    pub fn contains(&self, marking: &Marking) -> bool {
        self.index_of(marking).is_some()
    }

    /// O(1) id lookup through the interner.
    pub fn index_of(&self, marking: &Marking) -> Option<StateId> {
        self.index_of_tokens(marking.as_slice())
    }

    /// O(1) id lookup of a raw token slice.
    pub fn index_of_tokens(&self, tokens: &[u64]) -> Option<StateId> {
        if tokens.len() != self.places {
            return None;
        }
        self.table.find(tokens, |id| {
            let start = id as usize * self.places;
            &self.arena[start..start + self.places]
        })
    }

    /// Outgoing edges of `state` as `(transition, successor)` pairs — O(out-degree).
    pub fn successors(&self, state: StateId) -> impl Iterator<Item = (TransitionId, StateId)> + '_ {
        let (start, end) = (
            self.fwd_offsets[state as usize] as usize,
            self.fwd_offsets[state as usize + 1] as usize,
        );
        self.edge_transition[start..end]
            .iter()
            .zip(self.edge_to[start..end].iter())
            .map(|(&t, &to)| (TransitionId::new(t as usize), to))
    }

    /// Incoming edges of `state` as `(transition, predecessor)` pairs — O(in-degree)
    /// (plus a one-off O(V + E) backward-CSR build on the first predecessor query).
    pub fn predecessors(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = (TransitionId, StateId)> + '_ {
        let back = self.back();
        let (start, end) = (
            back.offsets[state as usize] as usize,
            back.offsets[state as usize + 1] as usize,
        );
        back.transition[start..end]
            .iter()
            .zip(back.from[start..end].iter())
            .map(|(&t, &from)| (TransitionId::new(t as usize), from))
    }

    /// All edges in source order as `(from, transition, to)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (StateId, TransitionId, StateId)> + '_ {
        (0..self.state_count()).flat_map(move |s| {
            self.successors(s as StateId)
                .map(move |(t, to)| (s as StateId, t, to))
        })
    }

    /// Out-degree of `state`.
    pub fn out_degree(&self, state: StateId) -> usize {
        (self.fwd_offsets[state as usize + 1] - self.fwd_offsets[state as usize]) as usize
    }

    /// States with no outgoing edge — a single O(V) pass over the CSR row offsets. Only
    /// meaningful when the space is [`complete`](StateSpace::is_complete).
    pub fn dead_states(&self) -> Vec<StateId> {
        (0..self.state_count() as StateId)
            .filter(|&s| self.out_degree(s) == 0)
            .collect()
    }

    /// The largest token count observed in any place across all discovered states.
    pub fn max_tokens_observed(&self) -> u64 {
        self.arena[..self.state_count() * self.places]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// For every state, whether a state enabling `transition` is reachable from it.
    ///
    /// One scan to seed (states enabling the transition) plus one backward BFS over the
    /// CSR reverse adjacency: O(V + E) total, replacing the naive O(V·E) edge-list
    /// fixpoint.
    pub fn can_eventually_fire(&self, net: &PetriNet, transition: TransitionId) -> Vec<bool> {
        let n = self.state_count();
        let mut can = vec![false; n];
        let mut queue: Vec<StateId> = Vec::new();
        for (s, state) in can.iter_mut().enumerate() {
            if net.is_enabled_at(self.tokens(s as StateId), transition) {
                *state = true;
                queue.push(s as StateId);
            }
        }
        while let Some(s) = queue.pop() {
            for (_, pred) in self.predecessors(s) {
                if !can[pred as usize] {
                    can[pred as usize] = true;
                    queue.push(pred);
                }
            }
        }
        can
    }

    /// A shortest firing sequence from the initial state to `target`, reconstructed with
    /// a forward BFS over the CSR adjacency — O(V + E).
    pub fn path_to(&self, target: StateId) -> Vec<TransitionId> {
        let n = self.state_count();
        let mut prev: Vec<Option<(StateId, TransitionId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[0] = true;
        queue.push_back(0 as StateId);
        'bfs: while let Some(current) = queue.pop_front() {
            for (t, to) in self.successors(current) {
                if !visited[to as usize] {
                    visited[to as usize] = true;
                    prev[to as usize] = Some((current, t));
                    if to == target {
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        let mut trace = Vec::new();
        let mut cursor = target;
        while let Some((parent, t)) = prev[cursor as usize] {
            trace.push(t);
            cursor = parent;
        }
        trace.reverse();
        trace
    }

    pub(crate) fn into_parts(self) -> StateSpaceParts {
        StateSpaceParts {
            places: self.places,
            arena: self.arena,
            table: self.table,
            fwd_offsets: self.fwd_offsets,
            edge_to: self.edge_to,
            edge_transition: self.edge_transition,
            complete: self.complete,
            frontier: self.frontier,
        }
    }
}

/// Raw pieces handed to the `ReachabilityGraph` compatibility view.
pub(crate) struct StateSpaceParts {
    pub places: usize,
    pub arena: Vec<u64>,
    pub table: SliceTable,
    pub fwd_offsets: Vec<u32>,
    pub edge_to: Vec<u32>,
    pub edge_transition: Vec<u32>,
    pub complete: bool,
    pub frontier: Vec<StateId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gallery, NetBuilder};

    fn bounded_cycle() -> PetriNet {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn explores_bounded_cycle_completely() {
        let net = bounded_cycle();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert!(space.is_complete());
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.edge_count(), 2);
        assert!(space.dead_states().is_empty());
        assert_eq!(space.max_tokens_observed(), 1);
        assert!(space.contains(net.initial_marking()));
        assert_eq!(space.index_of(net.initial_marking()), Some(0));
        assert_eq!(space.tokens(0), net.initial_marking().as_slice());
        // The default budget (cut-off 64, unit deltas) fits the narrow u8 arena.
        assert_eq!(space.token_width(), TokenWidth::U8);
    }

    #[test]
    fn successors_and_predecessors_are_inverse() {
        let net = gallery::marked_ring(5, 2);
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        for s in 0..space.state_count() as StateId {
            for (t, to) in space.successors(s) {
                assert!(space
                    .predecessors(to)
                    .any(|(bt, from)| bt == t && from == s));
            }
            for (t, from) in space.predecessors(s) {
                assert!(space.successors(from).any(|(ft, to)| ft == t && to == s));
            }
        }
        assert_eq!(
            space.edges().count(),
            space.edge_count(),
            "edges() covers the CSR"
        );
    }

    #[test]
    fn respects_marking_budget() {
        let net = bounded_cycle();
        let space = StateSpace::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1,
                max_tokens_per_place: 64,
            },
        );
        assert!(!space.is_complete());
        assert_eq!(space.state_count(), 1);
    }

    #[test]
    fn token_cutoff_populates_frontier() {
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        let space = StateSpace::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1000,
                max_tokens_per_place: 5,
            },
        );
        assert!(!space.is_complete());
        assert!(!space.frontier().is_empty());
        assert!(space.max_tokens_observed() >= 5);
    }

    #[test]
    fn can_eventually_fire_matches_live_cycle() {
        let net = bounded_cycle();
        let t2 = net.transition_by_name("t2").unwrap();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert_eq!(space.can_eventually_fire(&net, t2), vec![true, true]);
    }

    #[test]
    fn path_to_reaches_dead_state() {
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(start, t1, 1).unwrap();
        b.arc_t_p(t1, p, 1).unwrap();
        b.arc_p_t(p, t2, 1).unwrap();
        let net = b.build().unwrap();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        let dead = space.dead_states();
        assert_eq!(dead.len(), 1);
        let trace = space.path_to(dead[0]);
        assert_eq!(trace, vec![t1, t2]);
    }

    #[test]
    fn empty_net_has_single_state() {
        let net = NetBuilder::new("empty").build().unwrap();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.edge_count(), 0);
        assert!(space.is_complete());
        assert_eq!(space.dead_states(), vec![0]);
    }

    #[test]
    fn width_selection_honours_bounds_and_requests() {
        let net = bounded_cycle();
        let defaults = ExploreOptions::default();
        assert_eq!(
            select_width(&net, net.initial_marking().as_slice(), &defaults),
            TokenWidth::U8
        );
        // A huge cut-off forces the full width even under Auto.
        let wide = ExploreOptions {
            reach: ReachabilityOptions {
                max_markings: 10,
                max_tokens_per_place: u64::MAX / 2,
            },
            ..ExploreOptions::default()
        };
        assert_eq!(
            select_width(&net, net.initial_marking().as_slice(), &wide),
            TokenWidth::U64
        );
        // Forcing a narrower width than the bound allows silently widens.
        let forced_narrow = ExploreOptions {
            width: TokenWidth::U8,
            ..wide
        };
        assert_eq!(
            select_width(&net, net.initial_marking().as_slice(), &forced_narrow),
            TokenWidth::U64
        );
        // A wide initial marking also widens, even with a tiny cut-off.
        let mut b = NetBuilder::new("wide-initial");
        let p = b.place("p", 1_000);
        let t = b.transition("t");
        b.arc_p_t(p, t, 1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(
            select_width(
                &net,
                net.initial_marking().as_slice(),
                &ExploreOptions {
                    reach: ReachabilityOptions {
                        max_markings: 10,
                        max_tokens_per_place: 3,
                    },
                    ..ExploreOptions::default()
                }
            ),
            TokenWidth::U16
        );
    }

    #[test]
    fn forced_widths_explore_identically() {
        let net = gallery::figure5();
        let reach = ReachabilityOptions {
            max_markings: 500,
            max_tokens_per_place: 4,
        };
        let baseline = StateSpace::explore_with(
            &net,
            &ExploreOptions {
                reach,
                threads: 1,
                width: TokenWidth::U64,
                ..ExploreOptions::default()
            },
        );
        for width in [TokenWidth::Auto, TokenWidth::U8, TokenWidth::U16] {
            let space = StateSpace::explore_with(
                &net,
                &ExploreOptions {
                    reach,
                    threads: 1,
                    width,
                    ..ExploreOptions::default()
                },
            );
            assert_eq!(space.state_count(), baseline.state_count());
            assert_eq!(space.edge_count(), baseline.edge_count());
            assert_eq!(space.is_complete(), baseline.is_complete());
            assert_eq!(space.frontier(), baseline.frontier());
            for id in 0..baseline.state_count() as StateId {
                assert_eq!(space.tokens(id), baseline.tokens(id));
            }
        }
    }
}
