//! The open-addressing hash-of-slice interner shared by every arena variant.
//!
//! The table itself is crate-private; its behaviour is observable through every
//! interned surface — e.g. the O(1) membership queries of an explored space:
//!
//! ```
//! use fcpn_petri::analysis::ReachabilityOptions;
//! use fcpn_petri::gallery;
//! use fcpn_petri::statespace::StateSpace;
//!
//! let net = gallery::marked_ring(4, 2);
//! let space = StateSpace::explore(&net, ReachabilityOptions::default());
//! // Interner-backed: one hash + one slice compare, not a scan over all states.
//! assert_eq!(space.index_of(net.initial_marking()), Some(0));
//! assert_eq!(space.index_of_tokens(&[9, 9, 9, 9]), None);
//! ```

use super::arena::TokenWord;
use super::{hash_tokens, StateId, EMPTY_SLOT};
use crate::Marking;

/// Open-addressing interner mapping token slices to state ids.
///
/// Only `(hash, id)` pairs live in the table; the token data itself stays in the owning
/// arena, so growth and probing never touch markings, and equality is checked against the
/// arena slice only on a hash hit. The table is token-width agnostic: probes are generic
/// over [`TokenWord`], and since marking hashes are computed over token *values*, a table
/// built over a `u8` arena and one built over a `u64` arena holding the same markings are
/// identical.
#[derive(Debug, Clone, Default)]
pub(crate) struct SliceTable {
    /// `(hash, id)` per slot, `id == EMPTY_SLOT` marking vacancy. One combined array so
    /// a probe touches a single cache line per slot.
    entries: Vec<(u64, u32)>,
    len: usize,
}

pub(crate) enum Probe {
    Found(StateId),
    Vacant(usize),
}

impl SliceTable {
    pub(crate) fn with_capacity(states: usize) -> Self {
        let capacity = (states * 2).next_power_of_two().max(16);
        SliceTable {
            entries: vec![(0, EMPTY_SLOT); capacity],
            len: 0,
        }
    }

    /// Number of interned states.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Finds `tokens` in the table, or the slot where it belongs.
    ///
    /// `state_of` resolves a stored id to its arena slice for the equality check.
    pub(crate) fn probe<'a, W: TokenWord>(
        &self,
        hash: u64,
        tokens: &[W],
        state_of: impl Fn(StateId) -> &'a [W],
    ) -> Probe {
        let mask = self.entries.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let (stored_hash, id) = self.entries[slot];
            if id == EMPTY_SLOT {
                return Probe::Vacant(slot);
            }
            if stored_hash == hash && state_of(id) == tokens {
                return Probe::Found(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    pub(crate) fn insert_at(&mut self, slot: usize, hash: u64, id: StateId) {
        self.entries[slot] = (hash, id);
        self.len += 1;
    }

    /// Inserts a `(hash, id)` pair known not to be present, skipping the slice
    /// comparison. Used when re-indexing states whose distinctness is already
    /// established (e.g. the canonical renumbering pass of the parallel explorer).
    pub(crate) fn insert_unique(&mut self, hash: u64, id: StateId) {
        if self.needs_growth() {
            self.grow();
        }
        let mask = self.entries.len() - 1;
        let mut slot = (hash as usize) & mask;
        while self.entries[slot].1 != EMPTY_SLOT {
            slot = (slot + 1) & mask;
        }
        self.insert_at(slot, hash, id);
    }

    pub(crate) fn needs_growth(&self) -> bool {
        // Resize at 50% load so probe chains stay short.
        self.len * 2 >= self.entries.len()
    }

    /// Doubles the table; only the stored hashes are needed, never the token data.
    pub(crate) fn grow(&mut self) {
        let capacity = self.entries.len() * 2;
        let mask = capacity - 1;
        let mut entries = vec![(0u64, EMPTY_SLOT); capacity];
        for &(h, id) in &self.entries {
            if id == EMPTY_SLOT {
                continue;
            }
            let mut slot = (h as usize) & mask;
            while entries[slot].1 != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            entries[slot] = (h, id);
        }
        self.entries = entries;
    }

    /// Builds a table over markings already held in a `Vec<Marking>` (used by the
    /// compatibility view and the naive explorer).
    pub(crate) fn index_markings(markings: &[Marking]) -> Self {
        let mut table = SliceTable::with_capacity(markings.len().max(1));
        for (i, m) in markings.iter().enumerate() {
            let hash = hash_tokens(m.as_slice());
            if let Probe::Vacant(slot) =
                table.probe(hash, m.as_slice(), |id| markings[id as usize].as_slice())
            {
                table.insert_at(slot, hash, i as u32);
            }
        }
        table
    }

    /// Looks `tokens` up against externally stored markings.
    pub(crate) fn find<'a, W: TokenWord>(
        &self,
        tokens: &[W],
        state_of: impl Fn(StateId) -> &'a [W],
    ) -> Option<StateId> {
        match self.probe(hash_tokens(tokens), tokens, state_of) {
            Probe::Found(id) => Some(id),
            Probe::Vacant(_) => None,
        }
    }
}
