//! The firing fast path: a long-lived token-game cursor for sequential trace execution.
//!
//! [`StateSpace`](super::StateSpace) answers *exhaustive* questions — every reachable
//! marking, every edge. Simulators ask a different question: starting from one marking,
//! fire *this particular* sequence of transitions (an event cascade, a schedule trace, a
//! random walk) and tell me what is enabled along the way. The seed implementation of
//! that loop cloned an owned [`Marking`](crate::Marking) per run, re-scanned every
//! transition of the net per step (allocating a fresh `Vec` of enabled transitions each
//! time) and re-validated ids and marking lengths on every firing — the exact
//! clone-per-state pattern the exploration engine eliminated.
//!
//! [`FiringSession`] is the session-shaped face of the same machinery:
//!
//! * the current marking lives in one flat token buffer, monomorphised over the same
//!   [`TokenWord`](super::TokenWord) widths the engine uses, with the width picked from
//!   the net's static bound and **widened on demand** when a token actually saturates
//!   (`u8` → `u16` → `u64`), so a session never trades correctness for bandwidth;
//! * firing applies the transition's precomputed delta row in place and maintains the
//!   additive marking hash and the total token count **incrementally** — O(|delta row|)
//!   per firing, no rehash, no full-vector scan;
//! * enabled-set queries walk the candidate bitmask (consumers of marked places plus
//!   always-enabled sources) instead of scanning all transitions, and write into a
//!   caller-owned buffer, so a simulator's cascade loop allocates nothing in steady
//!   state;
//! * [`fire`](FiringSession::fire) / [`undo`](FiringSession::undo) give cheap local
//!   backtracking, and [`checkpoint`](FiringSession::checkpoint) /
//!   [`rollback`](FiringSession::rollback) intern markings into a deduplicating arena
//!   (the engine's hash-of-slice table) for O(places) restores to any saved state.
//!
//! Use `FiringSession` when you execute *one trace at a time* (RTOS simulation, the
//! Table I harness, schedule validation, random testing); use
//! [`StateSpace::explore`](super::StateSpace::explore) when you need the whole graph.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::gallery;
//! use fcpn_petri::statespace::FiringSession;
//!
//! let net = gallery::figure2();
//! let t1 = net.transition_by_name("t1").unwrap();
//! let t2 = net.transition_by_name("t2").unwrap();
//! let mut session = FiringSession::new(&net);
//!
//! let start = session.checkpoint(); // id 0 = the starting marking
//! session.fire(t1).unwrap();
//! session.fire(t1).unwrap();
//! assert!(session.is_enabled(t2));
//! session.fire(t2).unwrap();
//! assert_eq!(session.trace_len(), 3);
//!
//! session.rollback(start); // O(places) restore, undo log cleared
//! assert_eq!(session.marking(), net.initial_marking().clone());
//! ```

use super::arena::TokenWord;
use super::engine::{state_cost, NetTables, TokenWidth};
use super::interner::{Probe, SliceTable};
use super::{mix, raw_hash, StateId};
use crate::budget::{MemoryBudget, ResourceExhausted};
use crate::{Marking, PetriError, PetriNet, PlaceId, Result, TransitionId};

/// Budget stage reported when interning a checkpoint exceeds the session's budget.
const STAGE_CHECKPOINT: &str = "checkpoint";

/// Width-generic session state: the current token buffer plus the checkpoint arena.
#[derive(Debug, Clone)]
struct Inner<W> {
    places: usize,
    /// The current marking's tokens.
    current: Vec<W>,
    /// Additive (unfinalized) hash of `current`, maintained incrementally per firing.
    raw: u64,
    /// Total token count of `current`, maintained incrementally per firing.
    total: u64,
    /// Checkpointed markings, stored contiguously with stride `places`.
    arena: Vec<W>,
    /// Raw hash of each checkpoint, restored verbatim on rollback.
    checkpoint_raw: Vec<u64>,
    /// Total token count of each checkpoint, restored verbatim on rollback.
    checkpoint_total: Vec<u64>,
    /// Deduplicating index over the checkpoint arena.
    table: SliceTable,
    /// Transitions fired since construction or the last rollback, for [`undo`].
    ///
    /// [`undo`]: FiringSession::undo
    log: Vec<u32>,
}

/// What one firing attempt did, before width policy is applied.
enum FireOutcome {
    Fired,
    NotEnabled,
    /// A token would exceed the current width's maximum; the buffer was restored.
    Saturated,
}

impl<W: TokenWord> Inner<W> {
    fn new(initial: &[u64]) -> Self {
        let current: Vec<W> = initial.iter().map(|&k| W::from_u64(k)).collect();
        let raw = raw_hash(&current);
        let total = initial.iter().fold(0u64, |acc, &k| acc.wrapping_add(k));
        let mut inner = Inner {
            places: initial.len(),
            current,
            raw,
            total,
            arena: Vec::new(),
            checkpoint_raw: Vec::new(),
            checkpoint_total: Vec::new(),
            table: SliceTable::with_capacity(16),
            log: Vec::new(),
        };
        // Checkpoint 0 is always the starting marking.
        inner.checkpoint();
        inner
    }

    fn fire(&mut self, tables: &NetTables, token_delta: &[i64], t: usize) -> FireOutcome {
        if !tables.enabled(&self.current, t) {
            return FireOutcome::NotEnabled;
        }
        if !tables.apply_delta_in_place(&mut self.current, t) {
            return FireOutcome::Saturated;
        }
        self.raw = self.raw.wrapping_add(tables.hash_shift[t]);
        self.total = self.total.wrapping_add_signed(token_delta[t]);
        self.log.push(t as u32);
        FireOutcome::Fired
    }

    fn undo(&mut self, tables: &NetTables, token_delta: &[i64]) -> Option<TransitionId> {
        let t = self.log.pop()? as usize;
        tables.revert_delta_in_place(&mut self.current, t);
        self.raw = self.raw.wrapping_sub(tables.hash_shift[t]);
        self.total = self
            .total
            .wrapping_add_signed(token_delta[t].wrapping_neg());
        Some(TransitionId::new(t))
    }

    fn checkpoint(&mut self) -> StateId {
        self.try_checkpoint(&MemoryBudget::unlimited())
            .expect("an unlimited budget cannot be exhausted")
    }

    fn try_checkpoint(
        &mut self,
        memory: &MemoryBudget,
    ) -> std::result::Result<StateId, ResourceExhausted> {
        if self.table.needs_growth() {
            self.table.grow();
        }
        let mixed = mix(self.raw);
        let places = self.places;
        let arena = &self.arena;
        match self.table.probe(mixed, &self.current, |id| {
            let start = id as usize * places;
            &arena[start..start + places]
        }) {
            Probe::Found(id) => Ok(id),
            Probe::Vacant(slot) => {
                // Charge *before* growing so exhaustion never leaves a half-interned
                // checkpoint behind; a re-intern of an already-saved marking (the
                // `Found` arm) is free and stays available after exhaustion.
                memory.charge(state_cost::<W>(places), STAGE_CHECKPOINT)?;
                let id = self.checkpoint_raw.len() as StateId;
                self.arena.extend_from_slice(&self.current);
                self.checkpoint_raw.push(self.raw);
                self.checkpoint_total.push(self.total);
                self.table.insert_at(slot, mixed, id);
                Ok(id)
            }
        }
    }

    fn rollback(&mut self, id: StateId) {
        let start = id as usize * self.places;
        self.current
            .copy_from_slice(&self.arena[start..start + self.places]);
        self.raw = self.checkpoint_raw[id as usize];
        self.total = self.checkpoint_total[id as usize];
        self.log.clear();
    }

    /// Re-encodes the whole session state over a wider word. Hashes, totals, the
    /// interner table and the undo log carry over verbatim — they are all functions of
    /// the token *values*, which widening preserves exactly.
    fn widen<V: TokenWord>(self) -> Inner<V> {
        let convert = |tokens: Vec<W>| -> Vec<V> {
            tokens
                .into_iter()
                .map(|w| V::from_u64(w.to_u64()))
                .collect()
        };
        Inner {
            places: self.places,
            current: convert(self.current),
            raw: self.raw,
            total: self.total,
            arena: convert(self.arena),
            checkpoint_raw: self.checkpoint_raw,
            checkpoint_total: self.checkpoint_total,
            table: self.table,
            log: self.log,
        }
    }
}

/// The session state monomorphised over the active token width.
#[derive(Debug, Clone)]
enum Core {
    U8(Inner<u8>),
    U16(Inner<u16>),
    U64(Inner<u64>),
}

/// Dispatches a read-only body over the active width.
macro_rules! with_core {
    ($core:expr, $inner:ident => $body:expr) => {
        match $core {
            Core::U8($inner) => $body,
            Core::U16($inner) => $body,
            Core::U64($inner) => $body,
        }
    };
}

/// A reusable token-game cursor: the firing fast path for sequential trace execution.
///
/// Where [`StateSpace`](super::StateSpace) answers *exhaustive* questions (every
/// reachable marking), a session executes *one trace at a time* — an event cascade, a
/// schedule, a random walk — the workload shape of the RTOS simulators and the ATM
/// Table I harness. It holds one current marking in a width-adaptive flat buffer and
/// supports:
///
/// * [`fire`](Self::fire) / [`undo`](Self::undo) — delta-row firing with incremental
///   hash and token-total maintenance, and exact single-step reversal;
/// * [`is_enabled`](Self::is_enabled) / [`enabled_into`](Self::enabled_into) —
///   enabled-set queries through the candidate bitmask, allocation-free in steady state;
/// * [`checkpoint`](Self::checkpoint) / [`rollback`](Self::rollback) — interned named
///   states with O(places) restore; checkpoint id 0 is always the starting marking.
///
/// The token width starts at the narrowest word covering the net's static bound
/// (initial marking plus one firing's worth of growth) and widens automatically the
/// moment a firing would saturate it (`u8` → `u16` → `u64`), so the fast path is
/// exactly equivalent to the checked [`PetriNet::fire`] token game — pinned by
/// `tests/firing_session.rs`.
///
/// # Example
///
/// ```
/// use fcpn_petri::gallery;
/// use fcpn_petri::statespace::FiringSession;
///
/// let net = gallery::figure2();
/// let t1 = net.transition_by_name("t1").unwrap();
/// let t2 = net.transition_by_name("t2").unwrap();
/// let mut session = FiringSession::new(&net);
///
/// let start = session.checkpoint(); // id 0 = the starting marking
/// session.fire(t1).unwrap();
/// session.fire(t1).unwrap();
/// assert!(session.is_enabled(t2));
/// session.fire(t2).unwrap();
/// assert_eq!(session.trace_len(), 3);
///
/// session.rollback(start); // O(places) restore, undo log cleared
/// assert_eq!(session.marking(), net.initial_marking().clone());
/// ```
#[derive(Debug, Clone)]
pub struct FiringSession {
    tables: NetTables,
    /// Per-transition total-token effect `Σ delta[p]`, for incremental total tracking.
    token_delta: Vec<i64>,
    transition_count: usize,
    width: TokenWidth,
    core: Core,
    /// Scratch candidate bitmask reused across enabled-set queries.
    mask: Vec<u64>,
    /// Byte budget charged per newly interned checkpoint and per width upgrade.
    memory: MemoryBudget,
}

impl FiringSession {
    /// Opens a session on `net` starting from its initial marking, with automatic width
    /// selection.
    pub fn new(net: &PetriNet) -> Self {
        Self::with_width(net, net.initial_marking(), TokenWidth::Auto)
    }

    /// Opens a session on `net` starting from an arbitrary marking.
    ///
    /// # Panics
    ///
    /// Panics if `marking` does not have one entry per place of `net`.
    pub fn starting_from(net: &PetriNet, marking: &Marking) -> Self {
        Self::with_width(net, marking, TokenWidth::Auto)
    }

    /// Opens a session with an explicit starting width.
    ///
    /// [`TokenWidth::Auto`] (what [`FiringSession::new`] uses) picks the narrowest word
    /// covering `max(initial marking) + max(positive delta)` — the most any single
    /// firing can put in a place before the session's first widening check. A forced
    /// width too narrow for the starting marking itself is silently widened; whatever
    /// width a session starts at, it widens automatically whenever a firing would
    /// saturate a token, so the choice affects memory traffic only, never results.
    ///
    /// # Panics
    ///
    /// Panics if `marking` does not have one entry per place of `net`.
    pub fn with_width(net: &PetriNet, marking: &Marking, width: TokenWidth) -> Self {
        assert_eq!(marking.len(), net.place_count(), "marking length mismatch");
        let tables = NetTables::build(net);
        let token_delta: Vec<i64> = net
            .transitions()
            .map(|t| net.delta_row(t).iter().map(|&(_, d)| d).sum())
            .collect();
        let initial = marking.as_slice();
        let initial_max = initial.iter().copied().max().unwrap_or(0);
        let max_positive_delta = net
            .transitions()
            .flat_map(|t| net.delta_row(t))
            .filter(|&&(_, d)| d > 0)
            .map(|&(_, d)| d as u64)
            .max()
            .unwrap_or(0);
        let narrowest = |bound: u64| {
            if bound <= u8::MAX_TOKENS {
                TokenWidth::U8
            } else if bound <= u16::MAX_TOKENS {
                TokenWidth::U16
            } else {
                TokenWidth::U64
            }
        };
        let resolved = match width {
            TokenWidth::Auto => narrowest(initial_max.saturating_add(max_positive_delta)),
            forced => {
                // The starting marking must be representable; beyond that the forced
                // width stands (saturation widens at run time).
                let required = narrowest(initial_max);
                if forced.rank() >= required.rank() {
                    forced
                } else {
                    required
                }
            }
        };
        let core = match resolved {
            TokenWidth::U8 => Core::U8(Inner::new(initial)),
            TokenWidth::U16 => Core::U16(Inner::new(initial)),
            TokenWidth::Auto | TokenWidth::U64 => Core::U64(Inner::new(initial)),
        };
        let mask = tables.candidate_buffer();
        FiringSession {
            tables,
            token_delta,
            transition_count: net.transition_count(),
            width: resolved,
            core,
            mask,
            memory: MemoryBudget::unlimited(),
        }
    }

    /// Attaches a [`MemoryBudget`] to the session, charging it per newly interned
    /// checkpoint (the engine's canonical per-state cost at the active width) and per
    /// token-width upgrade (the byte growth of the current marking plus the checkpoint
    /// arena).
    ///
    /// The starting marking (checkpoint 0, interned at construction) is never charged.
    /// After a charge fails the session itself stays fully usable: firing, undoing,
    /// rolling back and re-interning already-saved checkpoints are all free; only
    /// operations that would grow memory keep failing while the budget stays exhausted.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// The width of the active token buffer (never [`TokenWidth::Auto`]). Widens over a
    /// session's lifetime as tokens saturate; it never narrows back.
    pub fn token_width(&self) -> TokenWidth {
        self.width
    }

    /// Number of places of the underlying net.
    pub fn place_count(&self) -> usize {
        with_core!(&self.core, inner => inner.places)
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for the net.
    pub fn tokens_of(&self, place: PlaceId) -> u64 {
        with_core!(&self.core, inner => inner.current[place.index()].to_u64())
    }

    /// The current marking as an owned [`Marking`] (one allocation; prefer
    /// [`tokens_of`](Self::tokens_of) and [`total_tokens`](Self::total_tokens) on hot
    /// paths).
    pub fn marking(&self) -> Marking {
        with_core!(&self.core, inner => {
            inner.current.iter().map(|&w| w.to_u64()).collect()
        })
    }

    /// Total tokens across all places, maintained incrementally — O(1).
    pub fn total_tokens(&self) -> u64 {
        with_core!(&self.core, inner => inner.total)
    }

    /// Number of firings since construction or the last
    /// [`rollback`](Self::rollback) — the depth [`undo`](Self::undo) can rewind.
    pub fn trace_len(&self) -> usize {
        with_core!(&self.core, inner => inner.log.len())
    }

    /// Enabledness of `transition` in the current marking (input-arc scan only).
    ///
    /// # Panics
    ///
    /// Panics if `transition` is out of range for the net.
    pub fn is_enabled(&self, transition: TransitionId) -> bool {
        with_core!(&self.core, inner => self.tables.enabled(&inner.current, transition.index()))
    }

    /// Collects the transitions enabled in the current marking into `out` (cleared
    /// first), in transition-index order.
    ///
    /// Only *candidates* — consumers of currently marked places, plus always-enabled
    /// source transitions — are tested, via the same per-place consumer bitmasks the
    /// exploration engine uses; transitions whose every input place is empty are never
    /// touched. Reusing `out` across calls makes a simulator's cascade loop
    /// allocation-free.
    pub fn enabled_into(&mut self, out: &mut Vec<TransitionId>) {
        out.clear();
        self.walk_enabled(|t| {
            out.push(TransitionId::new(t));
            true
        });
    }

    /// The enabled transitions as a fresh vector (allocating convenience over
    /// [`enabled_into`](Self::enabled_into)).
    pub fn enabled_transitions(&mut self) -> Vec<TransitionId> {
        let mut out = Vec::new();
        self.enabled_into(&mut out);
        out
    }

    /// Returns `true` if no transition is enabled in the current marking.
    pub fn is_deadlocked(&mut self) -> bool {
        let mut any_enabled = false;
        self.walk_enabled(|_| {
            any_enabled = true;
            false
        });
        !any_enabled
    }

    /// The one copy of the candidate walk: gathers the consumer bitmask of the marked
    /// places (plus sources), tests each candidate's enabledness in transition-index
    /// order and hands the enabled ones to `visit`, stopping early when `visit` returns
    /// `false`.
    fn walk_enabled(&mut self, mut visit: impl FnMut(usize) -> bool) {
        let tables = &self.tables;
        let mask = &mut self.mask;
        with_core!(&self.core, inner => {
            tables.gather_candidates(&inner.current, mask);
            for (word, &mask_bits) in mask.iter().enumerate() {
                let mut bits = mask_bits;
                while bits != 0 {
                    let t = word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if tables.enabled(&inner.current, t) && !visit(t) {
                        return;
                    }
                }
            }
        });
    }

    /// Fires `transition`, updating the current marking, its hash and its token total
    /// in place.
    ///
    /// When the firing would saturate the current token width the session widens
    /// (`u8` → `u16` → `u64`) and retries transparently, so narrow sessions behave
    /// exactly like full-width ones.
    ///
    /// # Errors
    ///
    /// * [`PetriError::UnknownTransition`] if the id is out of range.
    /// * [`PetriError::NotEnabled`] if the transition is not enabled; the marking is
    ///   left unchanged.
    /// * [`PetriError::TokenOverflow`] if an output place would exceed `u64::MAX`
    ///   (mirroring [`PetriNet::fire`]); the marking is left unchanged.
    /// * [`PetriError::ResourceExhausted`] if a required width upgrade does not fit the
    ///   budget attached via [`with_memory`](Self::with_memory); the marking is left
    ///   unchanged (at the old width) and the session stays usable.
    pub fn fire(&mut self, transition: TransitionId) -> Result<()> {
        let t = transition.index();
        if t >= self.transition_count {
            return Err(PetriError::UnknownTransition(transition));
        }
        loop {
            let tables = &self.tables;
            let token_delta = &self.token_delta;
            let outcome = with_core!(&mut self.core, inner => inner.fire(tables, token_delta, t));
            match outcome {
                FireOutcome::Fired => return Ok(()),
                FireOutcome::NotEnabled => return Err(PetriError::NotEnabled(transition)),
                FireOutcome::Saturated => {
                    // Charge the widening before re-encoding: the whole session state
                    // (current marking + checkpoint arena) grows by the word-size
                    // difference per token slot.
                    let slots = with_core!(&self.core, inner => inner.current.len() + inner.arena.len())
                        as u64;
                    let extra = match self.width {
                        TokenWidth::U8 => slots,      // 1 → 2 bytes per slot
                        TokenWidth::U16 => 6 * slots, // 2 → 8 bytes per slot
                        TokenWidth::U64 | TokenWidth::Auto => 0,
                    };
                    if extra > 0 {
                        self.memory.charge(extra, "widen")?;
                    }
                    if !self.widen() {
                        return Err(PetriError::TokenOverflow(self.overflow_place(t)));
                    }
                }
            }
        }
    }

    /// Fires a whole sequence, stopping at the first failure (the marking then reflects
    /// the successful prefix, like [`PetriNet::fire_sequence`]).
    ///
    /// # Errors
    ///
    /// Same as [`fire`](Self::fire).
    pub fn fire_sequence(&mut self, sequence: &[TransitionId]) -> Result<()> {
        for &t in sequence {
            self.fire(t)?;
        }
        Ok(())
    }

    /// Reverts the most recent not-yet-undone firing, returning the transition, or
    /// `None` if the trace is empty. The undo log does not reach across a
    /// [`rollback`](Self::rollback).
    pub fn undo(&mut self) -> Option<TransitionId> {
        let tables = &self.tables;
        let token_delta = &self.token_delta;
        with_core!(&mut self.core, inner => inner.undo(tables, token_delta))
    }

    /// Interns the current marking into the session's checkpoint arena and returns its
    /// id. Checkpointing the same marking twice returns the same id (the arena
    /// deduplicates through the engine's hash-of-slice table, reusing the incrementally
    /// maintained hash — the marking is never rehashed). Checkpoint id 0 is always the
    /// starting marking.
    ///
    /// # Panics
    ///
    /// Panics if a budget attached via [`with_memory`](Self::with_memory) is exhausted;
    /// budgeted callers use [`try_checkpoint`](Self::try_checkpoint).
    pub fn checkpoint(&mut self) -> StateId {
        self.try_checkpoint()
            .expect("checkpoint exhausted the session budget; use try_checkpoint")
    }

    /// Fallible [`checkpoint`](Self::checkpoint): interning a *new* marking charges the
    /// session's [`MemoryBudget`] first and fails with a typed
    /// [`ResourceExhausted`] when it does not fit — the arena is left exactly as it
    /// was, and re-interning an already-saved marking still succeeds (deduplication is
    /// free).
    ///
    /// # Errors
    ///
    /// [`ResourceExhausted`] (stage `"checkpoint"`) when the budget attached via
    /// [`with_memory`](Self::with_memory) cannot cover the new checkpoint.
    pub fn try_checkpoint(&mut self) -> std::result::Result<StateId, ResourceExhausted> {
        let memory = &self.memory;
        with_core!(&mut self.core, inner => inner.try_checkpoint(memory))
    }

    /// Number of distinct checkpoints interned so far (at least 1: the start).
    pub fn checkpoint_count(&self) -> usize {
        with_core!(&self.core, inner => inner.checkpoint_raw.len())
    }

    /// The marking a checkpoint id refers to.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`checkpoint`](Self::checkpoint).
    pub fn checkpoint_marking(&self, id: StateId) -> Marking {
        with_core!(&self.core, inner => {
            assert!(
                (id as usize) < inner.checkpoint_raw.len(),
                "unknown checkpoint id {id}"
            );
            let start = id as usize * inner.places;
            inner.arena[start..start + inner.places]
                .iter()
                .map(|&w| w.to_u64())
                .collect()
        })
    }

    /// Restores the current marking (and its hash and token total) to checkpoint `id` —
    /// one O(places) copy. Clears the [`undo`](Self::undo) log: a rollback is a jump,
    /// not a firing.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`checkpoint`](Self::checkpoint).
    pub fn rollback(&mut self, id: StateId) {
        with_core!(&mut self.core, inner => {
            assert!(
                (id as usize) < inner.checkpoint_raw.len(),
                "unknown checkpoint id {id}"
            );
            inner.rollback(id)
        });
    }

    /// Widens the core one step; returns `false` when already at `u64`.
    fn widen(&mut self) -> bool {
        // Move the core out through a cheap placeholder so `Inner::widen` can consume it.
        let core = std::mem::replace(&mut self.core, Core::U64(Inner::new(&[])));
        match core {
            Core::U8(inner) => {
                self.width = TokenWidth::U16;
                self.core = Core::U16(inner.widen());
                true
            }
            Core::U16(inner) => {
                self.width = TokenWidth::U64;
                self.core = Core::U64(inner.widen());
                true
            }
            Core::U64(inner) => {
                self.core = Core::U64(inner);
                false
            }
        }
    }

    /// The place a `u64`-width firing of `t` would overflow (for the error payload;
    /// only reachable within a hair of `u64::MAX` tokens).
    fn overflow_place(&self, t: usize) -> PlaceId {
        for &(p, d) in self.tables.delta(t) {
            if d > 0 {
                let place = PlaceId::new(p as usize);
                if self.tokens_of(place).checked_add(d as u64).is_none() {
                    return place;
                }
            }
        }
        PlaceId::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gallery, NetBuilder};

    #[test]
    fn session_matches_safe_token_game_on_figure2() {
        let net = gallery::figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let mut session = FiringSession::new(&net);
        let mut marking = net.initial_marking().clone();
        for &t in &[t1, t1, t1, t1, t2, t2] {
            assert_eq!(
                session.enabled_transitions(),
                net.enabled_transitions(&marking)
            );
            session.fire(t).unwrap();
            net.fire(&mut marking, t).unwrap();
            assert_eq!(session.marking(), marking);
            assert_eq!(session.total_tokens(), marking.total_tokens());
        }
    }

    #[test]
    fn fire_rejects_disabled_and_unknown() {
        let net = gallery::figure2();
        let t2 = net.transition_by_name("t2").unwrap();
        let mut session = FiringSession::new(&net);
        assert_eq!(session.fire(t2), Err(PetriError::NotEnabled(t2)));
        let bogus = TransitionId::new(99);
        assert_eq!(
            session.fire(bogus),
            Err(PetriError::UnknownTransition(bogus))
        );
        // Failed firings leave the marking untouched.
        assert_eq!(session.marking(), net.initial_marking().clone());
        assert_eq!(session.trace_len(), 0);
    }

    #[test]
    fn undo_reverts_exactly() {
        let net = gallery::figure4();
        let mut session = FiringSession::new(&net);
        let before = session.marking();
        let enabled = session.enabled_transitions();
        let t = enabled[0];
        session.fire(t).unwrap();
        assert_eq!(session.undo(), Some(t));
        assert_eq!(session.marking(), before);
        assert_eq!(session.total_tokens(), before.total_tokens());
        assert_eq!(session.undo(), None);
    }

    #[test]
    fn checkpoints_deduplicate_and_restore() {
        let net = gallery::figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let mut session = FiringSession::new(&net);
        assert_eq!(session.checkpoint(), 0); // start is checkpoint 0
        assert_eq!(session.checkpoint_count(), 1);
        session.fire(t1).unwrap();
        let after_one = session.checkpoint();
        assert_eq!(after_one, 1);
        session.fire(t1).unwrap();
        session.rollback(after_one);
        // Same marking interns to the same id.
        assert_eq!(session.checkpoint(), after_one);
        assert_eq!(session.checkpoint_count(), 2);
        assert_eq!(session.checkpoint_marking(0), net.initial_marking().clone());
        // Rollback cleared the undo log.
        assert_eq!(session.trace_len(), 0);
        assert_eq!(session.undo(), None);
    }

    #[test]
    fn width_starts_narrow_and_saturation_widens() {
        // A pure source transition pumps one place without bound.
        let mut b = NetBuilder::new("pump");
        let t = b.transition("t");
        let p = b.place("p", 0);
        b.arc_t_p(t, p, 1).unwrap();
        let net = b.build().unwrap();
        let mut session = FiringSession::new(&net);
        assert_eq!(session.token_width(), TokenWidth::U8);
        for _ in 0..300 {
            session.fire(t).unwrap();
        }
        assert_eq!(session.token_width(), TokenWidth::U16);
        assert_eq!(session.tokens_of(net.place_by_name("p").unwrap()), 300);
        assert_eq!(session.total_tokens(), 300);
    }

    #[test]
    fn forced_width_honours_starting_marking() {
        let mut b = NetBuilder::new("wide");
        let _p = b.place("p", 50_000);
        let net = b.build().unwrap();
        // u8 cannot hold the starting marking: silently widened to u16.
        let session = FiringSession::with_width(&net, net.initial_marking(), TokenWidth::U8);
        assert_eq!(session.token_width(), TokenWidth::U16);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let t = b.transition("t");
        b.arc_p_t(start, t, 1).unwrap();
        let net = b.build().unwrap();
        let mut session = FiringSession::new(&net);
        assert!(!session.is_deadlocked());
        session.fire(net.transition_by_name("t").unwrap()).unwrap();
        assert!(session.is_deadlocked());
        assert!(session.enabled_transitions().is_empty());
    }

    #[test]
    fn exhausted_checkpoint_budget_is_typed_and_leaves_the_session_usable() {
        let net = gallery::figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        // Room for a couple of checkpoints beyond the (uncharged) starting marking.
        let budget = MemoryBudget::with_limit(2 * state_cost::<u8>(net.place_count()));
        let mut session = FiringSession::new(&net).with_memory(budget.clone());

        session.fire(t1).unwrap();
        let first = session.try_checkpoint().expect("first checkpoint fits");
        session.fire(t1).unwrap();
        session.try_checkpoint().expect("second checkpoint fits");
        session.fire(t1).unwrap();
        let err = session.try_checkpoint().expect_err("third must exhaust");
        assert_eq!(err.stage, "checkpoint");
        assert_eq!(err.limit_bytes, budget.limit_bytes().unwrap());

        // The failed intern left no trace; the session itself keeps working.
        assert_eq!(session.checkpoint_count(), 3);
        session.fire(t1).unwrap();
        assert_eq!(session.undo(), Some(t1));
        session.rollback(first);
        assert_eq!(session.trace_len(), 0);
        // Re-interning an already-saved marking is deduplication, not growth: free.
        assert_eq!(session.try_checkpoint().unwrap(), first);
        // New markings still fail — the budget is sticky, the session is not poisoned.
        session.fire(t1).unwrap();
        session.fire(t1).unwrap();
        assert!(session.try_checkpoint().is_err());
    }

    #[test]
    fn widening_charges_the_budget_and_fails_without_corrupting_state() {
        // A pure source transition pumps one place without bound, forcing u8 -> u16.
        let mut b = NetBuilder::new("pump");
        let t = b.transition("t");
        let p = b.place("p", 0);
        b.arc_t_p(t, p, 1).unwrap();
        let net = b.build().unwrap();
        // Too small for even the one-slot widening charge once the seed checkpoint of
        // the *armed* path is counted out (seed is uncharged; widening costs 2 slots:
        // current + the interned start checkpoint).
        let mut session = FiringSession::new(&net).with_memory(MemoryBudget::with_limit(1));
        for _ in 0..255 {
            session.fire(t).unwrap();
        }
        let err = session
            .fire(t)
            .expect_err("widening must exhaust the budget");
        assert!(matches!(
            err,
            PetriError::ResourceExhausted { stage: "widen", .. }
        ));
        // The marking is unchanged at the old width and the session still answers.
        assert_eq!(session.token_width(), TokenWidth::U8);
        assert_eq!(session.total_tokens(), 255);
        assert_eq!(session.undo(), Some(t));
        assert_eq!(session.total_tokens(), 254);
        // With headroom the same firing widens and succeeds.
        let mut roomy = FiringSession::new(&net).with_memory(MemoryBudget::with_limit(1 << 20));
        for _ in 0..300 {
            roomy.fire(t).unwrap();
        }
        assert_eq!(roomy.token_width(), TokenWidth::U16);
        assert_eq!(roomy.total_tokens(), 300);
    }

    #[test]
    fn empty_net_session_is_dead_but_consistent() {
        let net = NetBuilder::new("empty").build().unwrap();
        let mut session = FiringSession::new(&net);
        assert!(session.is_deadlocked());
        assert_eq!(session.place_count(), 0);
        assert_eq!(session.total_tokens(), 0);
        assert_eq!(session.checkpoint(), 0);
        session.rollback(0);
    }
}
