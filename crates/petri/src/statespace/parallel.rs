//! The sharded parallel explorer.
//!
//! # Example
//!
//! The parallel explorer is reached through [`ExploreOptions::threads`]; its output is
//! bit-for-bit identical to the sequential engine's for any thread count:
//!
//! ```
//! use fcpn_petri::analysis::ReachabilityOptions;
//! use fcpn_petri::gallery;
//! use fcpn_petri::statespace::{ExploreOptions, StateSpace};
//!
//! let net = gallery::cycle_bank(8);
//! let sequential = StateSpace::explore(&net, ReachabilityOptions::default());
//! let parallel = StateSpace::explore_with(
//!     &net,
//!     &ExploreOptions {
//!         threads: 2,
//!         ..ExploreOptions::default()
//!     },
//! );
//! assert_eq!(sequential.state_count(), parallel.state_count());
//! assert_eq!(sequential.edge_count(), parallel.edge_count());
//! assert!((0..sequential.state_count() as u32)
//!     .all(|s| sequential.tokens(s) == parallel.tokens(s)));
//! ```
//!
//! [`ExploreOptions::threads`]: super::ExploreOptions::threads
//!
//! # Design
//!
//! Markings are sharded by hash range: shard `s` owns every marking whose finalized
//! hash maps to `s` under a fixed multiply-shift, and each worker thread owns exactly
//! one shard — a private token arena, hash table and per-state metadata that no other
//! thread ever touches concurrently. Exploration proceeds in breadth-first **levels**
//! (the sequential engine's FIFO order is level order, since ids are assigned in
//! discovery order), and each level runs three phases:
//!
//! 1. **Expand** (parallel): every worker fires the enabled transitions of the level's
//!    states it owns, in canonical order. Successors hashing into the worker's own shard
//!    are interned immediately; cross-shard successors are appended — tokens plus the
//!    O(1)-derived raw hash — to the per-pair outbox `outbox[src][dst]`, and the edge is
//!    recorded with a pending reference to that outbox slot.
//! 2. **Drain** (parallel): every worker drains the outboxes addressed to it in fixed
//!    sender order, interning each candidate into its shard and writing the resolved
//!    local id into the outbox's reply slot.
//! 3. **Admit** (sequential, cheap): the coordinator walks the level's states in
//!    canonical order and each state's recorded edges in transition order — exactly the
//!    sequential engine's discovery order — assigning canonical ids to newly reached
//!    states, applying the state budget and token cut-off *in that order*, and emitting
//!    the CSR rows. No token vector is hashed or compared here; the pass only chases
//!    already-resolved `(shard, local)` references.
//!
//! Termination detection is the natural consequence of the level structure: when an
//! admission pass produces an empty next level, every worker is parked at the barrier
//! and the coordinator signals shutdown.
//!
//! Because admission replays the sequential discovery order, the resulting state
//! numbering, edge list, frontier and completeness flag are **bit-for-bit identical** to
//! the sequential explorer's for any shard count — including truncated explorations,
//! where which states fall inside the budget depends on the discovery order. States the
//! budget rejects may transiently occupy shard arenas (they were interned before the
//! admission pass ruled on them), but they are never renumbered, never expanded and
//! never emitted.

use super::arena::TokenWord;
use super::engine::{
    state_cost, NetTables, RawSpace, CANCEL_STRIDE, EDGE_COST, STAGE_REACHABILITY,
};
use super::interner::{Probe, SliceTable};
use super::{mix, raw_hash, StateId, EMPTY_SLOT};
use crate::analysis::ReachabilityOptions;
use crate::budget::{Interrupt, MemoryBudget};
use crate::cancel::{CancelGate, CancelToken};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Marks a `rec_target` entry as an unresolved outbox reference.
const PENDING_BIT: u64 = 1 << 63;

#[inline]
fn shard_of(mixed_hash: u64, shards: usize) -> usize {
    // Multiply-shift maps the hash uniformly onto 0..shards without division.
    ((mixed_hash as u128 * shards as u128) >> 64) as usize
}

#[inline]
fn encode_direct(shard: usize, local: u32) -> u64 {
    ((shard as u64) << 32) | local as u64
}

#[inline]
fn encode_pending(dst: usize, index: u32) -> u64 {
    PENDING_BIT | ((dst as u64) << 32) | index as u64
}

/// One worker's private slice of the state space.
struct Shard<W> {
    /// Flat token arena of every marking interned into this shard (admitted or not).
    tokens: Vec<W>,
    /// Raw (pre-finalizer) hash per local state, for O(1) successor hash derivation.
    raw_hashes: Vec<u64>,
    /// Largest token count per local state, for the cut-off check at admission.
    max_tok: Vec<u64>,
    /// Canonical id per local state; `EMPTY_SLOT` until the admission pass accepts it.
    canon: Vec<u32>,
    table: SliceTable,
    /// Local ids this worker expands in the current level, in canonical order.
    worklist: Vec<u32>,
    /// Flat edge records of the current level: fired transition per record…
    rec_t: Vec<u32>,
    /// …and the successor as either a direct `(shard, local)` or a pending outbox slot.
    rec_target: Vec<u64>,
    /// Records per worklist entry, in worklist order.
    rec_counts: Vec<u32>,
}

impl<W: TokenWord> Shard<W> {
    fn new() -> Self {
        Shard {
            tokens: Vec::new(),
            raw_hashes: Vec::new(),
            max_tok: Vec::new(),
            canon: Vec::new(),
            table: SliceTable::with_capacity(64),
            worklist: Vec::new(),
            rec_t: Vec::new(),
            rec_target: Vec::new(),
            rec_counts: Vec::new(),
        }
    }

    /// Interns `tokens` (with its precomputed raw hash), returning the local id.
    fn intern(&mut self, tokens: &[W], raw: u64, places: usize) -> u32 {
        if self.table.needs_growth() {
            self.table.grow();
        }
        let mixed = mix(raw);
        let Shard {
            tokens: arena,
            raw_hashes,
            max_tok,
            canon,
            table,
            ..
        } = self;
        match table.probe(mixed, tokens, |id| {
            let start = id as usize * places;
            &arena[start..start + places]
        }) {
            Probe::Found(id) => id,
            Probe::Vacant(slot) => {
                let id = raw_hashes.len() as u32;
                arena.extend_from_slice(tokens);
                raw_hashes.push(raw);
                max_tok.push(tokens.iter().map(|&k| k.to_u64()).max().unwrap_or(0));
                canon.push(EMPTY_SLOT);
                table.insert_at(slot, mixed, id);
                id
            }
        }
    }
}

/// Cross-shard successor traffic for one `(sender, receiver)` pair and one level.
///
/// The mutexes are phase-exclusive — the sender fills `tokens`/`hashes` during the
/// expand phase, the receiver fills `replies` during the drain phase, the coordinator
/// reads during admission — so every lock is taken once per phase, uncontended.
struct Outbox<W> {
    /// Flattened candidate token vectors, `places` words each.
    tokens: Vec<W>,
    /// Raw hash per candidate (computed by the sender via the O(1) hash shift).
    hashes: Vec<u64>,
    /// Resolved local id in the receiving shard, one per candidate, in send order.
    replies: Vec<u32>,
}

impl<W> Default for Outbox<W> {
    fn default() -> Self {
        Outbox {
            tokens: Vec::new(),
            hashes: Vec::new(),
            replies: Vec::new(),
        }
    }
}

/// One state of the current breadth-first level, in canonical order.
#[derive(Clone, Copy)]
struct LevelEntry {
    shard: u32,
    local: u32,
    /// Past the token cut-off: gets an empty CSR row and joins the frontier instead of
    /// being expanded.
    frontier: bool,
}

/// Explores the state space with `threads` workers over `threads` hash shards.
///
/// The output is bit-for-bit identical to [`explore_seq`](super::engine)'s for the same
/// options, for any thread count.
///
/// # Cancellation
///
/// Workers poll `cancel` with a counter gate inside the expand and drain phases and
/// simply stop producing records when it fires; because the token is sticky, the
/// coordinator — which re-checks right after the drain barrier, *before* the admission
/// pass reads any per-shard record — is then guaranteed to observe the cancellation
/// too, so truncated record lists are never interpreted. The whole partial exploration
/// is discarded and [`Interrupt::Cancelled`] returned.
///
/// # Memory budget
///
/// Only the coordinator charges `memory`, in the admission pass, using the same
/// canonical cost model and charge order as the sequential engine — so the same net
/// under the same budget exhausts at the same state with the same error for any
/// thread count. Shard-transient states (interned before the budget ruled on them)
/// are not charged; that physical overshoot is bounded by the per-level fan-out and
/// the `max_markings` clamp, and it is freed with the shards when exhaustion
/// abandons the run.
pub(crate) fn explore_parallel<W: TokenWord>(
    tables: &NetTables,
    initial: &[u64],
    options: ReachabilityOptions,
    threads: usize,
    cancel: &CancelToken,
    memory: &MemoryBudget,
) -> Result<RawSpace<W>, Interrupt> {
    let places = tables.places;
    let shard_count = threads;
    let shards: Vec<Mutex<Shard<W>>> = (0..shard_count).map(|_| Mutex::new(Shard::new())).collect();
    let outboxes: Vec<Vec<Mutex<Outbox<W>>>> = (0..shard_count)
        .map(|_| {
            (0..shard_count)
                .map(|_| Mutex::new(Outbox::default()))
                .collect()
        })
        .collect();
    let barrier = Barrier::new(threads + 1);
    let done = AtomicBool::new(false);

    // Only the coordinator charges the budget, replaying the sequential engine's
    // charge sequence: the seed state here, then states/edges in admission order.
    let mut meter = memory.meter();
    let state_bytes = state_cost::<W>(places);
    meter.charge(state_bytes, STAGE_REACHABILITY)?;

    // Seed the initial state: canonical id 0, owned by its hash shard.
    let initial_w: Vec<W> = initial.iter().map(|&k| W::from_u64(k)).collect();
    let initial_raw = raw_hash(&initial_w);
    let seed_shard = shard_of(mix(initial_raw), shard_count);
    {
        let mut shard = shards[seed_shard].lock().unwrap();
        let local = shard.intern(&initial_w, initial_raw, places);
        debug_assert_eq!(local, 0);
        shard.canon[0] = 0;
    }
    let initial_frontier =
        initial.iter().copied().max().unwrap_or(0) > options.max_tokens_per_place;
    let mut level_order = vec![LevelEntry {
        shard: seed_shard as u32,
        local: 0,
        frontier: initial_frontier,
    }];
    if !initial_frontier {
        shards[seed_shard].lock().unwrap().worklist.push(0);
    }

    // Canonical bookkeeping, owned by the coordinator.
    let mut canon_src: Vec<(u32, u32)> = vec![(seed_shard as u32, 0)];
    let mut fwd_offsets: Vec<u32> = vec![0];
    let mut edge_to: Vec<u32> = Vec::new();
    let mut edge_transition: Vec<u32> = Vec::new();
    let mut frontier: Vec<StateId> = Vec::new();
    let mut complete = true;
    let mut cancelled = false;
    let mut interrupted: Option<Interrupt> = None;

    std::thread::scope(|scope| {
        for me in 0..threads {
            let shards = &shards;
            let outboxes = &outboxes;
            let barrier = &barrier;
            let done = &done;
            scope.spawn(move || {
                let mut current: Vec<W> = vec![W::from_u64(0); places];
                let mut mask = tables.candidate_buffer();
                loop {
                    barrier.wait();
                    if done.load(Ordering::SeqCst) {
                        return;
                    }
                    expand_phase(
                        me,
                        tables,
                        &mut shards[me].lock().unwrap(),
                        &outboxes[me],
                        shard_count,
                        &mut current,
                        &mut mask,
                        cancel,
                    );
                    barrier.wait();
                    drain_phase(
                        me,
                        &mut shards[me].lock().unwrap(),
                        outboxes,
                        places,
                        cancel,
                    );
                    barrier.wait();
                }
            });
        }

        loop {
            if level_order.is_empty() {
                done.store(true, Ordering::SeqCst);
                barrier.wait();
                break;
            }
            barrier.wait(); // release the workers into the expand phase
            barrier.wait(); // expand done → drain
            barrier.wait(); // drain done → exclusive admission

            // Cancellation must be decided *here*, before the admission passes read any
            // per-shard records: a cancelled worker stops recording mid-level, and the
            // token's stickiness guarantees that whenever a worker truncated its
            // records, this check fires too — so truncated levels are never admitted.
            if cancel.is_cancelled() {
                done.store(true, Ordering::SeqCst);
                barrier.wait();
                cancelled = true;
                break;
            }

            // All workers are parked at the top-of-loop barrier; the coordinator has
            // exclusive access until it waits again.
            let mut shard_guards: Vec<MutexGuard<'_, Shard<W>>> =
                shards.iter().map(|m| m.lock().unwrap()).collect();
            let outbox_guards: Vec<Vec<MutexGuard<'_, Outbox<W>>>> = outboxes
                .iter()
                .map(|row| row.iter().map(|m| m.lock().unwrap()).collect())
                .collect();

            // Pass 1 (read-only): resolve every record of the level to (transition,
            // shard, local), chasing pending outbox references through the replies.
            let mut row_counts: Vec<u32> = Vec::with_capacity(level_order.len());
            let mut resolved: Vec<(u32, u32, u32)> = Vec::new();
            let mut wl_cursor = vec![0usize; shard_count];
            let mut rec_cursor = vec![0usize; shard_count];
            for entry in &level_order {
                if entry.frontier {
                    row_counts.push(0);
                    continue;
                }
                let s = entry.shard as usize;
                let shard = &shard_guards[s];
                debug_assert_eq!(shard.worklist[wl_cursor[s]], entry.local);
                let count = shard.rec_counts[wl_cursor[s]];
                wl_cursor[s] += 1;
                for _ in 0..count {
                    let t = shard.rec_t[rec_cursor[s]];
                    let enc = shard.rec_target[rec_cursor[s]];
                    rec_cursor[s] += 1;
                    let hi = ((enc >> 32) & 0x7fff_ffff) as u32;
                    let lo = enc as u32;
                    let (ds, dl) = if enc & PENDING_BIT != 0 {
                        (hi, outbox_guards[s][hi as usize].replies[lo as usize])
                    } else {
                        (hi, lo)
                    };
                    resolved.push((t, ds, dl));
                }
                row_counts.push(count);
            }

            // Pass 2: the canonical admission — the same (state, transition) order the
            // sequential engine discovers successors in, with the same budget and
            // cut-off decisions.
            let mut next_level: Vec<LevelEntry> = Vec::new();
            let mut cursor = 0usize;
            'admit: for (entry, &count) in level_order.iter().zip(&row_counts) {
                if entry.frontier {
                    frontier.push(shard_guards[entry.shard as usize].canon[entry.local as usize]);
                    complete = false;
                    fwd_offsets.push(edge_to.len() as u32);
                    continue;
                }
                for &(t, ds, dl) in &resolved[cursor..cursor + count as usize] {
                    let known = shard_guards[ds as usize].canon[dl as usize];
                    if known != EMPTY_SLOT {
                        if let Err(e) = meter.charge(EDGE_COST, STAGE_REACHABILITY) {
                            interrupted = Some(e.into());
                            break 'admit;
                        }
                        edge_to.push(known);
                        edge_transition.push(t);
                    } else if canon_src.len() >= options.max_markings {
                        complete = false;
                    } else {
                        // State charge then edge charge — the sequential engine's
                        // order for a newly admitted successor.
                        if let Err(e) = meter
                            .charge(state_bytes, STAGE_REACHABILITY)
                            .and_then(|()| meter.charge(EDGE_COST, STAGE_REACHABILITY))
                        {
                            interrupted = Some(e.into());
                            break 'admit;
                        }
                        let id = canon_src.len() as u32;
                        let shard = &mut shard_guards[ds as usize];
                        shard.canon[dl as usize] = id;
                        canon_src.push((ds, dl));
                        next_level.push(LevelEntry {
                            shard: ds,
                            local: dl,
                            frontier: shard.max_tok[dl as usize] > options.max_tokens_per_place,
                        });
                        edge_to.push(id);
                        edge_transition.push(t);
                    }
                }
                cursor += count as usize;
                fwd_offsets.push(edge_to.len() as u32);
            }

            // Exhaustion abandons the run exactly like cancellation: the partial
            // level is never handed to the workers and the whole space is discarded.
            if interrupted.is_some() {
                drop(outbox_guards);
                drop(shard_guards);
                done.store(true, Ordering::SeqCst);
                barrier.wait();
                break;
            }

            // Hand the next level's work lists to the workers.
            for shard in shard_guards.iter_mut() {
                shard.worklist.clear();
            }
            for entry in &next_level {
                if !entry.frontier {
                    shard_guards[entry.shard as usize]
                        .worklist
                        .push(entry.local);
                }
            }
            level_order = next_level;
        }
    });

    if cancelled {
        return Err(Interrupt::Cancelled);
    }
    if let Some(interrupt) = interrupted {
        return Err(interrupt);
    }

    // Renumber the shard arenas into the canonical order: one widened copy per admitted
    // state and one hash re-insertion (no token comparisons — all states are distinct).
    let shards: Vec<Shard<W>> = shards
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    let mut arena: Vec<W> = Vec::with_capacity(canon_src.len() * places);
    let mut table = SliceTable::with_capacity(canon_src.len().max(1));
    for (id, &(s, l)) in canon_src.iter().enumerate() {
        let shard = &shards[s as usize];
        let start = l as usize * places;
        arena.extend_from_slice(&shard.tokens[start..start + places]);
        table.insert_unique(mix(shard.raw_hashes[l as usize]), id as u32);
    }

    Ok(RawSpace {
        arena,
        table,
        fwd_offsets,
        edge_to,
        edge_transition,
        complete,
        frontier,
    })
}

/// Expand phase: fire the enabled transitions of every owned state in the level.
///
/// When `cancel` fires the remaining worklist slots are skipped — the level's records
/// are left truncated, which is sound because the coordinator re-checks the (sticky)
/// token before reading them.
#[allow(clippy::too_many_arguments)]
fn expand_phase<W: TokenWord>(
    me: usize,
    tables: &NetTables,
    shard: &mut Shard<W>,
    my_outboxes: &[Mutex<Outbox<W>>],
    shard_count: usize,
    current: &mut [W],
    mask: &mut [u64],
    cancel: &CancelToken,
) {
    let places = tables.places;
    let mut cancel_gate = CancelGate::new(CANCEL_STRIDE);
    let mut outs: Vec<MutexGuard<'_, Outbox<W>>> =
        my_outboxes.iter().map(|m| m.lock().unwrap()).collect();
    for out in outs.iter_mut() {
        out.tokens.clear();
        out.hashes.clear();
        out.replies.clear();
    }
    shard.rec_t.clear();
    shard.rec_target.clear();
    shard.rec_counts.clear();

    for slot in 0..shard.worklist.len() {
        if cancel_gate.check(cancel).is_err() {
            return;
        }
        let local = shard.worklist[slot] as usize;
        current.copy_from_slice(&shard.tokens[local * places..(local + 1) * places]);
        let parent_hash = shard.raw_hashes[local];
        // The coordinator already excluded cut-off states from the worklist, so the
        // gathered max token count is not re-checked here.
        tables.gather_candidates(current, mask);
        let row_start = shard.rec_t.len();
        for (word, &mask_bits) in mask.iter().enumerate() {
            let mut bits = mask_bits;
            while bits != 0 {
                let t = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !tables.enabled(current, t) {
                    continue;
                }
                if !tables.apply_delta_in_place(current, t) {
                    continue;
                }
                let successor_raw = parent_hash.wrapping_add(tables.hash_shift[t]);
                let dst = shard_of(mix(successor_raw), shard_count);
                let target = if dst == me {
                    encode_direct(me, shard.intern(current, successor_raw, places))
                } else {
                    let out = &mut outs[dst];
                    let index = out.hashes.len() as u32;
                    out.tokens.extend_from_slice(current);
                    out.hashes.push(successor_raw);
                    encode_pending(dst, index)
                };
                tables.revert_delta_in_place(current, t);
                shard.rec_t.push(t as u32);
                shard.rec_target.push(target);
            }
        }
        shard
            .rec_counts
            .push((shard.rec_t.len() - row_start) as u32);
    }
}

/// Drain phase: intern every candidate other workers sent to this shard, in fixed
/// sender order, and publish the resolved local ids.
///
/// Cancellation may leave reply lists truncated; as in the expand phase, the
/// coordinator never reads them once the (sticky) token has fired.
fn drain_phase<W: TokenWord>(
    me: usize,
    shard: &mut Shard<W>,
    outboxes: &[Vec<Mutex<Outbox<W>>>],
    places: usize,
    cancel: &CancelToken,
) {
    let mut cancel_gate = CancelGate::new(CANCEL_STRIDE);
    for (src, row) in outboxes.iter().enumerate() {
        if src == me {
            continue;
        }
        let mut inbox = row[me].lock().unwrap();
        let Outbox {
            tokens,
            hashes,
            replies,
        } = &mut *inbox;
        replies.clear();
        for (i, &raw) in hashes.iter().enumerate() {
            if cancel_gate.check(cancel).is_err() {
                return;
            }
            let candidate = &tokens[i * places..(i + 1) * places];
            replies.push(shard.intern(candidate, raw, places));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ExploreOptions, StateSpace, TokenWidth};
    use crate::analysis::ReachabilityOptions;
    use crate::{gallery, NetBuilder, PetriNet};

    fn parallel_options(reach: ReachabilityOptions, threads: usize) -> ExploreOptions {
        ExploreOptions {
            reach,
            threads,
            width: TokenWidth::Auto,
            ..ExploreOptions::default()
        }
    }

    fn assert_spaces_equal(par: &StateSpace, seq: &StateSpace, threads: usize) {
        assert_eq!(par.state_count(), seq.state_count(), "{threads} threads");
        assert_eq!(par.edge_count(), seq.edge_count(), "{threads} threads");
        assert_eq!(par.is_complete(), seq.is_complete(), "{threads} threads");
        assert_eq!(par.frontier(), seq.frontier(), "{threads} threads");
        for id in 0..seq.state_count() as u32 {
            assert_eq!(par.tokens(id), seq.tokens(id), "state {id}");
            let seq_row: Vec<_> = seq.successors(id).collect();
            let par_row: Vec<_> = par.successors(id).collect();
            assert_eq!(par_row, seq_row, "row {id}");
        }
        // The canonical interner answers lookups exactly like the sequential one.
        for id in 0..seq.state_count() as u32 {
            assert_eq!(par.index_of_tokens(seq.tokens(id)), Some(id));
        }
    }

    fn assert_identical(net: &PetriNet, reach: ReachabilityOptions, threads: usize) {
        let seq = StateSpace::explore_with(
            net,
            &ExploreOptions {
                reach,
                threads: 1,
                width: TokenWidth::U64,
                ..ExploreOptions::default()
            },
        );
        let par = StateSpace::explore_with(net, &parallel_options(reach, threads));
        assert_spaces_equal(&par, &seq, threads);
    }

    #[test]
    fn single_worker_parallel_path_matches_sequential() {
        // `explore_with(threads: 1)` dispatches to the sequential engine, so the
        // one-shard parallel machinery is pinned here by calling it directly.
        use super::super::engine::NetTables;
        let net = gallery::figure5();
        let reach = ReachabilityOptions {
            max_markings: 300,
            max_tokens_per_place: 4,
        };
        let tables = NetTables::build(&net);
        let raw = super::explore_parallel::<u8>(
            &tables,
            net.initial_marking().as_slice(),
            reach,
            1,
            &crate::CancelToken::never(),
            &crate::MemoryBudget::unlimited(),
        )
        .expect("never-firing guards");
        let par = StateSpace::from_raw(raw, net.place_count(), TokenWidth::U8);
        let seq = StateSpace::explore_with(
            &net,
            &ExploreOptions {
                reach,
                threads: 1,
                width: TokenWidth::U64,
                ..ExploreOptions::default()
            },
        );
        assert_spaces_equal(&par, &seq, 1);
    }

    #[test]
    fn pre_fired_token_cancels_parallel_exploration_promptly() {
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        for threads in [1usize, 2, 4] {
            let options = ExploreOptions {
                threads,
                cancel: cancel.clone(),
                ..ExploreOptions::default()
            };
            let result = StateSpace::try_explore_with(&gallery::marked_ring(8, 4), &options);
            assert!(result.is_err(), "{threads} threads must observe the token");
        }
    }

    #[test]
    fn armed_but_never_firing_token_is_bit_identical() {
        // The acceptance-criteria equivalence: an armed token that never fires must not
        // perturb the canonical output in any engine configuration.
        let reach = ReachabilityOptions {
            max_markings: 700,
            max_tokens_per_place: 4,
        };
        let baseline = StateSpace::explore_with(&gallery::figure5(), &parallel_options(reach, 1));
        for threads in [1usize, 2, 4] {
            let armed = ExploreOptions {
                reach,
                threads,
                width: TokenWidth::Auto,
                cancel: crate::CancelToken::new(),
                memory: crate::MemoryBudget::with_limit(1 << 40),
            };
            let space =
                StateSpace::try_explore_with(&gallery::figure5(), &armed).expect("never fires");
            assert_spaces_equal(&space, &baseline, threads);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_complete_spaces() {
        for threads in [1, 2, 3, 4] {
            assert_identical(
                &gallery::marked_ring(8, 4),
                ReachabilityOptions::default(),
                threads,
            );
            assert_identical(
                &gallery::cycle_bank(8),
                ReachabilityOptions::default(),
                threads,
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_on_truncated_spaces() {
        let reach = ReachabilityOptions {
            max_markings: 700,
            max_tokens_per_place: 4,
        };
        for threads in [1, 2, 4] {
            assert_identical(&gallery::figure5(), reach, threads);
            assert_identical(&gallery::choice_chain(4), reach, threads);
        }
    }

    #[test]
    fn parallel_handles_tiny_budgets_and_cutoffs() {
        let net = gallery::figure5();
        for max_markings in [1usize, 2, 7] {
            let reach = ReachabilityOptions {
                max_markings,
                max_tokens_per_place: 3,
            };
            for threads in [2, 4] {
                assert_identical(&net, reach, threads);
            }
        }
        // Cut-off zero: the initial state itself is the frontier.
        assert_identical(
            &net,
            ReachabilityOptions {
                max_markings: 100,
                max_tokens_per_place: 0,
            },
            2,
        );
    }

    #[test]
    fn parallel_handles_degenerate_nets() {
        let empty = NetBuilder::new("empty").build().unwrap();
        assert_identical(&empty, ReachabilityOptions::default(), 2);

        let mut b = NetBuilder::new("source-only");
        let t = b.transition("src");
        let p = b.place("p", 0);
        b.arc_t_p(t, p, 1).unwrap();
        let source = b.build().unwrap();
        assert_identical(
            &source,
            ReachabilityOptions {
                max_markings: 50,
                max_tokens_per_place: 5,
            },
            3,
        );
    }
}
