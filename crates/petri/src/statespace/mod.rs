//! The arena-interned state-space engine.
//!
//! This module is the performance substrate behind every explicit-state analysis in the
//! crate (reachability, deadlock, liveness, schedule validation). Where the naive
//! explorer ([`ReachabilityGraph::explore_naive`](crate::analysis::ReachabilityGraph::explore_naive))
//! clones a full [`Marking`](crate::Marking) per expansion and hashes whole token vectors
//! into a `HashMap<Marking, usize>`, the engine here:
//!
//! * stores every discovered marking contiguously in **one flat token arena**, addressed
//!   by dense `u32` state ids — no per-state allocation, no pointer chasing;
//! * picks the arena's word size **adaptively**: when the exploration bounds prove that
//!   no stored token can exceed `u8::MAX` (or `u16::MAX`), tokens are stored in a narrow
//!   `u8`/`u16` arena monomorphised over [`TokenWord`], cutting the
//!   memory traffic of the hot loop (state copies, probe comparisons, arena appends)
//!   4–8× relative to `u64`;
//! * interns states through an open-addressing **hash-of-slice table** that stores only
//!   `(hash, id)` pairs and compares candidate slices directly against the arena — a
//!   successor marking is hashed exactly once, in its scratch buffer, before any copy;
//! * fires transitions through precomputed per-transition delta rows — no id validation,
//!   no marking-length check, no double enabledness scan per firing;
//! * optionally explores in **parallel**: markings are sharded by hash
//!   range over worker-private arenas/interners, cross-shard successors travel through
//!   per-pair outboxes, and a deterministic admission pass renumbers states into the
//!   exact canonical order the sequential engine produces;
//! * exposes the reachability graph as **CSR forward/backward adjacency**, so
//!   [`successors`](StateSpace::successors) is O(out-degree),
//!   [`dead_states`](StateSpace::dead_states) is O(V) and
//!   [`can_eventually_fire`](StateSpace::can_eventually_fire) is a single O(V+E)
//!   backward traversal instead of an O(V·E) fixpoint;
//! * re-exposes the same machinery for **sequential trace execution**:
//!   [`FiringSession`] is a long-lived token-game cursor (fire/undo, bitmask
//!   enabled-set queries, checkpoint/rollback, on-demand width widening) used by the
//!   RTOS simulators and the ATM Table I harness instead of the owned-`Marking`
//!   token game.
//!
//! The exploration order and truncation semantics (state budget, per-place token
//! cut-off) are **bit-for-bit identical** to the naive explorer for every combination of
//! token width and thread count: all variants assign the same state ids, discover the
//! same edges in the same order and report the same frontier. `tests/properties.rs`
//! holds that equivalence over the gallery nets and randomly generated nets.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::{gallery, analysis::ReachabilityOptions, statespace::StateSpace};
//!
//! let net = gallery::marked_ring(6, 3);
//! let space = StateSpace::explore(&net, ReachabilityOptions::default());
//! assert!(space.is_complete());
//! assert_eq!(space.state_count(), 56); // C(6+3-1, 6-1) distributions of 3 tokens
//! assert!(space.dead_states().is_empty());
//! ```

mod arena;
mod engine;
mod interner;
mod parallel;
mod session;

pub use arena::{MarkingArena, TokenWord};
pub(crate) use engine::CANCEL_STRIDE;
pub use engine::{ExploreOptions, StateSpace, TokenWidth};
pub(crate) use interner::SliceTable;
pub use session::FiringSession;

/// Dense identifier of a discovered state; index 0 is the initial marking.
pub type StateId = u32;

pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// SplitMix64 finalizer: spreads an accumulated sum over all 64 bits before probing.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-place Zobrist-style multiplier, a pure function of the place index so every
/// component (explorer, arena, compatibility view, parallel shards) hashes markings
/// identically without sharing state.
#[inline]
pub(crate) fn place_key(place: usize) -> u64 {
    mix((place as u64).wrapping_add(0x9e37_79b9_7f4a_7c15)) | 1
}

/// Raw additive marking hash: `Σ tokens[p] · key(p)` (wrapping), over any token width.
///
/// Additivity is the point — firing a transition shifts the raw hash by a constant
/// (`Σ delta[p] · key(p)`), so the explorer updates successor hashes in O(1) from the
/// parent instead of rehashing the whole token vector. Because the sum runs over the
/// *values* (not the byte representation), every token width hashes identically.
#[inline]
pub(crate) fn raw_hash<W: TokenWord>(tokens: &[W]) -> u64 {
    tokens.iter().enumerate().fold(0u64, |h, (p, &k)| {
        h.wrapping_add(k.to_u64().wrapping_mul(place_key(p)))
    })
}

/// The table hash of a token slice: finalized raw hash.
#[inline]
pub(crate) fn hash_tokens<W: TokenWord>(tokens: &[W]) -> u64 {
    mix(raw_hash(tokens))
}
