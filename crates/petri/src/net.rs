//! The [`PetriNet`] structure: places, transitions and the weighted flow relation.

use crate::{Marking, PetriError, PlaceId, Result, TransitionId};
use std::collections::BTreeMap;
use std::fmt;

/// A place of the net: a non-FIFO channel / buffer holding tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Place {
    /// Human-readable name, unique within the net.
    pub name: String,
    /// Tokens held in the initial marking.
    pub initial_tokens: u64,
}

/// A transition of the net: a unit of data computation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transition {
    /// Human-readable name, unique within the net.
    pub name: String,
}

/// A weighted Petri net `(P, T, F)` with an initial marking.
///
/// The weighted flow relation `F : (T×P) ∪ (P×T) → ℕ` is stored as adjacency lists in
/// both directions so that pre-sets and post-sets of places and transitions are O(degree)
/// queries. Nets are immutable once built; use [`NetBuilder`](crate::NetBuilder) to
/// construct them.
///
/// # Examples
///
/// Building the two-transition producer/consumer net and firing it:
///
/// ```
/// use fcpn_petri::NetBuilder;
///
/// # fn main() -> Result<(), fcpn_petri::PetriError> {
/// let mut b = NetBuilder::new("producer-consumer");
/// let produce = b.transition("produce");
/// let buffer = b.place("buffer", 0);
/// let consume = b.transition("consume");
/// b.arc_t_p(produce, buffer, 1)?;
/// b.arc_p_t(buffer, consume, 1)?;
/// let net = b.build()?;
///
/// let mut m = net.initial_marking().clone();
/// net.fire(&mut m, produce)?;
/// assert!(net.is_enabled(&m, consume));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PetriNet {
    pub(crate) name: String,
    pub(crate) places: Vec<Place>,
    pub(crate) transitions: Vec<Transition>,
    /// For each transition, its input arcs `(place, weight)` — the `Pre` function.
    pub(crate) pre: Vec<Vec<(PlaceId, u64)>>,
    /// For each transition, its output arcs `(place, weight)` — the `Post` function.
    pub(crate) post: Vec<Vec<(PlaceId, u64)>>,
    /// For each place, the transitions feeding it `(transition, weight)`.
    pub(crate) place_in: Vec<Vec<(TransitionId, u64)>>,
    /// For each place, the transitions consuming from it `(transition, weight)`.
    pub(crate) place_out: Vec<Vec<(TransitionId, u64)>>,
    /// For each transition, its net token effect `(place, post − pre)` with pre and post
    /// arcs merged per place — the rows used by the unchecked firing fast path
    /// ([`PetriNet::fire_into`]) and the state-space engine.
    pub(crate) delta: Vec<Vec<(PlaceId, i64)>>,
    pub(crate) initial_marking: Marking,
}

/// Merges the `pre`/`post` columns into per-transition net-effect rows.
///
/// # Panics
///
/// Panics if an arc weight exceeds `i64::MAX` (far beyond any marking a bounded analysis
/// could visit; the token game itself would overflow `u64` first).
pub(crate) fn compute_delta(
    pre: &[Vec<(PlaceId, u64)>],
    post: &[Vec<(PlaceId, u64)>],
) -> Vec<Vec<(PlaceId, i64)>> {
    let as_i64 = |w: u64| i64::try_from(w).expect("arc weight exceeds i64::MAX");
    pre.iter()
        .zip(post.iter())
        .map(|(ins, outs)| {
            let mut row: Vec<(PlaceId, i64)> = Vec::with_capacity(ins.len() + outs.len());
            for &(p, w) in ins {
                row.push((p, -as_i64(w)));
            }
            for &(p, w) in outs {
                match row.iter_mut().find(|(q, _)| *q == p) {
                    Some((_, d)) => *d += as_i64(w),
                    None => row.push((p, as_i64(w))),
                }
            }
            row.retain(|&(_, d)| d != 0);
            row
        })
        .collect()
}

impl PetriNet {
    /// Name given to the net at construction time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places `|P|`.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions `|T|`.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Total number of arcs in the flow relation.
    pub fn arc_count(&self) -> usize {
        self.pre.iter().map(Vec::len).sum::<usize>() + self.post.iter().map(Vec::len).sum::<usize>()
    }

    /// Iterates over all place identifiers in index order.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId::new)
    }

    /// Iterates over all transition identifiers in index order.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(TransitionId::new)
    }

    /// Metadata of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this net.
    pub fn place(&self, place: PlaceId) -> &Place {
        &self.places[place.index()]
    }

    /// Metadata of `transition`.
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to this net.
    pub fn transition(&self, transition: TransitionId) -> &Transition {
        &self.transitions[transition.index()]
    }

    /// Name of `place`.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.places[place.index()].name
    }

    /// Name of `transition`.
    pub fn transition_name(&self, transition: TransitionId) -> &str {
        &self.transitions[transition.index()].name
    }

    /// Looks a place up by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(PlaceId::new)
    }

    /// Looks a transition up by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransitionId::new)
    }

    /// The initial marking `μ₀`.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial_marking
    }

    /// Input arcs of `transition` as `(place, weight)` pairs (the `Pre` column).
    pub fn inputs(&self, transition: TransitionId) -> &[(PlaceId, u64)] {
        &self.pre[transition.index()]
    }

    /// Output arcs of `transition` as `(place, weight)` pairs (the `Post` column).
    pub fn outputs(&self, transition: TransitionId) -> &[(PlaceId, u64)] {
        &self.post[transition.index()]
    }

    /// Transitions producing into `place`, with arc weights — the pre-set `•p`.
    pub fn producers(&self, place: PlaceId) -> &[(TransitionId, u64)] {
        &self.place_in[place.index()]
    }

    /// Transitions consuming from `place`, with arc weights — the post-set `p•`.
    pub fn consumers(&self, place: PlaceId) -> &[(TransitionId, u64)] {
        &self.place_out[place.index()]
    }

    /// The precomputed net token effect of `transition`: `(place, post − pre)` pairs with
    /// pre and post arcs merged per place and zero-effect places dropped. This is the row
    /// the firing fast path ([`PetriNet::fire_into`]) applies.
    pub fn delta_row(&self, transition: TransitionId) -> &[(PlaceId, i64)] {
        &self.delta[transition.index()]
    }

    /// Weight of the arc from `place` to `transition`, or 0 if absent.
    pub fn arc_weight_pt(&self, place: PlaceId, transition: TransitionId) -> u64 {
        self.pre[transition.index()]
            .iter()
            .find(|(p, _)| *p == place)
            .map(|&(_, w)| w)
            .unwrap_or(0)
    }

    /// Weight of the arc from `transition` to `place`, or 0 if absent.
    pub fn arc_weight_tp(&self, transition: TransitionId, place: PlaceId) -> u64 {
        self.post[transition.index()]
            .iter()
            .find(|(p, _)| *p == place)
            .map(|&(_, w)| w)
            .unwrap_or(0)
    }

    /// A transition whose pre-set is empty is a *source transition*: it models an input
    /// from the environment (interrupt, periodic event, …).
    pub fn is_source_transition(&self, transition: TransitionId) -> bool {
        self.pre[transition.index()].is_empty()
    }

    /// A transition whose post-set is empty is a *sink transition*: it models an output
    /// towards the environment.
    pub fn is_sink_transition(&self, transition: TransitionId) -> bool {
        self.post[transition.index()].is_empty()
    }

    /// A place with no producing transition is a *source place*.
    pub fn is_source_place(&self, place: PlaceId) -> bool {
        self.place_in[place.index()].is_empty()
    }

    /// A place with no consuming transition is a *sink place*.
    pub fn is_sink_place(&self, place: PlaceId) -> bool {
        self.place_out[place.index()].is_empty()
    }

    /// All source transitions of the net, in index order.
    pub fn source_transitions(&self) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_source_transition(t))
            .collect()
    }

    /// All sink transitions of the net, in index order.
    pub fn sink_transitions(&self) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_sink_transition(t))
            .collect()
    }

    /// A place with more than one output transition is a *choice* (conflict) place.
    pub fn is_choice_place(&self, place: PlaceId) -> bool {
        self.place_out[place.index()].len() > 1
    }

    /// A place with more than one input transition is a *merge* place.
    pub fn is_merge_place(&self, place: PlaceId) -> bool {
        self.place_in[place.index()].len() > 1
    }

    /// All choice (conflict) places of the net, in index order.
    pub fn choice_places(&self) -> Vec<PlaceId> {
        self.places().filter(|&p| self.is_choice_place(p)).collect()
    }

    /// All merge places of the net, in index order.
    pub fn merge_places(&self) -> Vec<PlaceId> {
        self.places().filter(|&p| self.is_merge_place(p)).collect()
    }

    /// Validates that `marking` has one entry per place of this net.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::MarkingLengthMismatch`] otherwise.
    pub fn check_marking(&self, marking: &Marking) -> Result<()> {
        if marking.len() == self.place_count() {
            Ok(())
        } else {
            Err(PetriError::MarkingLengthMismatch {
                expected: self.place_count(),
                found: marking.len(),
            })
        }
    }

    /// Validates that `place` belongs to this net.
    pub fn check_place(&self, place: PlaceId) -> Result<()> {
        if place.index() < self.place_count() {
            Ok(())
        } else {
            Err(PetriError::UnknownPlace(place))
        }
    }

    /// Validates that `transition` belongs to this net.
    pub fn check_transition(&self, transition: TransitionId) -> Result<()> {
        if transition.index() < self.transition_count() {
            Ok(())
        } else {
            Err(PetriError::UnknownTransition(transition))
        }
    }

    /// Renders a firing sequence with transition names, e.g. `"t1 t2 t4"`.
    pub fn format_sequence(&self, sequence: &[TransitionId]) -> String {
        sequence
            .iter()
            .map(|&t| self.transition_name(t).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Returns the names of all transitions, indexed by transition id.
    pub fn transition_names(&self) -> Vec<&str> {
        self.transitions.iter().map(|t| t.name.as_str()).collect()
    }

    /// Returns the names of all places, indexed by place id.
    pub fn place_names(&self) -> Vec<&str> {
        self.places.iter().map(|p| p.name.as_str()).collect()
    }

    /// Summarises structural statistics (used by diagnostics and the CLI examples).
    pub fn stats(&self) -> NetStats {
        NetStats {
            places: self.place_count(),
            transitions: self.transition_count(),
            arcs: self.arc_count(),
            choices: self.choice_places().len(),
            merges: self.merge_places().len(),
            source_transitions: self.source_transitions().len(),
            sink_transitions: self.sink_transitions().len(),
            initial_tokens: self.initial_marking.total_tokens(),
        }
    }
}

/// Structural statistics of a net, as reported by [`PetriNet::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Number of places.
    pub places: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of arcs.
    pub arcs: usize,
    /// Number of choice (conflict) places.
    pub choices: usize,
    /// Number of merge places.
    pub merges: usize,
    /// Number of source transitions.
    pub source_transitions: usize,
    /// Number of sink transitions.
    pub sink_transitions: usize,
    /// Tokens in the initial marking.
    pub initial_tokens: u64,
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|P|={} |T|={} arcs={} choices={} merges={} sources={} sinks={} tokens0={}",
            self.places,
            self.transitions,
            self.arcs,
            self.choices,
            self.merges,
            self.source_transitions,
            self.sink_transitions,
            self.initial_tokens
        )
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "net {} {{", self.name)?;
        for p in self.places() {
            writeln!(
                f,
                "  place {} tokens={}",
                self.place_name(p),
                self.places[p.index()].initial_tokens
            )?;
        }
        for t in self.transitions() {
            let ins: Vec<String> = self
                .inputs(t)
                .iter()
                .map(|&(p, w)| format!("{}*{}", self.place_name(p), w))
                .collect();
            let outs: Vec<String> = self
                .outputs(t)
                .iter()
                .map(|&(p, w)| format!("{}*{}", self.place_name(p), w))
                .collect();
            writeln!(
                f,
                "  transition {}: [{}] -> [{}]",
                self.transition_name(t),
                ins.join(", "),
                outs.join(", ")
            )?;
        }
        write!(f, "}}")
    }
}

/// A sub-net selection used by reductions: keeps a subset of places and transitions of a
/// parent net, with a mapping back to the parent's identifiers.
///
/// This is how T-reductions are represented in `fcpn-qss`: the component net is a fresh
/// [`PetriNet`] and the [`SubnetMap`] records which parent node each child node came from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubnetMap {
    /// For each place of the child net, the corresponding place of the parent net.
    pub place_to_parent: Vec<PlaceId>,
    /// For each transition of the child net, the corresponding transition of the parent net.
    pub transition_to_parent: Vec<TransitionId>,
}

impl SubnetMap {
    /// Maps a child place back to its parent place.
    pub fn parent_place(&self, child: PlaceId) -> PlaceId {
        self.place_to_parent[child.index()]
    }

    /// Maps a child transition back to its parent transition.
    pub fn parent_transition(&self, child: TransitionId) -> TransitionId {
        self.transition_to_parent[child.index()]
    }

    /// Finds the child transition corresponding to a parent transition, if it survived.
    pub fn child_transition(&self, parent: TransitionId) -> Option<TransitionId> {
        self.transition_to_parent
            .iter()
            .position(|&t| t == parent)
            .map(TransitionId::new)
    }

    /// Finds the child place corresponding to a parent place, if it survived.
    pub fn child_place(&self, parent: PlaceId) -> Option<PlaceId> {
        self.place_to_parent
            .iter()
            .position(|&p| p == parent)
            .map(PlaceId::new)
    }
}

impl PetriNet {
    /// Builds the sub-net induced by keeping only the given places and transitions,
    /// together with all arcs whose both endpoints are kept.
    ///
    /// Token counts of kept places are copied from this net's initial marking.
    ///
    /// # Errors
    ///
    /// Returns an error if any identifier does not belong to this net.
    pub fn induced_subnet(
        &self,
        keep_places: &[PlaceId],
        keep_transitions: &[TransitionId],
    ) -> Result<(PetriNet, SubnetMap)> {
        for &p in keep_places {
            self.check_place(p)?;
        }
        for &t in keep_transitions {
            self.check_transition(t)?;
        }
        let mut place_map: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
        let mut places = Vec::with_capacity(keep_places.len());
        let mut place_to_parent = Vec::with_capacity(keep_places.len());
        for &p in keep_places {
            if place_map.contains_key(&p) {
                continue;
            }
            let child = PlaceId::new(places.len());
            place_map.insert(p, child);
            places.push(self.places[p.index()].clone());
            place_to_parent.push(p);
        }
        let mut transition_map: BTreeMap<TransitionId, TransitionId> = BTreeMap::new();
        let mut transitions = Vec::with_capacity(keep_transitions.len());
        let mut transition_to_parent = Vec::with_capacity(keep_transitions.len());
        for &t in keep_transitions {
            if transition_map.contains_key(&t) {
                continue;
            }
            let child = TransitionId::new(transitions.len());
            transition_map.insert(t, child);
            transitions.push(self.transitions[t.index()].clone());
            transition_to_parent.push(t);
        }

        let mut pre = vec![Vec::new(); transitions.len()];
        let mut post = vec![Vec::new(); transitions.len()];
        let mut place_in = vec![Vec::new(); places.len()];
        let mut place_out = vec![Vec::new(); places.len()];
        for (&parent_t, &child_t) in &transition_map {
            for &(p, w) in &self.pre[parent_t.index()] {
                if let Some(&child_p) = place_map.get(&p) {
                    pre[child_t.index()].push((child_p, w));
                    place_out[child_p.index()].push((child_t, w));
                }
            }
            for &(p, w) in &self.post[parent_t.index()] {
                if let Some(&child_p) = place_map.get(&p) {
                    post[child_t.index()].push((child_p, w));
                    place_in[child_p.index()].push((child_t, w));
                }
            }
        }

        let initial_marking = Marking::from_vec(
            place_to_parent
                .iter()
                .map(|&p| self.initial_marking.tokens(p))
                .collect(),
        );

        let delta = compute_delta(&pre, &post);
        let net = PetriNet {
            name: format!("{}-subnet", self.name),
            places,
            transitions,
            pre,
            post,
            place_in,
            place_out,
            delta,
            initial_marking,
        };
        let map = SubnetMap {
            place_to_parent,
            transition_to_parent,
        };
        Ok((net, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn simple_net() -> PetriNet {
        // t1 -> p1 -> t2 -> p2 -> t3, with p1 a choice to t2/t2b
        let mut b = NetBuilder::new("simple");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 1);
        let t2 = b.transition("t2");
        let t2b = b.transition("t2b");
        let p2 = b.place("p2", 0);
        let t3 = b.transition("t3");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.arc_p_t(p1, t2b, 1).unwrap();
        b.arc_t_p(t2, p2, 2).unwrap();
        b.arc_p_t(p2, t3, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookups() {
        let net = simple_net();
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 4);
        assert_eq!(net.arc_count(), 5);
        assert_eq!(net.place_by_name("p1"), Some(PlaceId::new(0)));
        assert_eq!(net.transition_by_name("t3"), Some(TransitionId::new(3)));
        assert_eq!(net.place_by_name("zzz"), None);
        assert_eq!(net.place_name(PlaceId::new(1)), "p2");
    }

    #[test]
    fn sources_sinks_choices() {
        let net = simple_net();
        let t1 = net.transition_by_name("t1").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let p1 = net.place_by_name("p1").unwrap();
        assert!(net.is_source_transition(t1));
        assert!(net.is_sink_transition(t3));
        assert_eq!(net.source_transitions(), vec![t1]);
        assert!(net.is_choice_place(p1));
        assert_eq!(net.choice_places(), vec![p1]);
        assert!(net.merge_places().is_empty());
    }

    #[test]
    fn arc_weights() {
        let net = simple_net();
        let t2 = net.transition_by_name("t2").unwrap();
        let p1 = net.place_by_name("p1").unwrap();
        let p2 = net.place_by_name("p2").unwrap();
        assert_eq!(net.arc_weight_pt(p1, t2), 1);
        assert_eq!(net.arc_weight_tp(t2, p2), 2);
        assert_eq!(net.arc_weight_tp(t2, p1), 0);
    }

    #[test]
    fn stats_summary() {
        let net = simple_net();
        let s = net.stats();
        assert_eq!(s.places, 2);
        assert_eq!(s.transitions, 4);
        assert_eq!(s.choices, 1);
        assert_eq!(s.source_transitions, 1);
        assert_eq!(s.sink_transitions, 2); // t2b and t3 have empty post-sets
        assert_eq!(s.initial_tokens, 1);
        assert!(s.to_string().contains("|P|=2"));
    }

    #[test]
    fn induced_subnet_keeps_arcs_and_marking() {
        let net = simple_net();
        let p1 = net.place_by_name("p1").unwrap();
        let p2 = net.place_by_name("p2").unwrap();
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let (sub, map) = net.induced_subnet(&[p1, p2], &[t1, t2, t3]).unwrap();
        assert_eq!(sub.place_count(), 2);
        assert_eq!(sub.transition_count(), 3);
        // the p1 -> t2b arc is dropped because t2b was not kept
        assert_eq!(sub.arc_count(), 4);
        assert_eq!(sub.initial_marking().tokens(PlaceId::new(0)), 1);
        assert_eq!(map.parent_transition(TransitionId::new(1)), t2);
        assert_eq!(map.child_transition(t3), Some(TransitionId::new(2)));
        assert_eq!(map.child_place(p2), Some(PlaceId::new(1)));
    }

    #[test]
    fn induced_subnet_rejects_foreign_ids() {
        let net = simple_net();
        let err = net.induced_subnet(&[PlaceId::new(99)], &[]).unwrap_err();
        assert_eq!(err, PetriError::UnknownPlace(PlaceId::new(99)));
    }

    #[test]
    fn display_contains_structure() {
        let net = simple_net();
        let s = net.to_string();
        assert!(s.contains("net simple"));
        assert!(s.contains("transition t2"));
        assert!(s.contains("p2*2"));
    }
}
