//! The nets used in the figures of the paper, reconstructed for tests, examples and
//! benchmarks.
//!
//! Each constructor documents the figure it reproduces and the property the paper uses it
//! to illustrate. Transition and place names follow the paper (`t1`, `p1`, …), so firing
//! sequences printed by the scheduler can be compared with the text directly.

use crate::{NetBuilder, PetriNet};

/// Figure 1a: a free-choice conflict — one place with two output transitions, each of
/// which has that place as its only input.
pub fn figure1a() -> PetriNet {
    let mut b = NetBuilder::new("figure1a");
    let p = b.place("p1", 1);
    let t1 = b.transition("t1");
    let t2 = b.transition("t2");
    b.arc_p_t(p, t1, 1).expect("arc");
    b.arc_p_t(p, t2, 1).expect("arc");
    b.build().expect("figure 1a is a valid net")
}

/// Figure 1b: *not* free choice — `t3` shares its input place with `t2` but also has a
/// private input place, so there is a marking enabling `t3` and not `t2`.
pub fn figure1b() -> PetriNet {
    let mut b = NetBuilder::new("figure1b");
    let p1 = b.place("p1", 1);
    let p2 = b.place("p2", 0);
    let t1 = b.transition("t1");
    let t2 = b.transition("t2");
    let t3 = b.transition("t3");
    b.arc_t_p(t1, p2, 1).expect("arc");
    b.arc_p_t(p1, t2, 1).expect("arc");
    b.arc_p_t(p1, t3, 1).expect("arc");
    b.arc_p_t(p2, t3, 1).expect("arc");
    b.build().expect("figure 1b is a valid net")
}

/// Figure 2: the multirate marked-graph chain whose minimal T-invariant is `(4, 2, 1)`
/// and whose static schedule is `t1 t1 t1 t1 t2 t2 t3`.
pub fn figure2() -> PetriNet {
    let mut b = NetBuilder::new("figure2");
    let t1 = b.transition("t1");
    let p1 = b.place("p1", 0);
    let t2 = b.transition("t2");
    let p2 = b.place("p2", 0);
    let t3 = b.transition("t3");
    b.arc_t_p(t1, p1, 1).expect("arc");
    b.arc_p_t(p1, t2, 2).expect("arc");
    b.arc_t_p(t2, p2, 1).expect("arc");
    b.arc_p_t(p2, t3, 2).expect("arc");
    b.build().expect("figure 2 is a valid net")
}

/// Figure 3a: a schedulable FCPN — whatever way the conflict between `t2` and `t3` is
/// resolved, a finite complete cycle exists (`(t1 t2 t4)` or `(t1 t3 t5)`).
pub fn figure3a() -> PetriNet {
    let mut b = NetBuilder::new("figure3a");
    let t1 = b.transition("t1");
    let p1 = b.place("p1", 0);
    let t2 = b.transition("t2");
    let t3 = b.transition("t3");
    let p2 = b.place("p2", 0);
    let p3 = b.place("p3", 0);
    let t4 = b.transition("t4");
    let t5 = b.transition("t5");
    b.arc_t_p(t1, p1, 1).expect("arc");
    b.arc_p_t(p1, t2, 1).expect("arc");
    b.arc_p_t(p1, t3, 1).expect("arc");
    b.arc_t_p(t2, p2, 1).expect("arc");
    b.arc_t_p(t3, p3, 1).expect("arc");
    b.arc_p_t(p2, t4, 1).expect("arc");
    b.arc_p_t(p3, t5, 1).expect("arc");
    b.build().expect("figure 3a is a valid net")
}

/// Figure 3b: a non-schedulable FCPN — `t4` synchronises both branches of the choice, so
/// an adversary that always resolves the conflict the same way accumulates tokens without
/// bound in `p2` or `p3`.
pub fn figure3b() -> PetriNet {
    let mut b = NetBuilder::new("figure3b");
    let t1 = b.transition("t1");
    let p1 = b.place("p1", 0);
    let t2 = b.transition("t2");
    let t3 = b.transition("t3");
    let p2 = b.place("p2", 0);
    let p3 = b.place("p3", 0);
    let t4 = b.transition("t4");
    b.arc_t_p(t1, p1, 1).expect("arc");
    b.arc_p_t(p1, t2, 1).expect("arc");
    b.arc_p_t(p1, t3, 1).expect("arc");
    b.arc_t_p(t2, p2, 1).expect("arc");
    b.arc_t_p(t3, p3, 1).expect("arc");
    b.arc_p_t(p2, t4, 1).expect("arc");
    b.arc_p_t(p3, t4, 1).expect("arc");
    b.build().expect("figure 3b is a valid net")
}

/// Figure 4: the schedulable net with weighted arcs whose valid schedule is
/// `{(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}`; Section 4 synthesises its C code.
pub fn figure4() -> PetriNet {
    let mut b = NetBuilder::new("figure4");
    let t1 = b.transition("t1");
    let p1 = b.place("p1", 0);
    let t2 = b.transition("t2");
    let t3 = b.transition("t3");
    let p2 = b.place("p2", 0);
    let p3 = b.place("p3", 0);
    let t4 = b.transition("t4");
    let t5 = b.transition("t5");
    b.arc_t_p(t1, p1, 1).expect("arc");
    b.arc_p_t(p1, t2, 1).expect("arc");
    b.arc_p_t(p1, t3, 1).expect("arc");
    b.arc_t_p(t2, p2, 1).expect("arc");
    b.arc_p_t(p2, t4, 2).expect("arc");
    b.arc_t_p(t3, p3, 2).expect("arc");
    b.arc_p_t(p3, t5, 1).expect("arc");
    b.build().expect("figure 4 is a valid net")
}

/// Figure 5: the nine-transition net with two source transitions (`t1`, `t8`) and one
/// free choice (`p1 → t2 | t3`). Its T-reductions `R1`/`R2` have the T-invariants quoted
/// in the paper (`(1,1,0,2,0,4,0,0,0)` and `(0,0,0,0,0,1,0,1,1)` for `R1`), and the valid
/// schedule is `{(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}`.
pub fn figure5() -> PetriNet {
    let mut b = NetBuilder::new("figure5");
    let t1 = b.transition("t1");
    let t2 = b.transition("t2");
    let t3 = b.transition("t3");
    let t4 = b.transition("t4");
    let t5 = b.transition("t5");
    let t6 = b.transition("t6");
    let t7 = b.transition("t7");
    let t8 = b.transition("t8");
    let t9 = b.transition("t9");
    let p1 = b.place("p1", 0);
    let p2 = b.place("p2", 0);
    let p3 = b.place("p3", 0);
    let p4 = b.place("p4", 0);
    let p5 = b.place("p5", 0);
    let p6 = b.place("p6", 0);
    let p7 = b.place("p7", 0);
    // Source t1 feeds the free choice p1 between t2 and t3.
    b.arc_t_p(t1, p1, 1).expect("arc");
    b.arc_p_t(p1, t2, 1).expect("arc");
    b.arc_p_t(p1, t3, 1).expect("arc");
    // Branch 1: t2 -(2)-> p2 -> t4 -(2)-> p4 -> t6.
    b.arc_t_p(t2, p2, 2).expect("arc");
    b.arc_p_t(p2, t4, 1).expect("arc");
    b.arc_t_p(t4, p4, 2).expect("arc");
    b.arc_p_t(p4, t6, 1).expect("arc");
    // Branch 2: t3 -> p3 -> t5 -(2)-> {p5, p6} -> t7 (two places joined at t7).
    b.arc_t_p(t3, p3, 1).expect("arc");
    b.arc_p_t(p3, t5, 1).expect("arc");
    b.arc_t_p(t5, p5, 2).expect("arc");
    b.arc_t_p(t5, p6, 2).expect("arc");
    b.arc_p_t(p5, t7, 1).expect("arc");
    b.arc_p_t(p6, t7, 1).expect("arc");
    // Second independent-rate source: t8 -> p7 -> t9, merging into p4 before t6.
    b.arc_t_p(t8, p7, 1).expect("arc");
    b.arc_p_t(p7, t9, 1).expect("arc");
    b.arc_t_p(t9, p4, 1).expect("arc");
    b.build().expect("figure 5 is a valid net")
}

/// Figure 7: a non-schedulable FCPN — both T-reductions keep a source place that can only
/// provide finitely many tokens, so each reduction is inconsistent and firing its cycle
/// forever accumulates tokens (e.g. in `p4` for `R1`).
pub fn figure7() -> PetriNet {
    let mut b = NetBuilder::new("figure7");
    let t1 = b.transition("t1");
    let t2 = b.transition("t2");
    let t3 = b.transition("t3");
    let t4 = b.transition("t4");
    let t5 = b.transition("t5");
    let t6 = b.transition("t6");
    let t7 = b.transition("t7");
    let p1 = b.place("p1", 0);
    let p2 = b.place("p2", 0);
    let p3 = b.place("p3", 0);
    let p4 = b.place("p4", 0);
    let p5 = b.place("p5", 0);
    let p6 = b.place("p6", 0);
    b.arc_t_p(t1, p1, 1).expect("arc");
    b.arc_p_t(p1, t2, 1).expect("arc");
    b.arc_p_t(p1, t3, 1).expect("arc");
    b.arc_t_p(t2, p2, 1).expect("arc");
    b.arc_p_t(p2, t4, 1).expect("arc");
    b.arc_t_p(t3, p3, 1).expect("arc");
    b.arc_p_t(p3, t5, 1).expect("arc");
    b.arc_t_p(t4, p4, 1).expect("arc");
    b.arc_t_p(t5, p5, 1).expect("arc");
    b.arc_t_p(t5, p6, 1).expect("arc");
    // t6 synchronises the two branches; t7 drains the private part of branch 2.
    b.arc_p_t(p4, t6, 1).expect("arc");
    b.arc_p_t(p5, t6, 1).expect("arc");
    b.arc_p_t(p6, t7, 1).expect("arc");
    b.build().expect("figure 7 is a valid net")
}

/// A parametric chain of `n` free choices used by the scaling ablation: each choice place
/// has two successor transitions which both rejoin before the next choice. The number of
/// T-allocations (and T-reductions) is `2^n`, matching the paper's complexity remark.
pub fn choice_chain(n: usize) -> PetriNet {
    let mut b = NetBuilder::new(format!("choice-chain-{n}"));
    let source = b.transition("src");
    let mut upstream = b.place("c0", 0);
    b.arc_t_p(source, upstream, 1).expect("arc");
    for i in 0..n {
        let a = b.transition(format!("a{i}"));
        let c = b.transition(format!("b{i}"));
        b.arc_p_t(upstream, a, 1).expect("arc");
        b.arc_p_t(upstream, c, 1).expect("arc");
        let join = b.place(format!("j{i}"), 0);
        b.arc_t_p(a, join, 1).expect("arc");
        b.arc_t_p(c, join, 1).expect("arc");
        let next = b.transition(format!("m{i}"));
        b.arc_p_t(join, next, 1).expect("arc");
        let out = b.place(format!("c{}", i + 1), 0);
        b.arc_t_p(next, out, 1).expect("arc");
        upstream = out;
    }
    let sink = b.transition("sink");
    b.arc_p_t(upstream, sink, 1).expect("arc");
    b.build().expect("choice chain is a valid net")
}

/// A parametric marked graph used by the state-space benchmarks: a single cycle of
/// `places` places (`p0 → t0 → p1 → … → p(n−1) → t(n−1) → p0`) with `tokens` tokens
/// initially in `p0`.
///
/// Every distribution of the `tokens` tokens over the `places` places is reachable, so
/// the reachability graph has exactly `C(places + tokens − 1, places − 1)` states — a
/// combinatorially large, *bounded* state space with no data-dependent choices
/// (`marked_ring(12, 6)` has 12 376 states). This complements [`choice_chain`], whose
/// state space is only explorable under a token cut-off.
///
/// # Panics
///
/// Panics if `places` is zero.
pub fn marked_ring(places: usize, tokens: u64) -> PetriNet {
    assert!(places > 0, "a ring needs at least one place");
    let mut b = NetBuilder::new(format!("marked-ring-{places}-{tokens}"));
    let ps: Vec<_> = (0..places)
        .map(|i| b.place(format!("p{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    for i in 0..places {
        let t = b.transition(format!("t{i}"));
        b.arc_p_t(ps[i], t, 1).expect("arc");
        b.arc_t_p(t, ps[(i + 1) % places], 1).expect("arc");
    }
    b.build().expect("marked ring is a valid net")
}

/// A bank of `n` independent two-place cycles, each carrying one token — the product of
/// `n` two-state components, so the reachability graph is the `n`-dimensional hypercube:
/// exactly `2^n` states and `n·2^n` edges (`cycle_bank(14)` has 16 384 states).
///
/// This is the maximally concurrent counterpart of [`marked_ring`]: wide markings (2·n
/// places) with `n` transitions enabled everywhere, which stresses per-state hashing and
/// interning rather than the BFS frontier.
pub fn cycle_bank(n: usize) -> PetriNet {
    let mut b = NetBuilder::new(format!("cycle-bank-{n}"));
    for i in 0..n {
        let idle = b.place(format!("idle{i}"), 1);
        let busy = b.place(format!("busy{i}"), 0);
        let start = b.transition(format!("start{i}"));
        let finish = b.transition(format!("finish{i}"));
        b.arc_p_t(idle, start, 1).expect("arc");
        b.arc_t_p(start, busy, 1).expect("arc");
        b.arc_p_t(busy, finish, 1).expect("arc");
        b.arc_t_p(finish, idle, 1).expect("arc");
    }
    b.build().expect("cycle bank is a valid net")
}

/// A memory bomb: `n` independent source transitions, each feeding its own place.
///
/// The net is tiny — `n` transitions, `n` places — but every source is always
/// enabled, so the reachable markings are all token distributions over `n` places and
/// the state space grows combinatorially with depth (≈ dⁿ/n! markings within firing
/// depth d) while individual token counts climb without bound. It is the adversarial
/// workload for the memory governor: exploration under a [`MemoryBudget`] must fail
/// with a typed `ResourceExhausted` error instead of growing until the OOM killer
/// intervenes, and the daemon's chaos probes fire it at a budgeted server.
///
/// [`MemoryBudget`]: crate::MemoryBudget
pub fn memory_bomb(n: usize) -> PetriNet {
    let mut b = NetBuilder::new(format!("memory-bomb-{n}"));
    for i in 0..n {
        let t = b.transition(format!("src{i}"));
        let p = b.place(format!("acc{i}"), 0);
        b.arc_t_p(t, p, 1).expect("arc");
    }
    b.build().expect("memory bomb is a valid net")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{Classification, InvariantAnalysis, NetClass};

    #[test]
    fn figure1_classification_matches_paper() {
        assert!(figure1a().is_free_choice());
        assert!(!figure1b().is_free_choice());
    }

    #[test]
    fn figure2_is_a_marked_graph_with_known_invariant() {
        let net = figure2();
        assert_eq!(Classification::of(&net).class, NetClass::MarkedGraph);
        let inv = InvariantAnalysis::of(&net);
        assert_eq!(inv.t_semiflows.len(), 1);
        assert_eq!(inv.t_semiflows[0].vector, vec![4, 2, 1]);
    }

    #[test]
    fn figure3_and_4_nets_are_free_choice() {
        assert!(figure3a().is_free_choice());
        assert!(figure3b().is_free_choice());
        assert!(figure4().is_free_choice());
    }

    #[test]
    fn figure5_shape_matches_paper() {
        let net = figure5();
        assert_eq!(net.transition_count(), 9);
        assert_eq!(net.place_count(), 7);
        assert!(net.is_free_choice());
        assert_eq!(net.choice_places().len(), 1);
        // Two independent-rate sources: t1 and t8.
        let sources = net.source_transitions();
        assert_eq!(sources.len(), 2);
        assert_eq!(net.transition_name(sources[0]), "t1");
        assert_eq!(net.transition_name(sources[1]), "t8");
        // p4 is a merge place (t4 and t9 both feed it).
        let p4 = net.place_by_name("p4").unwrap();
        assert!(net.is_merge_place(p4));
    }

    #[test]
    fn figure5_paper_cycles_are_finite_complete_cycles() {
        let net = figure5();
        let by_name = |n: &str| net.transition_by_name(n).unwrap();
        let cycle1: Vec<_> = [
            "t1", "t2", "t4", "t4", "t6", "t6", "t6", "t6", "t8", "t9", "t6",
        ]
        .iter()
        .map(|n| by_name(n))
        .collect();
        let cycle2: Vec<_> = ["t1", "t3", "t5", "t7", "t7", "t8", "t9", "t6"]
            .iter()
            .map(|n| by_name(n))
            .collect();
        let m0 = net.initial_marking();
        assert!(net.is_finite_complete_cycle(m0, &cycle1));
        assert!(net.is_finite_complete_cycle(m0, &cycle2));
    }

    #[test]
    fn figure7_shape_matches_paper() {
        let net = figure7();
        assert_eq!(net.transition_count(), 7);
        assert_eq!(net.place_count(), 6);
        assert!(net.is_free_choice());
    }

    #[test]
    fn figure7_is_inconsistent_when_restricted_to_one_branch() {
        // The full net *is* consistent only through combinations that mix both branches,
        // which a static choice cannot realise; the QSS crate exercises the reductions.
        let net = figure7();
        let inv = InvariantAnalysis::of(&net);
        // No minimal semiflow uses t2 without t3 (they must cooperate through t6), which
        // is exactly why both reductions are inconsistent.
        for s in &inv.t_semiflows {
            let t2 = net.transition_by_name("t2").unwrap();
            let t3 = net.transition_by_name("t3").unwrap();
            assert_eq!(s.contains(t2.index()), s.contains(t3.index()));
        }
    }

    #[test]
    fn marked_ring_is_a_marked_graph_with_binomial_state_space() {
        let net = marked_ring(6, 3);
        assert_eq!(Classification::of(&net).class, NetClass::MarkedGraph);
        assert_eq!(net.initial_marking().total_tokens(), 3);
        let space = crate::statespace::StateSpace::explore(
            &net,
            crate::analysis::ReachabilityOptions::default(),
        );
        // C(6+3-1, 6-1) = C(8, 5) = 56 distributions of 3 tokens over 6 places.
        assert!(space.is_complete());
        assert_eq!(space.state_count(), 56);
    }

    #[test]
    fn cycle_bank_state_space_is_a_hypercube() {
        let net = cycle_bank(6);
        assert_eq!(Classification::of(&net).class, NetClass::MarkedGraph);
        let space = crate::statespace::StateSpace::explore(
            &net,
            crate::analysis::ReachabilityOptions::default(),
        );
        assert!(space.is_complete());
        assert_eq!(space.state_count(), 64);
        assert_eq!(space.edge_count(), 6 * 64);
        assert!(space.dead_states().is_empty());
    }

    #[test]
    fn choice_chain_scales_choices() {
        let net = choice_chain(3);
        assert_eq!(net.choice_places().len(), 3);
        assert!(net.is_free_choice());
        let net = choice_chain(0);
        assert_eq!(net.choice_places().len(), 0);
    }

    #[test]
    fn memory_bomb_exhausts_a_byte_budget_with_a_typed_error() {
        let net = memory_bomb(6);
        assert_eq!(net.source_transitions().len(), 6);
        assert_eq!(net.place_count(), 6);
        // Exhaustion is an `Err`, never a panic and never a truncated space: the same
        // exploration that completes under the marking clamp fails cleanly when a
        // byte budget that cannot hold it is armed.
        let reach = crate::analysis::ReachabilityOptions {
            max_markings: 100_000,
            max_tokens_per_place: 64,
        };
        let err = crate::statespace::StateSpace::try_explore_with(
            &net,
            &crate::statespace::ExploreOptions {
                reach,
                memory: crate::MemoryBudget::with_limit(256 * 1024),
                ..Default::default()
            },
        )
        .expect_err("a 256 KiB budget cannot hold the bomb");
        match err {
            crate::Interrupt::Exhausted(e) => {
                assert_eq!(e.stage, "reachability");
                assert_eq!(e.limit_bytes, 256 * 1024);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
