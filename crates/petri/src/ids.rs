//! Strongly-typed identifiers for places and transitions.
//!
//! Nodes of a [`PetriNet`](crate::PetriNet) are referred to by dense indices wrapped in
//! newtypes so that a place index can never be confused with a transition index
//! (C-NEWTYPE). Identifiers are only meaningful for the net that created them.

use std::fmt;

/// Identifier of a place within a [`PetriNet`](crate::PetriNet).
///
/// # Examples
///
/// ```
/// use fcpn_petri::PlaceId;
/// let p = PlaceId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlaceId(usize);

/// Identifier of a transition within a [`PetriNet`](crate::PetriNet).
///
/// # Examples
///
/// ```
/// use fcpn_petri::TransitionId;
/// let t = TransitionId::new(0);
/// assert_eq!(t.index(), 0);
/// assert_eq!(t.to_string(), "t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransitionId(usize);

impl PlaceId {
    /// Wraps a raw index as a place identifier.
    #[inline]
    pub const fn new(index: usize) -> Self {
        PlaceId(index)
    }

    /// Returns the dense index of this place.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl TransitionId {
    /// Wraps a raw index as a transition identifier.
    #[inline]
    pub const fn new(index: usize) -> Self {
        TransitionId(index)
    }

    /// Returns the dense index of this transition.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<PlaceId> for usize {
    fn from(id: PlaceId) -> usize {
        id.index()
    }
}

impl From<TransitionId> for usize {
    fn from(id: TransitionId) -> usize {
        id.index()
    }
}

/// A node of the bipartite Petri-net graph: either a place or a transition.
///
/// Used by generic graph utilities (pre-set / post-set queries, DOT export).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeId {
    /// A place node.
    Place(PlaceId),
    /// A transition node.
    Transition(TransitionId),
}

impl NodeId {
    /// Returns the place identifier if this node is a place.
    pub fn as_place(self) -> Option<PlaceId> {
        match self {
            NodeId::Place(p) => Some(p),
            NodeId::Transition(_) => None,
        }
    }

    /// Returns the transition identifier if this node is a transition.
    pub fn as_transition(self) -> Option<TransitionId> {
        match self {
            NodeId::Transition(t) => Some(t),
            NodeId::Place(_) => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Place(p) => write!(f, "{p}"),
            NodeId::Transition(t) => write!(f, "{t}"),
        }
    }
}

impl From<PlaceId> for NodeId {
    fn from(p: PlaceId) -> Self {
        NodeId::Place(p)
    }
}

impl From<TransitionId> for NodeId {
    fn from(t: TransitionId) -> Self {
        NodeId::Transition(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_id_roundtrip() {
        let p = PlaceId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(format!("{p}"), "p7");
    }

    #[test]
    fn transition_id_roundtrip() {
        let t = TransitionId::new(12);
        assert_eq!(t.index(), 12);
        assert_eq!(usize::from(t), 12);
        assert_eq!(format!("{t}"), "t12");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(PlaceId::new(1) < PlaceId::new(2));
        assert!(TransitionId::new(0) < TransitionId::new(5));
    }

    #[test]
    fn node_id_projections() {
        let n: NodeId = PlaceId::new(1).into();
        assert_eq!(n.as_place(), Some(PlaceId::new(1)));
        assert_eq!(n.as_transition(), None);
        let m: NodeId = TransitionId::new(2).into();
        assert_eq!(m.as_transition(), Some(TransitionId::new(2)));
        assert_eq!(m.as_place(), None);
        assert_eq!(format!("{n} {m}"), "p1 t2");
    }
}
