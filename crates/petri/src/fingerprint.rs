//! Whole-net structural fingerprints.
//!
//! The quasi-static scheduler's component cache (in `fcpn-qss`) keys memoised invariant
//! analyses by a 128-bit fingerprint folded over a net's structural signature — counts,
//! initial marking and weighted arc lists. This module makes that fold a public,
//! reusable primitive:
//!
//! * [`Fingerprint128`] — the two-lane FNV/SplitMix fold over a `u64` stream (the exact
//!   fold the component cache uses, so fingerprints agree across crates);
//! * [`net_structural_fingerprint`] — the fingerprint of a net's *structure* only
//!   (identical nets up to renaming collide on purpose: verdicts that depend only on the
//!   token game may be shared between them);
//! * [`net_fingerprint`] — the structural stream extended with the net, place and
//!   transition *names*. This is the key a result cache serving rendered output (e.g.
//!   the `fcpn-serve` daemon's JSON responses, which spell out transition names) must
//!   use: two nets that differ only in naming produce different responses.
//!
//! A 128-bit fingerprint is used directly as a cache key. Unlike the component cache —
//! which stores the materialised signature and stream-compares it on every hit, so a
//! collision degrades to an uncached computation — callers keying on the bare
//! fingerprint accept the (astronomically small, ~2⁻¹²⁸ per pair) collision probability.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::fingerprint::{net_fingerprint, net_structural_fingerprint};
//! use fcpn_petri::gallery;
//!
//! let a = gallery::figure4();
//! let b = gallery::figure4();
//! assert_eq!(net_fingerprint(&a), net_fingerprint(&b));
//! assert_ne!(
//!     net_structural_fingerprint(&a),
//!     net_structural_fingerprint(&gallery::figure5())
//! );
//! ```

use crate::analysis::splitmix64;
use crate::PetriNet;

/// Two-lane FNV/SplitMix fold producing a 128-bit fingerprint of a `u64` stream.
///
/// Lane `a` is an FNV-1a variant over SplitMix-diffused words; lane `b` is a
/// golden-ratio multiply–accumulate over independently diffused words. The lanes share
/// no state, so a collision requires both 64-bit folds to collide simultaneously.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint128 {
    a: u64,
    b: u64,
}

impl Default for Fingerprint128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint128 {
    /// A fresh fold (FNV offset bases).
    pub fn new() -> Self {
        Fingerprint128 {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    /// Folds one word into both lanes.
    pub fn fold(&mut self, x: u64) {
        self.a = (self.a ^ splitmix64(x)).wrapping_mul(0x0000_0100_0000_01B3);
        self.b = self
            .b
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(splitmix64(x ^ 0xA5A5_A5A5_A5A5_A5A5));
    }

    /// Folds a byte string: its length, then the bytes packed into little-endian words.
    ///
    /// The length prefix keeps concatenation unambiguous (`"ab" + "c"` and
    /// `"a" + "bc"` fold differently).
    pub fn fold_bytes(&mut self, bytes: &[u8]) {
        self.fold(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
    }

    /// The 128-bit digest (`a` in the high half).
    pub fn finish(self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

/// Streams a net's structural signature into `fp`: place/transition counts, the initial
/// marking, then per transition the weighted input and output arc lists in index order.
///
/// This is the exact `u64` stream the `fcpn-qss` component cache folds for a
/// materialised net, so structural fingerprints agree across the two crates (pinned by a
/// test in `fcpn-qss`).
pub fn fold_net_structure(net: &PetriNet, fp: &mut Fingerprint128) {
    fp.fold(net.place_count() as u64);
    fp.fold(net.transition_count() as u64);
    for &tokens in net.initial_marking().as_slice() {
        fp.fold(tokens);
    }
    for t in net.transitions() {
        fp.fold(net.inputs(t).len() as u64);
        for &(p, w) in net.inputs(t) {
            fp.fold(p.index() as u64);
            fp.fold(w);
        }
        fp.fold(net.outputs(t).len() as u64);
        for &(p, w) in net.outputs(t) {
            fp.fold(p.index() as u64);
            fp.fold(w);
        }
    }
}

/// The 128-bit fingerprint of a net's structure (counts, initial marking, weighted arc
/// lists) — names excluded, matching the component cache's notion of structural
/// identity.
pub fn net_structural_fingerprint(net: &PetriNet) -> u128 {
    let mut fp = Fingerprint128::new();
    fold_net_structure(net, &mut fp);
    fp.finish()
}

/// The 128-bit fingerprint of a whole net *including its naming*: the structural stream
/// of [`net_structural_fingerprint`] followed by the net name and every place and
/// transition name in index order.
///
/// Use this to key caches of rendered output (reports, generated code, JSON responses):
/// renaming a node changes the fingerprint, so a structurally identical but differently
/// named net never receives another net's rendered result.
pub fn net_fingerprint(net: &PetriNet) -> u128 {
    let mut fp = Fingerprint128::new();
    fold_net_structure(net, &mut fp);
    fp.fold_bytes(net.name().as_bytes());
    for p in net.places() {
        fp.fold_bytes(net.place_name(p).as_bytes());
    }
    for t in net.transitions() {
        fp.fold_bytes(net.transition_name(t).as_bytes());
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gallery, NetBuilder};

    #[test]
    fn fingerprints_are_deterministic_and_discriminating() {
        let nets = [
            gallery::figure2(),
            gallery::figure3a(),
            gallery::figure3b(),
            gallery::figure4(),
            gallery::figure5(),
            gallery::figure7(),
            gallery::choice_chain(4),
            gallery::marked_ring(6, 2),
        ];
        let fps: Vec<u128> = nets.iter().map(net_fingerprint).collect();
        for (i, fp) in fps.iter().enumerate() {
            assert_eq!(*fp, net_fingerprint(&nets[i]), "deterministic");
            for (j, other) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(fp, other, "nets {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn renaming_changes_full_but_not_structural_fingerprint() {
        let build = |name: &str, pname: &str| {
            let mut b = NetBuilder::new(name);
            let t = b.transition("t");
            let p = b.place(pname, 1);
            b.arc_p_t(p, t, 1).unwrap();
            b.build().unwrap()
        };
        let a = build("a", "p");
        let b = build("a", "q");
        let c = build("c", "p");
        assert_eq!(
            net_structural_fingerprint(&a),
            net_structural_fingerprint(&b)
        );
        assert_eq!(
            net_structural_fingerprint(&a),
            net_structural_fingerprint(&c)
        );
        assert_ne!(net_fingerprint(&a), net_fingerprint(&b));
        assert_ne!(net_fingerprint(&a), net_fingerprint(&c));
    }

    #[test]
    fn marking_and_weights_reach_the_structural_fingerprint() {
        let build = |tokens: u64, weight: u64| {
            let mut b = NetBuilder::new("m");
            let t = b.transition("t");
            let p = b.place("p", tokens);
            b.arc_p_t(p, t, weight).unwrap();
            b.build().unwrap()
        };
        assert_ne!(
            net_structural_fingerprint(&build(1, 1)),
            net_structural_fingerprint(&build(2, 1))
        );
        assert_ne!(
            net_structural_fingerprint(&build(1, 1)),
            net_structural_fingerprint(&build(1, 2))
        );
    }

    #[test]
    fn fold_bytes_is_prefix_unambiguous() {
        let digest = |parts: &[&str]| {
            let mut fp = Fingerprint128::new();
            for part in parts {
                fp.fold_bytes(part.as_bytes());
            }
            fp.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
        assert_ne!(digest(&["", "x"]), digest(&["x", ""]));
    }
}
