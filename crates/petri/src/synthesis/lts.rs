//! Deterministic labelled transition systems — the input side of net synthesis.
//!
//! An [`Lts`] is a finite deterministic automaton: named states, named labels, at most
//! one `label`-edge out of any state, and a distinguished initial state. Two
//! constructors cover the synthesis workloads:
//!
//! * [`Lts::from_statespace`] lifts a completely explored [`StateSpace`] — states become
//!   `s0, s1, …` in the engine's deterministic BFS order, labels are the net's
//!   transition names;
//! * [`Lts::parse`] reads the line-oriented event-log format below, in the same spirit
//!   as [`crate::io::text`]'s net format.
//!
//! # Text format
//!
//! One statement per line, `#` starts a comment:
//!
//! ```text
//! lts <name>
//! state <name>
//! initial <name>
//! edge <from> <label> <to>
//! trace <label> <label> ...
//! ```
//!
//! States and labels register on first mention; the first state mentioned is initial
//! unless an `initial` line overrides it. A `trace` line replays one observed run from
//! the initial state: each label follows the existing edge when one is present and
//! otherwise extends the system with a fresh state, so a log of traces folds into the
//! deterministic automaton of its prefixes.
//!
//! ```
//! use fcpn_petri::synthesis::Lts;
//!
//! let lts = Lts::parse(
//!     "lts burst\n\
//!      trace req ack\n\
//!      trace req nack\n",
//! )
//! .unwrap();
//! assert_eq!(lts.state_count(), 4); // s0, s0·req, and the two outcomes
//! assert_eq!(lts.label_count(), 3);
//! assert_eq!(lts.successors(lts.initial()).count(), 1);
//! ```

use crate::statespace::StateSpace;
use crate::{PetriError, PetriNet};
use std::collections::HashMap;
use std::fmt::Write as _;

use super::SynthesisError;

/// A finite deterministic labelled transition system.
///
/// States and labels are dense `u32` ids; names are kept for witnesses, serialisation
/// and the daemon's JSON responses. Construction (via [`LtsBuilder`], [`Lts::parse`] or
/// [`Lts::from_statespace`]) guarantees determinism: at most one edge per `(state,
/// label)` pair. Reachability of every state from the initial state is *not* an `Lts`
/// invariant — [`synthesize`](super::synthesize) checks it and reports the first
/// unreachable state as a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lts {
    pub(super) name: String,
    pub(super) states: Vec<String>,
    pub(super) labels: Vec<String>,
    pub(super) initial: u32,
    /// Per-state `(label, target)` lists, sorted by label id.
    pub(super) edges: Vec<Vec<(u32, u32)>>,
    pub(super) edge_count: usize,
}

impl Lts {
    /// The system's name (used as the synthesized net's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of labels (the synthesized net gets one transition per label, dead or
    /// not).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The initial state's id.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// The name of state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn state_name(&self, s: u32) -> &str {
        &self.states[s as usize]
    }

    /// The name of label `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn label_name(&self, l: u32) -> &str {
        &self.labels[l as usize]
    }

    /// Looks a state up by name.
    pub fn state_by_name(&self, name: &str) -> Option<u32> {
        self.states.iter().position(|s| s == name).map(|i| i as u32)
    }

    /// Looks a label up by name.
    pub fn label_by_name(&self, name: &str) -> Option<u32> {
        self.labels.iter().position(|l| l == name).map(|i| i as u32)
    }

    /// The `(label, target)` edges out of state `s`, sorted by label id.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn successors(&self, s: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges[s as usize].iter().copied()
    }

    /// The target of the `label`-edge out of `s`, when one exists.
    pub fn successor(&self, s: u32, label: u32) -> Option<u32> {
        let row = &self.edges[s as usize];
        row.binary_search_by_key(&label, |&(l, _)| l)
            .ok()
            .map(|i| row[i].1)
    }

    /// Whether state `s` has an outgoing `label`-edge.
    pub fn enables(&self, s: u32, label: u32) -> bool {
        self.successor(s, label).is_some()
    }

    /// Lifts a completely explored state space into an LTS: state `i` becomes `s{i}`
    /// (the engine's BFS ids are deterministic, so the naming is too), every net
    /// transition becomes a label — including transitions that never fire — and the
    /// space's edges carry over unchanged.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::IncompleteInput`] when the exploration was truncated by its
    /// marking budget or token cut-off: a partial graph is not the behaviour of the net,
    /// and synthesizing from it would bake the truncation into the output.
    ///
    /// # Examples
    ///
    /// ```
    /// use fcpn_petri::analysis::ReachabilityOptions;
    /// use fcpn_petri::statespace::StateSpace;
    /// use fcpn_petri::synthesis::Lts;
    /// use fcpn_petri::gallery;
    ///
    /// let net = gallery::marked_ring(4, 2);
    /// let space = StateSpace::explore(&net, ReachabilityOptions::default());
    /// let lts = Lts::from_statespace(&net, &space).unwrap();
    /// assert_eq!(lts.state_count(), space.state_count());
    /// assert_eq!(lts.label_count(), net.transition_count());
    /// ```
    pub fn from_statespace(net: &PetriNet, space: &StateSpace) -> Result<Lts, SynthesisError> {
        if !space.is_complete() || !space.frontier().is_empty() {
            return Err(SynthesisError::IncompleteInput);
        }
        let n = space.state_count();
        let mut edges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n);
        let mut edge_count = 0;
        for s in 0..n as u32 {
            let mut row: Vec<(u32, u32)> = space
                .successors(s)
                .map(|(t, to)| (t.index() as u32, to))
                .collect();
            row.sort_unstable();
            edge_count += row.len();
            edges.push(row);
        }
        Ok(Lts {
            name: net.name().to_string(),
            states: (0..n).map(|i| format!("s{i}")).collect(),
            labels: net
                .transitions()
                .map(|t| net.transition_name(t).to_string())
                .collect(),
            initial: 0,
            edges,
            edge_count,
        })
    }

    /// Parses the event-log format (see the module docs above for the grammar).
    ///
    /// # Errors
    ///
    /// [`PetriError::Parse`] with the offending line number for syntactic problems,
    /// conflicting `edge` lines (same source and label, different targets) and inputs
    /// declaring no state at all.
    pub fn parse(input: &str) -> Result<Lts, PetriError> {
        let mut builder: Option<LtsBuilder> = None;
        let mut name = String::from("lts");
        let mut initial: Option<(usize, String)> = None;
        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = lineno + 1;
            let mut parts = line.split_whitespace();
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "lts" => {
                    name = parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing lts name"))?
                        .to_string();
                    match &mut builder {
                        Some(b) => b.name = name.clone(),
                        None => builder = Some(LtsBuilder::new(name.clone())),
                    }
                }
                "state" => {
                    let b = builder.get_or_insert_with(|| LtsBuilder::new(name.clone()));
                    let sname = parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing state name"))?;
                    b.state(sname);
                }
                "initial" => {
                    let sname = parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing initial state name"))?;
                    let b = builder.get_or_insert_with(|| LtsBuilder::new(name.clone()));
                    b.state(sname);
                    initial = Some((lineno, sname.to_string()));
                }
                "edge" => {
                    let from = parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing edge source"))?;
                    let label = parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing edge label"))?;
                    let to = parts
                        .next()
                        .ok_or_else(|| parse_err(lineno, "missing edge target"))?;
                    let b = builder.get_or_insert_with(|| LtsBuilder::new(name.clone()));
                    let from = b.state(from);
                    let label = b.label(label);
                    let to = b.state(to);
                    if let Some(prev) = b.edge_target(from, label) {
                        if prev != to {
                            return Err(parse_err(
                                lineno,
                                &format!(
                                    "state `{}` already has a `{}`-edge to `{}`",
                                    b.states[from as usize],
                                    b.labels[label as usize],
                                    b.states[prev as usize]
                                ),
                            ));
                        }
                    }
                    b.edge(from, label, to);
                }
                "trace" => {
                    let b = builder.get_or_insert_with(|| LtsBuilder::new(name.clone()));
                    if b.states.is_empty() {
                        b.state("s0");
                    }
                    let mut current = 0u32;
                    let mut any = false;
                    for lname in parts {
                        any = true;
                        let label = b.label(lname);
                        current = match b.edge_target(current, label) {
                            Some(next) => next,
                            None => {
                                let fresh = b.fresh_state();
                                b.edge(current, label, fresh);
                                fresh
                            }
                        };
                    }
                    if !any {
                        return Err(parse_err(lineno, "empty trace"));
                    }
                }
                other => {
                    return Err(parse_err(lineno, &format!("unknown keyword `{other}`")));
                }
            }
        }
        let mut builder = builder.ok_or_else(|| parse_err(1, "input declares no state"))?;
        if builder.states.is_empty() {
            return Err(parse_err(1, "input declares no state"));
        }
        if let Some((lineno, sname)) = initial {
            let id =
                builder.state_index.get(&sname).copied().ok_or_else(|| {
                    parse_err(lineno, &format!("unknown initial state `{sname}`"))
                })?;
            builder.initial(id);
        }
        builder.build().map_err(|e| PetriError::Parse {
            line: 1,
            message: e.to_string(),
        })
    }

    /// Serialises the system back to the format accepted by [`Lts::parse`]; state and
    /// label ids survive a round trip because states are re-declared in id order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "lts {}", self.name);
        for s in &self.states {
            let _ = writeln!(out, "state {s}");
        }
        let _ = writeln!(out, "initial {}", self.states[self.initial as usize]);
        for (s, row) in self.edges.iter().enumerate() {
            for &(l, to) in row {
                let _ = writeln!(
                    out,
                    "edge {} {} {}",
                    self.states[s], self.labels[l as usize], self.states[to as usize]
                );
            }
        }
        out
    }

    /// A 128-bit fingerprint of the whole system — structure *and* naming — in the
    /// same two-lane fold as [`net_fingerprint`](crate::fingerprint::net_fingerprint).
    /// The daemon keys its `/synthesize` result cache on this value.
    pub fn fingerprint(&self) -> u128 {
        let mut fp = crate::fingerprint::Fingerprint128::new();
        fp.fold(self.states.len() as u64);
        fp.fold(self.labels.len() as u64);
        fp.fold(u64::from(self.initial));
        for row in &self.edges {
            fp.fold(row.len() as u64);
            for &(l, to) in row {
                fp.fold(u64::from(l));
                fp.fold(u64::from(to));
            }
        }
        fp.fold_bytes(self.name.as_bytes());
        for s in &self.states {
            fp.fold_bytes(s.as_bytes());
        }
        for l in &self.labels {
            fp.fold_bytes(l.as_bytes());
        }
        fp.finish()
    }

    /// Whether two systems are isomorphic: same state and label counts, labels matched
    /// *by name*, and a bijection between states (rooted at the initial states) that
    /// preserves every edge. Both systems must have all states reachable from their
    /// initial state for the rooted walk to cover them; unreachable leftovers make the
    /// comparison `false`.
    pub fn isomorphic(a: &Lts, b: &Lts) -> bool {
        if a.states.len() != b.states.len()
            || a.labels.len() != b.labels.len()
            || a.edge_count != b.edge_count
        {
            return false;
        }
        // Label bijection by name.
        let mut label_map = vec![u32::MAX; a.labels.len()];
        for (i, name) in a.labels.iter().enumerate() {
            match b.label_by_name(name) {
                Some(j) => label_map[i] = j,
                None => return false,
            }
        }
        // Rooted BFS pairing; determinism makes the candidate bijection unique.
        let mut pair = vec![u32::MAX; a.states.len()];
        let mut seen_b = vec![false; b.states.len()];
        pair[a.initial as usize] = b.initial;
        seen_b[b.initial as usize] = true;
        let mut queue = std::collections::VecDeque::from([a.initial]);
        let mut visited = 1usize;
        while let Some(s) = queue.pop_front() {
            let t = pair[s as usize];
            if a.edges[s as usize].len() != b.edges[t as usize].len() {
                return false;
            }
            for &(l, to_a) in &a.edges[s as usize] {
                let Some(to_b) = b.successor(t, label_map[l as usize]) else {
                    return false;
                };
                let mapped = pair[to_a as usize];
                if mapped == u32::MAX {
                    if seen_b[to_b as usize] {
                        return false; // not injective
                    }
                    pair[to_a as usize] = to_b;
                    seen_b[to_b as usize] = true;
                    visited += 1;
                    queue.push_back(to_a);
                } else if mapped != to_b {
                    return false;
                }
            }
        }
        visited == a.states.len()
    }
}

/// Programmatic construction of an [`Lts`].
///
/// States and labels register on first mention ([`LtsBuilder::state`] /
/// [`LtsBuilder::label`] are idempotent by name); [`LtsBuilder::build`] checks
/// determinism and picks state 0 as initial unless [`LtsBuilder::initial`] chose
/// another.
///
/// # Examples
///
/// ```
/// use fcpn_petri::synthesis::LtsBuilder;
///
/// let mut b = LtsBuilder::new("ping");
/// let (idle, busy) = (b.state("idle"), b.state("busy"));
/// let (req, done) = (b.label("req"), b.label("done"));
/// b.edge(idle, req, busy);
/// b.edge(busy, done, idle);
/// let lts = b.build().unwrap();
/// assert_eq!(lts.initial(), idle);
/// assert_eq!(lts.successor(idle, req), Some(busy));
/// ```
#[derive(Debug, Clone)]
pub struct LtsBuilder {
    name: String,
    states: Vec<String>,
    labels: Vec<String>,
    state_index: HashMap<String, u32>,
    label_index: HashMap<String, u32>,
    initial: Option<u32>,
    edges: Vec<(u32, u32, u32)>,
}

impl LtsBuilder {
    /// A fresh builder for a system called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        LtsBuilder {
            name: name.into(),
            states: Vec::new(),
            labels: Vec::new(),
            state_index: HashMap::new(),
            label_index: HashMap::new(),
            initial: None,
            edges: Vec::new(),
        }
    }

    /// Registers (or finds) a state by name and returns its id.
    pub fn state(&mut self, name: impl Into<String>) -> u32 {
        let name = name.into();
        if let Some(&id) = self.state_index.get(&name) {
            return id;
        }
        let id = self.states.len() as u32;
        self.state_index.insert(name.clone(), id);
        self.states.push(name);
        id
    }

    /// Registers (or finds) a label by name and returns its id.
    pub fn label(&mut self, name: impl Into<String>) -> u32 {
        let name = name.into();
        if let Some(&id) = self.label_index.get(&name) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.label_index.insert(name.clone(), id);
        self.labels.push(name);
        id
    }

    /// Declares the initial state (default: the first registered state).
    ///
    /// # Panics
    ///
    /// Panics if `state` was not returned by [`LtsBuilder::state`].
    pub fn initial(&mut self, state: u32) {
        assert!((state as usize) < self.states.len(), "unknown state id");
        self.initial = Some(state);
    }

    /// Adds the edge `from --label--> to`.
    ///
    /// # Panics
    ///
    /// Panics if any id was not returned by the registering methods.
    pub fn edge(&mut self, from: u32, label: u32, to: u32) {
        assert!((from as usize) < self.states.len(), "unknown source state");
        assert!((to as usize) < self.states.len(), "unknown target state");
        assert!((label as usize) < self.labels.len(), "unknown label");
        self.edges.push((from, label, to));
    }

    /// The target of an already-declared `(from, label)` edge, if any.
    fn edge_target(&self, from: u32, label: u32) -> Option<u32> {
        self.edges
            .iter()
            .find(|&&(f, l, _)| f == from && l == label)
            .map(|&(_, _, t)| t)
    }

    /// A fresh auto-named state (`s<k>`, skipping past any clashing declared names).
    fn fresh_state(&mut self) -> u32 {
        let mut k = self.states.len();
        loop {
            let candidate = format!("s{k}");
            if !self.state_index.contains_key(&candidate) {
                return self.state(candidate);
            }
            k += 1;
        }
    }

    /// Finalises the system.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::EmptyInput`] when no state was registered and
    /// [`SynthesisError::Nondeterministic`] when two edges leave the same state with
    /// the same label but different targets (exact duplicate edges are merged).
    pub fn build(self) -> Result<Lts, SynthesisError> {
        if self.states.is_empty() {
            return Err(SynthesisError::EmptyInput);
        }
        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.states.len()];
        for &(from, label, to) in &self.edges {
            let row = &mut edges[from as usize];
            match row.binary_search_by_key(&label, |&(l, _)| l) {
                Ok(i) => {
                    if row[i].1 != to {
                        return Err(SynthesisError::Nondeterministic {
                            state: self.states[from as usize].clone(),
                            label: self.labels[label as usize].clone(),
                        });
                    }
                }
                Err(i) => row.insert(i, (label, to)),
            }
        }
        let edge_count = edges.iter().map(Vec::len).sum();
        Ok(Lts {
            name: self.name,
            states: self.states,
            labels: self.labels,
            initial: self.initial.unwrap_or(0),
            edges,
            edge_count,
        })
    }
}

fn parse_err(line: usize, message: &str) -> PetriError {
    PetriError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ReachabilityOptions;
    use crate::gallery;

    #[test]
    fn parse_edges_and_roundtrip() {
        let text = "lts loop\nedge s0 a s1\nedge s1 b s0\n";
        let lts = Lts::parse(text).unwrap();
        assert_eq!(lts.state_count(), 2);
        assert_eq!(lts.label_count(), 2);
        assert_eq!(lts.initial(), 0);
        let again = Lts::parse(&lts.to_text()).unwrap();
        assert_eq!(lts, again);
        assert!(Lts::isomorphic(&lts, &again));
    }

    #[test]
    fn traces_fold_by_prefix() {
        let lts = Lts::parse("trace a b c\ntrace a b d\ntrace a x\n").unwrap();
        // Shared prefixes merge: s0 -a-> s1 -b-> s2, leaves for c, d and x.
        assert_eq!(lts.label_count(), 5);
        assert_eq!(lts.state_count(), 6);
        let a = lts.label_by_name("a").unwrap();
        let s1 = lts.successor(lts.initial(), a).unwrap();
        assert_eq!(lts.successors(s1).count(), 2); // b and x
    }

    #[test]
    fn conflicting_edges_are_rejected_with_line() {
        let err = Lts::parse("edge s0 a s1\nedge s0 a s2\n").unwrap_err();
        match err {
            PetriError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("already has"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(Lts::parse("").is_err());
        assert!(Lts::parse("lts nothing\n").is_err());
        assert!(matches!(
            LtsBuilder::new("x").build(),
            Err(SynthesisError::EmptyInput)
        ));
    }

    #[test]
    fn initial_line_overrides_first_mention() {
        let lts = Lts::parse("edge a go b\ninitial b\n").unwrap();
        assert_eq!(lts.state_name(lts.initial()), "b");
    }

    #[test]
    fn unknown_keyword_is_rejected() {
        let err = Lts::parse("lts x\nfoo bar\n").unwrap_err();
        assert!(matches!(err, PetriError::Parse { line: 2, .. }));
    }

    #[test]
    fn from_statespace_matches_space_shape() {
        let net = gallery::marked_ring(5, 2);
        let space = crate::statespace::StateSpace::explore(&net, ReachabilityOptions::default());
        let lts = Lts::from_statespace(&net, &space).unwrap();
        assert_eq!(lts.state_count(), space.state_count());
        assert_eq!(lts.edge_count(), space.edge_count());
        assert_eq!(lts.label_count(), net.transition_count());
        assert_eq!(lts.initial(), 0);
    }

    #[test]
    fn incomplete_space_is_rejected() {
        let net = gallery::figure2(); // source transition: unbounded
        let space = crate::statespace::StateSpace::explore(
            &net,
            ReachabilityOptions {
                max_markings: 16,
                max_tokens_per_place: 4,
            },
        );
        assert!(matches!(
            Lts::from_statespace(&net, &space),
            Err(SynthesisError::IncompleteInput)
        ));
    }

    #[test]
    fn isomorphism_is_name_insensitive_on_states_only() {
        let a = Lts::parse("edge x go y\nedge y back x\n").unwrap();
        let b = Lts::parse("edge p go q\nedge q back p\n").unwrap();
        let c = Lts::parse("edge p walk q\nedge q back p\n").unwrap();
        assert!(Lts::isomorphic(&a, &b));
        assert!(!Lts::isomorphic(&a, &c)); // labels match by name
    }

    #[test]
    fn fingerprint_discriminates_and_is_stable() {
        let a = Lts::parse("edge s0 a s1\nedge s1 b s0\n").unwrap();
        let b = Lts::parse("edge s0 a s1\nedge s1 b s1\n").unwrap();
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
