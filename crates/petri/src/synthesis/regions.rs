//! The region engine behind [`synthesize`](super::synthesize).
//!
//! The implementation follows the classic region construction, phrased so that every
//! separation problem reduces to the sparse fraction-free Farkas elimination the
//! invariant analysis already ships (`crate::analysis::farkas_sparse`):
//!
//! 1. **Potentials.** A BFS spanning tree from the initial state assigns each state its
//!    tree-path Parikh vector `ψ(s) ∈ ℤ^labels`. Every region's token count is then an
//!    affine function `σ(s) = σ₀ + Δ·ψ(s)` of a per-label gradient `Δ`.
//! 2. **Cycle equations.** Each non-tree edge closes a cycle whose Parikh vector must
//!    have zero gradient weight: `Δ·(ψ(s) + 1ₑ − ψ(s')) = 0`. Splitting
//!    `Δₑ = prodₑ − consₑ` into non-negative produce/consume halves turns the cycle
//!    system into a homogeneous system over non-negative integers — exactly the
//!    semiflow problem, so its minimal solutions (the extremal region gradients) come
//!    from one Farkas run.
//! 3. **Separation.** States are split by *state separation* (two states must get
//!    different token counts in some region) and non-edges by *event/state separation*
//!    (some region must under-mark a state below a label's consume weight). Single
//!    extremal gradients solve almost every instance; the rare remainder is solved by
//!    searching a non-negative combination `λ` of extremal gradients — again a Farkas
//!    run, on the system `Bλ − μ − t·1 = 0` whose solutions with `t > 0` are exactly
//!    the separating combinations. An instance no combination solves is returned as
//!    the typed witness: no place/transition net realises the input.
//! 4. **Emission.** Every selected region becomes a place (`σ₀` tokens initially,
//!    `consₑ`/`prodₑ` arc weights); every label becomes a transition. The reachable
//!    graph of the result is re-explored and pinned isomorphic to the input unless
//!    [`SynthesisOptions::verify`](super::SynthesisOptions) is disabled.

use std::collections::{HashMap, VecDeque};

use super::lts::Lts;
use super::{SynthesisError, SynthesisOptions, SynthesisStats, SynthesizedNet};
use crate::analysis::{farkas_sparse, ReachabilityOptions};
use crate::cancel::CancelGate;
use crate::statespace::{ExploreOptions, StateSpace, TokenWidth};
use crate::NetBuilder;

/// Stage label for charges issued while building potentials and cycle equations.
pub const STAGE_LTS: &str = "synthesis-lts";
/// Stage label for charges issued while materialising candidate regions.
pub const STAGE_REGIONS: &str = "synthesis-regions";
/// Stage label for charges issued while solving separation problems.
pub const STAGE_SEPARATION: &str = "synthesis-separation";

/// Poll the cancellation token every this many loop iterations (matches the
/// state-space engine's stride).
const CANCEL_STRIDE: u64 = 256;

/// An extremal region gradient: produce/consume weights per label plus the derived
/// per-state potential and per-label source minimum.
struct Candidate {
    prod: Vec<u64>,
    cons: Vec<u64>,
    /// `Δ·ψ(s)` per state.
    d: Vec<i64>,
    /// `min { d[q] | q has an outgoing e-edge }` per label (`None` for dead labels).
    min_src: Vec<Option<i64>>,
}

/// A region selected for emission. `σ(s) = sigma0 + d[s]` is the place's token count
/// in state `s`; `cons`/`prod` may be boosted in lockstep (side conditions) while
/// solving event/state separation.
struct PlaceSpec {
    prod: Vec<u64>,
    cons: Vec<u64>,
    d: Vec<i64>,
    sigma0: u64,
}

impl PlaceSpec {
    fn sigma(&self, s: usize) -> i128 {
        self.sigma0 as i128 + self.d[s] as i128
    }
}

/// Shared read-only context for the run.
struct Ctx<'a> {
    lts: &'a Lts,
    n: usize,
    m: usize,
    /// All `(source, label)` pairs, in (state, label) order.
    edge_list: Vec<(u32, u32)>,
    /// States with an outgoing `e`-edge, per label, ascending.
    sources_by_label: Vec<Vec<u32>>,
}

pub(super) fn run(lts: &Lts, opts: &SynthesisOptions) -> Result<SynthesizedNet, SynthesisError> {
    let n = lts.state_count();
    let m = lts.label_count();
    if n == 0 {
        return Err(SynthesisError::EmptyInput);
    }
    let cancel = &opts.cancel;
    let mut meter = opts.memory.meter();
    let mut gate = CancelGate::new(CANCEL_STRIDE);

    // ---- synthesis-lts: BFS spanning tree, Parikh potentials, cycle equations ----
    meter.charge(
        (n as u64).saturating_mul(m as u64).saturating_mul(8),
        STAGE_LTS,
    )?;
    let mut psi: Vec<Vec<i64>> = vec![Vec::new(); n];
    let mut visited = vec![false; n];
    let root = lts.initial() as usize;
    psi[root] = vec![0i64; m];
    visited[root] = true;
    let mut queue = VecDeque::from([lts.initial()]);
    let mut chords: Vec<(u32, u32, u32)> = Vec::new();
    let mut edge_list: Vec<(u32, u32)> = Vec::with_capacity(lts.edge_count());
    let mut sources_by_label: Vec<Vec<u32>> = vec![Vec::new(); m];
    while let Some(s) = queue.pop_front() {
        for (l, t) in lts.successors(s) {
            gate.check(cancel)?;
            if visited[t as usize] {
                chords.push((s, l, t));
            } else {
                let mut p = psi[s as usize].clone();
                p[l as usize] += 1;
                psi[t as usize] = p;
                visited[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    if let Some(unreached) = visited.iter().position(|&v| !v) {
        return Err(SynthesisError::Unreachable {
            state: lts.state_name(unreached as u32).to_string(),
        });
    }
    for s in 0..n as u32 {
        for (l, _) in lts.successors(s) {
            edge_list.push((s, l));
            sources_by_label[l as usize].push(s);
        }
    }

    // Cycle equations, transposed for the Farkas solver: one sparse row per variable
    // (prod then cons per label), columns indexed by equation.
    let mut var_rows: Vec<Vec<(u32, i128)>> = vec![Vec::new(); 2 * m];
    let mut equations = 0u32;
    let mut coeffs = vec![0i64; m];
    for &(s, l, t) in &chords {
        gate.check(cancel)?;
        let mut nonzero = 0u64;
        for f in 0..m {
            let mut c = psi[s as usize][f] - psi[t as usize][f];
            if f == l as usize {
                c += 1;
            }
            coeffs[f] = c;
            if c != 0 {
                nonzero += 1;
            }
        }
        if nonzero == 0 {
            continue;
        }
        meter.charge(nonzero * 2 * 24, STAGE_LTS)?;
        for (f, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                var_rows[f].push((equations, c as i128));
                var_rows[m + f].push((equations, -(c as i128)));
            }
        }
        equations += 1;
    }

    // ---- synthesis-regions: extremal gradients via the semiflow solver ----
    let (semis, complete) = farkas_sparse(&var_rows, 2 * m);
    if !complete || semis.len() > opts.max_regions {
        return Err(SynthesisError::RegionOverflow);
    }
    let ctx = Ctx {
        lts,
        n,
        m,
        edge_list,
        sources_by_label,
    };
    let mut cands: Vec<Candidate> = Vec::with_capacity(semis.len());
    for sf in &semis {
        gate.check(cancel)?;
        meter.charge(
            (2 * m as u64 + n as u64 + m as u64).saturating_mul(16),
            STAGE_REGIONS,
        )?;
        let prod: Vec<u64> = sf.vector[..m].to_vec();
        let cons: Vec<u64> = sf.vector[m..].to_vec();
        let d = potentials(&psi, &prod, &cons)?;
        let min_src = ctx
            .sources_by_label
            .iter()
            .map(|srcs| srcs.iter().map(|&q| d[q as usize]).min())
            .collect();
        cands.push(Candidate {
            prod,
            cons,
            d,
            min_src,
        });
    }

    // ---- synthesis-separation: state separation by partition refinement ----
    let mut selected: Vec<PlaceSpec> = Vec::new();
    let mut keys: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut ssp_splits = 0usize;
    loop {
        gate.check(cancel)?;
        let mut pair: Option<(u32, u32)> = None;
        {
            let mut seen: HashMap<&[u64], u32> = HashMap::with_capacity(n);
            for s in 0..n as u32 {
                match seen.entry(keys[s as usize].as_slice()) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        pair = Some((*e.get(), s));
                        break;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(s);
                    }
                }
            }
        }
        let Some((a, b)) = pair else { break };
        let Some(ci) = cands
            .iter()
            .position(|c| c.d[a as usize] != c.d[b as usize])
        else {
            return Err(SynthesisError::StateSeparation {
                left: lts.state_name(a).to_string(),
                right: lts.state_name(b).to_string(),
            });
        };
        meter.charge((n as u64).saturating_mul(8), STAGE_SEPARATION)?;
        let place = make_place(
            &ctx,
            cands[ci].prod.clone(),
            cands[ci].cons.clone(),
            cands[ci].d.clone(),
        )?;
        for (s, key) in keys.iter_mut().enumerate() {
            key.push(sigma_u64(&place, s));
        }
        selected.push(place);
        ssp_splits += 1;
    }

    // Dead labels: an empty self-loop place pins each never-observed label disabled.
    for e in 0..m {
        if ctx.sources_by_label[e].is_empty() {
            let mut unit = vec![0u64; m];
            unit[e] = 1;
            selected.push(PlaceSpec {
                prod: unit.clone(),
                cons: unit,
                d: vec![0i64; n],
                sigma0: 0,
            });
        }
    }

    // ---- synthesis-separation: event/state separation ----
    let mut essp_instances = 0usize;
    let mut essp_composed = 0usize;
    for s in 0..n {
        for e in 0..m {
            if ctx.sources_by_label[e].is_empty() || lts.enables(s as u32, e as u32) {
                continue;
            }
            essp_instances += 1;
            gate.check(cancel)?;
            if selected.iter().any(|p| p.sigma(s) < p.cons[e] as i128) {
                continue; // already disabled here
            }
            // Boost an already-selected place when its potential permits: raising
            // cons[e] and prod[e] in lockstep keeps the gradient, and staying at or
            // under the minimum over e's source states keeps every observed edge
            // enabled.
            if let Some(pi) = selected.iter().position(|p| {
                let min_src = ctx.sources_by_label[e]
                    .iter()
                    .map(|&q| p.sigma(q as usize))
                    .min()
                    .expect("label has sources");
                p.sigma(s) < min_src
            }) {
                boost(&mut selected[pi], e, s)?;
                continue;
            }
            // Select a fresh extremal candidate that under-marks `s`.
            if let Some(ci) = cands.iter().position(|c| match c.min_src[e] {
                Some(min_src) => c.d[s] < min_src,
                None => false,
            }) {
                let mut place = make_place(
                    &ctx,
                    cands[ci].prod.clone(),
                    cands[ci].cons.clone(),
                    cands[ci].d.clone(),
                )?;
                if place.sigma(s) >= place.cons[e] as i128 {
                    boost(&mut place, e, s)?;
                }
                selected.push(place);
                continue;
            }
            // Compose a separating region from a non-negative combination of
            // candidates, or prove none exists.
            essp_composed += 1;
            let place = compose(&ctx, &cands, s, e, &mut meter)?;
            selected.push(place);
        }
    }

    // ---- emission ----
    let mut prefix = String::from("r");
    while (0..selected.len()).any(|i| {
        let name = format!("{prefix}{i}");
        lts.label_by_name(&name).is_some()
    }) {
        prefix.insert(0, '_');
    }
    let mut b = NetBuilder::new(lts.name());
    let tids: Vec<_> = (0..m)
        .map(|l| b.transition(lts.label_name(l as u32)))
        .collect();
    for (i, p) in selected.iter().enumerate() {
        let pid = b.place(format!("{prefix}{i}"), p.sigma0);
        for (l, &tid) in tids.iter().enumerate() {
            if p.cons[l] > 0 {
                b.arc_p_t(pid, tid, p.cons[l])
                    .expect("region arcs are unique and positively weighted");
            }
            if p.prod[l] > 0 {
                b.arc_t_p(tid, pid, p.prod[l])
                    .expect("region arcs are unique and positively weighted");
            }
        }
    }
    let net = b
        .build()
        .expect("region places and labels have distinct names");

    if opts.require_free_choice {
        if let Some((place, transition)) = free_choice_violation(&net) {
            return Err(SynthesisError::NotFreeChoice { place, transition });
        }
    }

    // ---- verification: re-explore and pin isomorphism ----
    if opts.verify {
        let max_tok = selected
            .iter()
            .map(|p| (0..n).map(|s| sigma_u64(p, s)).max().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let explore = ExploreOptions {
            reach: ReachabilityOptions {
                max_markings: n + 1,
                max_tokens_per_place: max_tok.max(1),
            },
            threads: 1,
            width: TokenWidth::U64,
            cancel: cancel.clone(),
            memory: opts.memory.clone(),
        };
        let space =
            StateSpace::try_explore_with(&net, &explore).map_err(SynthesisError::Interrupted)?;
        let realized = match Lts::from_statespace(&net, &space) {
            Ok(realized) => realized,
            Err(_) => return Err(SynthesisError::RealizationMismatch),
        };
        if !Lts::isomorphic(lts, &realized) {
            return Err(SynthesisError::RealizationMismatch);
        }
    }

    Ok(SynthesizedNet {
        net,
        stats: SynthesisStats {
            states: n,
            labels: m,
            cycle_equations: equations as usize,
            candidate_regions: cands.len(),
            places: selected.len(),
            ssp_splits,
            essp_instances,
            essp_composed,
            verified: opts.verify,
        },
    })
}

/// `Δ·ψ(s)` for every state, with overflow mapped to the typed error.
fn potentials(psi: &[Vec<i64>], prod: &[u64], cons: &[u64]) -> Result<Vec<i64>, SynthesisError> {
    let m = prod.len();
    let delta: Vec<(usize, i128)> = (0..m)
        .filter_map(|f| {
            let d = prod[f] as i128 - cons[f] as i128;
            (d != 0).then_some((f, d))
        })
        .collect();
    psi.iter()
        .map(|row| {
            let mut acc: i128 = 0;
            for &(f, d) in &delta {
                acc += d * row[f] as i128;
            }
            i64::try_from(acc).map_err(|_| SynthesisError::RegionOverflow)
        })
        .collect()
}

/// Completes a gradient into a region by choosing the smallest admissible `σ₀`: large
/// enough that every state's count is non-negative and every observed edge is enabled.
fn make_place(
    ctx: &Ctx<'_>,
    prod: Vec<u64>,
    cons: Vec<u64>,
    d: Vec<i64>,
) -> Result<PlaceSpec, SynthesisError> {
    let mut sigma0: i128 = 0;
    for &v in &d {
        sigma0 = sigma0.max(-(v as i128));
    }
    for &(q, l) in &ctx.edge_list {
        sigma0 = sigma0.max(cons[l as usize] as i128 - d[q as usize] as i128);
    }
    let sigma0 = u64::try_from(sigma0).map_err(|_| SynthesisError::RegionOverflow)?;
    let place = PlaceSpec {
        prod,
        cons,
        d,
        sigma0,
    };
    // The whole reachable range must fit the token game's u64 counts.
    for s in 0..ctx.n {
        if u64::try_from(place.sigma(s)).is_err() {
            return Err(SynthesisError::RegionOverflow);
        }
    }
    Ok(place)
}

fn sigma_u64(p: &PlaceSpec, s: usize) -> u64 {
    u64::try_from(p.sigma(s)).expect("make_place checked the reachable range")
}

/// Raises `cons[e]` (and `prod[e]`, preserving the gradient) just past `σ(s)`, so the
/// place disables `e` in state `s`. The caller guarantees `σ(s)` is strictly below the
/// minimum over `e`'s source states, so every observed `e`-edge stays enabled.
fn boost(p: &mut PlaceSpec, e: usize, s: usize) -> Result<(), SynthesisError> {
    let new_cons = u64::try_from(p.sigma(s) + 1).map_err(|_| SynthesisError::RegionOverflow)?;
    debug_assert!(new_cons > p.cons[e]);
    let raise = new_cons - p.cons[e];
    p.cons[e] = new_cons;
    p.prod[e] = p.prod[e]
        .checked_add(raise)
        .ok_or(SynthesisError::RegionOverflow)?;
    Ok(())
}

/// Solves one event/state separation instance by non-negative combination: find
/// `λ ≥ 0` with `Σλᵢ·(dᵢ(q) − dᵢ(s)) ≥ 1` for every source state `q` of `e`. Phrased
/// homogeneously (`Bλ − μ − t·1 = 0`, slack `μ ≥ 0`, scale `t ≥ 0`) it is a semiflow
/// problem; a minimal solution with `t > 0` exists iff the instance is solvable.
fn compose(
    ctx: &Ctx<'_>,
    cands: &[Candidate],
    s: usize,
    e: usize,
    meter: &mut crate::budget::BudgetMeter,
) -> Result<PlaceSpec, SynthesisError> {
    let k = cands.len();
    // Distinct inequality rows: one per distinct coefficient vector over candidates.
    let mut row_index: HashMap<Vec<i128>, u32> = HashMap::new();
    for &q in &ctx.sources_by_label[e] {
        let w: Vec<i128> = cands
            .iter()
            .map(|c| c.d[q as usize] as i128 - c.d[s] as i128)
            .collect();
        let next = row_index.len() as u32;
        row_index.entry(w).or_insert(next);
    }
    let rows = row_index.len();
    meter.charge(
        ((rows as u64) * (k as u64 + 2)).saturating_mul(24),
        STAGE_SEPARATION,
    )?;
    // Transposed variable rows: λ₁..λₖ, then one slack per inequality, then t.
    let mut var_rows: Vec<Vec<(u32, i128)>> = vec![Vec::new(); k + rows + 1];
    let mut ordered: Vec<(&Vec<i128>, u32)> = row_index.iter().map(|(w, &r)| (w, r)).collect();
    ordered.sort_by_key(|&(_, r)| r);
    for (w, r) in ordered {
        for (i, &coeff) in w.iter().enumerate() {
            if coeff != 0 {
                var_rows[i].push((r, coeff));
            }
        }
        var_rows[k + r as usize].push((r, -1));
        var_rows[k + rows].push((r, -1));
    }
    let (semis, complete) = farkas_sparse(&var_rows, k + rows + 1);
    if !complete {
        return Err(SynthesisError::RegionOverflow);
    }
    let Some(sf) = semis.iter().find(|sf| sf.vector[k + rows] > 0) else {
        return Err(SynthesisError::EventStateSeparation {
            state: ctx.lts.state_name(s as u32).to_string(),
            label: ctx.lts.label_name(e as u32).to_string(),
        });
    };
    let lambda = &sf.vector[..k];
    let mut prod = vec![0u64; ctx.m];
    let mut cons = vec![0u64; ctx.m];
    let mut d128 = vec![0i128; ctx.n];
    for (i, &li) in lambda.iter().enumerate() {
        if li == 0 {
            continue;
        }
        for f in 0..ctx.m {
            prod[f] = prod[f]
                .checked_add(
                    cands[i].prod[f]
                        .checked_mul(li)
                        .ok_or(SynthesisError::RegionOverflow)?,
                )
                .ok_or(SynthesisError::RegionOverflow)?;
            cons[f] = cons[f]
                .checked_add(
                    cands[i].cons[f]
                        .checked_mul(li)
                        .ok_or(SynthesisError::RegionOverflow)?,
                )
                .ok_or(SynthesisError::RegionOverflow)?;
        }
        for (q, dq) in d128.iter_mut().enumerate().take(ctx.n) {
            *dq += li as i128 * cands[i].d[q] as i128;
        }
    }
    let d: Vec<i64> = d128
        .into_iter()
        .map(|v| i64::try_from(v).map_err(|_| SynthesisError::RegionOverflow))
        .collect::<Result<_, _>>()?;
    let mut place = make_place(ctx, prod, cons, d)?;
    if place.sigma(s) >= place.cons[e] as i128 {
        boost(&mut place, e, s)?;
    }
    Ok(place)
}

/// First `(place, transition)` pair violating the free-choice condition, by name:
/// a choice place whose successor transition has other inputs as well.
fn free_choice_violation(net: &crate::PetriNet) -> Option<(String, String)> {
    for p in net.places() {
        let consumers = net.consumers(p);
        if consumers.len() <= 1 {
            continue;
        }
        for &(t, _) in consumers {
            if net.inputs(t).len() != 1 {
                return Some((
                    net.place_name(p).to_string(),
                    net.transition_name(t).to_string(),
                ));
            }
        }
    }
    None
}
