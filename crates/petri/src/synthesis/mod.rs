//! Region-based net synthesis: from behaviour back to structure.
//!
//! Every other engine in this workspace runs *forward* — net in, behaviour out. This
//! module runs the inverse workload: given a finite deterministic labelled transition
//! system (an explored [`StateSpace`](crate::statespace::StateSpace), or an event log
//! parsed by [`Lts::parse`]), [`synthesize`] computes a place/transition net whose
//! reachability graph is **isomorphic** to the input, or returns a typed
//! [`SynthesisError`] carrying a concrete separation-failure witness when no such net
//! exists.
//!
//! The construction is the classic theory of regions (see `docs/synthesis.md` at the
//! repository root for the full recap): a region assigns every state a token count that
//! is consistent along every edge, each region becomes a place, and the two families of
//! *separation problems* — distinct states must differ somewhere, and a label that does
//! not occur at a state must be disabled by some place — decide realisability. All
//! separation problems here reduce to the sparse fraction-free Farkas elimination that
//! already powers the invariant analysis, so synthesis reuses the exact integer-row
//! machinery of [`crate::analysis::InvariantAnalysis`].
//!
//! Like every long-running engine in the crate, synthesis threads a
//! [`CancelToken`] and a [`MemoryBudget`]
//! through its loops (stage labels [`STAGE_LTS`], [`STAGE_REGIONS`],
//! [`STAGE_SEPARATION`]); an armed-but-unfired guard leaves the output bit-for-bit
//! identical to the unguarded run.
//!
//! # Round trip
//!
//! ```
//! use fcpn_petri::analysis::ReachabilityOptions;
//! use fcpn_petri::statespace::StateSpace;
//! use fcpn_petri::synthesis::{synthesize, Lts, SynthesisOptions};
//! use fcpn_petri::gallery;
//!
//! let net = gallery::marked_ring(4, 2);
//! let space = StateSpace::explore(&net, ReachabilityOptions::default());
//! let lts = Lts::from_statespace(&net, &space).unwrap();
//! let out = synthesize(&lts, &SynthesisOptions::default()).unwrap();
//! // The synthesized net realises the input exactly (synthesize verified it by
//! // re-exploring), with one transition per label.
//! assert_eq!(out.net.transition_count(), net.transition_count());
//! assert!(out.stats.verified);
//! ```
//!
//! # From an event log
//!
//! ```
//! use fcpn_petri::synthesis::{synthesize, Lts, SynthesisOptions};
//!
//! let lts = Lts::parse("lts handshake\nedge s0 req s1\nedge s1 ack s0\n").unwrap();
//! let net = synthesize(&lts, &SynthesisOptions::default()).unwrap().net;
//! assert_eq!(net.transition_count(), 2);
//! assert!(net.place_count() >= 1);
//! ```

mod lts;
mod regions;

pub use lts::{Lts, LtsBuilder};
pub use regions::{STAGE_LTS, STAGE_REGIONS, STAGE_SEPARATION};

use crate::budget::{Interrupt, ResourceExhausted};
use crate::cancel::Cancelled;
use crate::{CancelToken, MemoryBudget, PetriNet};
use std::fmt;

/// Why a transition system could not be synthesized into a net.
///
/// The separation variants carry a concrete witness — the exact pair of states or
/// `(state, label)` instance no region can separate — so a caller (or the daemon's
/// JSON response) can point at the offending behaviour instead of a bare "no".
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The input declares no state at all.
    EmptyInput,
    /// The input state space was truncated by a budget or token cut-off; synthesis
    /// refuses partial behaviour.
    IncompleteInput,
    /// Two edges leave `state` under `label` with different targets.
    Nondeterministic {
        /// The branching state's name.
        state: String,
        /// The ambiguous label's name.
        label: String,
    },
    /// `state` is not reachable from the initial state, so no reachability graph can
    /// contain it.
    Unreachable {
        /// The unreachable state's name.
        state: String,
    },
    /// No region gives `left` and `right` different token counts: every net realising
    /// the edges merges the two states (witness of a state-separation failure).
    StateSeparation {
        /// First state of the inseparable pair.
        left: String,
        /// Second state of the inseparable pair.
        right: String,
    },
    /// No region disables `label` in `state`: every net realising the edges also
    /// enables the label there (witness of an event/state-separation failure).
    EventStateSeparation {
        /// The state the label must not fire in.
        state: String,
        /// The label no region can disable.
        label: String,
    },
    /// The region computation outgrew its bounds: the Farkas elimination blew its row
    /// budget, the candidate basis exceeded [`SynthesisOptions::max_regions`], or a
    /// token count left the representable range.
    RegionOverflow,
    /// [`SynthesisOptions::require_free_choice`] was set and the synthesized net has a
    /// choice place feeding a transition with other inputs.
    NotFreeChoice {
        /// The offending choice place.
        place: String,
        /// Its successor transition with additional inputs.
        transition: String,
    },
    /// The verification pass found the re-explored graph differs from the input. This
    /// indicates a bug in the region engine, never expected in practice.
    RealizationMismatch,
    /// The caller's cancellation token fired or its memory budget ran out.
    Interrupted(Interrupt),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::EmptyInput => write!(f, "transition system has no states"),
            SynthesisError::IncompleteInput => write!(
                f,
                "state space is incomplete (budget or token cut-off); synthesis needs the whole behaviour"
            ),
            SynthesisError::Nondeterministic { state, label } => write!(
                f,
                "nondeterministic: state `{state}` has two `{label}`-edges with different targets"
            ),
            SynthesisError::Unreachable { state } => {
                write!(f, "state `{state}` is unreachable from the initial state")
            }
            SynthesisError::StateSeparation { left, right } => write!(
                f,
                "states `{left}` and `{right}` cannot be separated by any region: no net distinguishes them"
            ),
            SynthesisError::EventStateSeparation { state, label } => write!(
                f,
                "label `{label}` cannot be disabled in state `{state}` by any region: no net realises the input"
            ),
            SynthesisError::RegionOverflow => {
                write!(f, "region computation exceeded its size bounds")
            }
            SynthesisError::NotFreeChoice { place, transition } => write!(
                f,
                "synthesized net is not free-choice: choice place `{place}` feeds transition `{transition}` which has other inputs"
            ),
            SynthesisError::RealizationMismatch => write!(
                f,
                "verification failed: the synthesized net's reachability graph differs from the input"
            ),
            SynthesisError::Interrupted(i) => i.fmt(f),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<Interrupt> for SynthesisError {
    fn from(i: Interrupt) -> Self {
        SynthesisError::Interrupted(i)
    }
}

impl From<Cancelled> for SynthesisError {
    fn from(_: Cancelled) -> Self {
        SynthesisError::Interrupted(Interrupt::Cancelled)
    }
}

impl From<ResourceExhausted> for SynthesisError {
    fn from(e: ResourceExhausted) -> Self {
        SynthesisError::Interrupted(Interrupt::Exhausted(e))
    }
}

/// Knobs for [`synthesize`]. The default synthesizes any place/transition net,
/// verifies the result by re-exploration, and never cancels or meters.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOptions {
    /// Reject the result with [`SynthesisError::NotFreeChoice`] (including the
    /// offending place/transition pair) when the emitted net falls outside the
    /// free-choice class. Off by default: region synthesis targets general
    /// place/transition nets, and the check is a post-hoc classification.
    pub require_free_choice: bool,
    /// Re-explore the emitted net and pin its reachability graph isomorphic to the
    /// input ([`SynthesisError::RealizationMismatch`] otherwise). On by default; the
    /// re-exploration is bounded by the input's own size so it never dominates.
    pub verify: bool,
    /// Upper bound on the extremal-region basis; a larger basis returns
    /// [`SynthesisError::RegionOverflow`] instead of consuming unbounded time.
    pub max_regions: usize,
    /// Cooperative cancellation, polled every few hundred iterations in every stage.
    /// A token that never fires leaves the result bit-for-bit identical.
    pub cancel: CancelToken,
    /// Byte budget charged before every significant allocation (stages
    /// [`STAGE_LTS`], [`STAGE_REGIONS`], [`STAGE_SEPARATION`], plus the verification
    /// re-exploration's `reachability`). A budget that never exhausts leaves the
    /// result bit-for-bit identical.
    pub memory: MemoryBudget,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            require_free_choice: false,
            verify: true,
            max_regions: 4096,
            cancel: CancelToken::never(),
            memory: MemoryBudget::unlimited(),
        }
    }
}

/// Counters describing one synthesis run, reported alongside the net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisStats {
    /// States in the input system.
    pub states: usize,
    /// Labels in the input system (= transitions in the output net).
    pub labels: usize,
    /// Independent cycle equations the spanning tree produced.
    pub cycle_equations: usize,
    /// Extremal region gradients in the Farkas basis.
    pub candidate_regions: usize,
    /// Places emitted (= regions selected).
    pub places: usize,
    /// State-separation refinement steps (each selects one region).
    pub ssp_splits: usize,
    /// Event/state-separation instances examined.
    pub essp_instances: usize,
    /// Instances that needed a composed (non-extremal) region.
    pub essp_composed: usize,
    /// Whether the result was verified by re-exploration.
    pub verified: bool,
}

/// A synthesized net plus the run's counters.
#[derive(Debug, Clone)]
pub struct SynthesizedNet {
    /// The emitted net; its reachability graph realises the input system.
    pub net: PetriNet,
    /// Size and effort counters for benchmarks and the daemon's response body.
    pub stats: SynthesisStats,
}

/// Synthesizes a place/transition net realising `lts`: the net's reachability graph is
/// isomorphic to the input (verified by re-exploration unless
/// [`SynthesisOptions::verify`] is off).
///
/// See the [module docs](self) for the construction and `docs/synthesis.md` for the
/// theory. The run is deterministic: the same input and options produce the same net,
/// bit for bit, and armed-but-unfired cancellation/budget guards change nothing.
///
/// # Errors
///
/// Typed [`SynthesisError`]s: separation failures carry the offending witness, inputs
/// with unreachable states or truncated explorations are rejected up front, and a
/// fired [`CancelToken`] or exhausted [`MemoryBudget`] surfaces as
/// [`SynthesisError::Interrupted`].
pub fn synthesize(lts: &Lts, options: &SynthesisOptions) -> Result<SynthesizedNet, SynthesisError> {
    regions::run(lts, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ReachabilityOptions;
    use crate::statespace::StateSpace;
    use crate::{gallery, Interrupt};

    fn roundtrip(net: &PetriNet) -> SynthesizedNet {
        let space = StateSpace::explore(net, ReachabilityOptions::default());
        let lts = Lts::from_statespace(net, &space).expect("complete space");
        synthesize(&lts, &SynthesisOptions::default()).expect("synthesizable")
    }

    #[test]
    fn figure1a_roundtrips() {
        let out = roundtrip(&gallery::figure1a());
        assert!(out.stats.verified);
        assert_eq!(out.stats.labels, gallery::figure1a().transition_count());
    }

    #[test]
    fn cycle_bank_roundtrips() {
        let out = roundtrip(&gallery::cycle_bank(3));
        assert!(out.stats.places >= 1);
    }

    #[test]
    fn marked_ring_roundtrips() {
        roundtrip(&gallery::marked_ring(5, 2));
    }

    #[test]
    fn event_log_synthesizes_a_cycle() {
        let lts = Lts::parse("lts loop\nedge s0 a s1\nedge s1 b s0\n").unwrap();
        let out = synthesize(&lts, &SynthesisOptions::default()).unwrap();
        assert_eq!(out.net.transition_count(), 2);
        assert!(out.stats.verified);
    }

    #[test]
    fn diamond_with_distinct_sinks_is_state_unseparable() {
        // s0 -a-> s1 -b-> s3 and s0 -b-> s2 -a-> s4: s3 and s4 share the Parikh
        // vector {a, b}, so every region marks them identically — no net keeps them
        // apart.
        let lts = Lts::parse("edge s0 a s1\nedge s0 b s2\nedge s1 b s3\nedge s2 a s4\n").unwrap();
        let err = synthesize(&lts, &SynthesisOptions::default()).unwrap_err();
        assert!(
            matches!(err, SynthesisError::StateSeparation { .. }),
            "{err}"
        );
    }

    #[test]
    fn mid_chain_disabled_label_is_event_unseparable() {
        // b self-loops at s0 and s2 but must be silent at s1, which sits between
        // them on an `a`-chain: any region needs both Δa < 0 and Δa > 0.
        let lts = Lts::parse("edge s0 a s1\nedge s1 a s2\nedge s0 b s0\nedge s2 b s2\n").unwrap();
        let err = synthesize(&lts, &SynthesisOptions::default()).unwrap_err();
        match err {
            SynthesisError::EventStateSeparation { state, label } => {
                assert_eq!(state, "s1");
                assert_eq!(label, "b");
            }
            other => panic!("expected an event/state witness, got {other}"),
        }
    }

    #[test]
    fn unreachable_state_is_rejected() {
        let lts = Lts::parse("edge s0 a s1\nstate lost\n").unwrap();
        let err = synthesize(&lts, &SynthesisOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::Unreachable { ref state } if state == "lost"
        ));
    }

    #[test]
    fn dead_labels_stay_dead() {
        // Label `never` has no edge; the synthesized net must not enable it anywhere.
        let mut b = LtsBuilder::new("with-dead");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let a = b.label("a");
        let back = b.label("b");
        let _never = b.label("never");
        b.edge(s0, a, s1);
        b.edge(s1, back, s0);
        let lts = b.build().unwrap();
        let out = synthesize(&lts, &SynthesisOptions::default()).unwrap();
        assert_eq!(out.net.transition_count(), 3);
        // Verified isomorphic ⇒ `never` fires nowhere in the reachability graph.
        assert!(out.stats.verified);
    }

    #[test]
    fn same_label_two_cycle_is_state_unseparable() {
        // s0 -a-> s1 -a-> s0: the cycle forces the `a`-gradient to zero, so no
        // region tells the two states apart.
        let lts = Lts::parse("edge s0 a s1\nedge s1 a s0\n").unwrap();
        let err = synthesize(&lts, &SynthesisOptions::default()).unwrap_err();
        assert!(
            matches!(err, SynthesisError::StateSeparation { .. }),
            "{err}"
        );
    }

    #[test]
    fn cancelled_token_interrupts() {
        let net = gallery::marked_ring(5, 2);
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        let lts = Lts::from_statespace(&net, &space).unwrap();
        let options = SynthesisOptions {
            cancel: {
                let t = crate::CancelToken::new();
                t.cancel();
                t
            },
            ..SynthesisOptions::default()
        };
        let err = synthesize(&lts, &options).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::Interrupted(Interrupt::Cancelled)
        ));
    }

    #[test]
    fn tiny_budget_exhausts_in_a_synthesis_stage() {
        let net = gallery::marked_ring(5, 2);
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        let lts = Lts::from_statespace(&net, &space).unwrap();
        let options = SynthesisOptions {
            memory: MemoryBudget::with_limit(16),
            ..SynthesisOptions::default()
        };
        match synthesize(&lts, &options).unwrap_err() {
            SynthesisError::Interrupted(Interrupt::Exhausted(e)) => {
                assert!(e.stage.starts_with("synthesis-"), "stage {}", e.stage);
            }
            other => panic!("expected exhaustion, got {other}"),
        }
    }

    #[test]
    fn armed_but_unreached_guards_change_nothing() {
        let net = gallery::marked_ring(5, 2);
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        let lts = Lts::from_statespace(&net, &space).unwrap();
        let plain = synthesize(&lts, &SynthesisOptions::default()).unwrap();
        let guarded = synthesize(
            &lts,
            &SynthesisOptions {
                cancel: crate::CancelToken::new(),
                memory: MemoryBudget::with_limit(1 << 30),
                ..SynthesisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            crate::io::to_text(&plain.net),
            crate::io::to_text(&guarded.net)
        );
        assert_eq!(plain.stats, guarded.stats);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let net = gallery::cycle_bank(3);
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        let lts = Lts::from_statespace(&net, &space).unwrap();
        let a = synthesize(&lts, &SynthesisOptions::default()).unwrap();
        let b = synthesize(&lts, &SynthesisOptions::default()).unwrap();
        assert_eq!(crate::io::to_text(&a.net), crate::io::to_text(&b.net));
        assert_eq!(
            crate::fingerprint::net_fingerprint(&a.net),
            crate::fingerprint::net_fingerprint(&b.net)
        );
    }
}
