//! Markings: token distributions over the places of a net.

use crate::{PetriError, PlaceId, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A marking assigns a non-negative number of tokens to every place of a net.
///
/// The marking is stored densely, indexed by [`PlaceId`]. A marking is only meaningful
/// together with the [`PetriNet`](crate::PetriNet) whose places it describes; the net's
/// firing methods check the length on entry.
///
/// # Examples
///
/// ```
/// use fcpn_petri::{Marking, PlaceId};
/// let mut m = Marking::zeroes(3);
/// m.set(PlaceId::new(1), 2);
/// assert_eq!(m.tokens(PlaceId::new(1)), 2);
/// assert_eq!(m.total_tokens(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// Creates a marking with `places` places, all empty.
    pub fn zeroes(places: usize) -> Self {
        Marking {
            tokens: vec![0; places],
        }
    }

    /// Creates a marking from an explicit token vector.
    pub fn from_vec(tokens: Vec<u64>) -> Self {
        Marking { tokens }
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for this marking.
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.index()]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for this marking.
    pub fn set(&mut self, place: PlaceId, count: u64) {
        self.tokens[place.index()] = count;
    }

    /// Adds `count` tokens to `place`, reporting overflow.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::TokenOverflow`] if the place count would exceed `u64::MAX`.
    pub fn add(&mut self, place: PlaceId, count: u64) -> Result<()> {
        let slot = &mut self.tokens[place.index()];
        *slot = slot
            .checked_add(count)
            .ok_or(PetriError::TokenOverflow(place))?;
        Ok(())
    }

    /// Removes `count` tokens from `place`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::StructuralViolation`] if fewer than `count` tokens are present.
    pub fn remove(&mut self, place: PlaceId, count: u64) -> Result<()> {
        let slot = &mut self.tokens[place.index()];
        *slot = slot.checked_sub(count).ok_or_else(|| {
            PetriError::StructuralViolation(format!(
                "cannot remove {count} tokens from {place} holding {slot}"
            ))
        })?;
        Ok(())
    }

    /// Total number of tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.tokens.iter().sum()
    }

    /// Largest per-place token count (useful for k-boundedness reporting).
    pub fn max_tokens(&self) -> u64 {
        self.tokens.iter().copied().max().unwrap_or(0)
    }

    /// Returns `true` if every place holds at least as many tokens as in `other`.
    ///
    /// This is the component-wise `>=` used by coverability-style unboundedness
    /// detection: if a path leads from `other` to a strictly larger `self`, the pumped
    /// suffix can repeat forever and the net is unbounded along that path.
    pub fn covers(&self, other: &Marking) -> bool {
        self.tokens.len() == other.tokens.len()
            && self
                .tokens
                .iter()
                .zip(other.tokens.iter())
                .all(|(a, b)| a >= b)
    }

    /// Returns `true` if `self` covers `other` and holds strictly more tokens in some place.
    pub fn strictly_covers(&self, other: &Marking) -> bool {
        self.covers(other) && self.tokens != other.tokens
    }

    /// Iterates over `(place, tokens)` pairs, including empty places.
    pub fn iter(&self) -> impl Iterator<Item = (PlaceId, u64)> + '_ {
        self.tokens
            .iter()
            .enumerate()
            .map(|(i, &k)| (PlaceId::new(i), k))
    }

    /// Iterates over the places currently holding at least one token.
    pub fn marked_places(&self) -> impl Iterator<Item = (PlaceId, u64)> + '_ {
        self.iter().filter(|&(_, k)| k > 0)
    }

    /// Exposes the underlying token vector.
    pub fn as_slice(&self) -> &[u64] {
        &self.tokens
    }

    /// Consumes the marking and returns the underlying token vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.tokens
    }
}

impl Index<PlaceId> for Marking {
    type Output = u64;

    fn index(&self, place: PlaceId) -> &u64 {
        &self.tokens[place.index()]
    }
}

impl IndexMut<PlaceId> for Marking {
    fn index_mut(&mut self, place: PlaceId) -> &mut u64 {
        &mut self.tokens[place.index()]
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, k) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u64>> for Marking {
    fn from(tokens: Vec<u64>) -> Self {
        Marking::from_vec(tokens)
    }
}

impl FromIterator<u64> for Marking {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Marking {
            tokens: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Marking::zeroes(4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.total_tokens(), 0);
        m.set(PlaceId::new(2), 5);
        assert_eq!(m[PlaceId::new(2)], 5);
        m[PlaceId::new(0)] = 1;
        assert_eq!(m.total_tokens(), 6);
        assert_eq!(m.max_tokens(), 5);
    }

    #[test]
    fn add_and_remove() {
        let mut m = Marking::from_vec(vec![1, 0]);
        m.add(PlaceId::new(1), 3).unwrap();
        assert_eq!(m.tokens(PlaceId::new(1)), 3);
        m.remove(PlaceId::new(1), 2).unwrap();
        assert_eq!(m.tokens(PlaceId::new(1)), 1);
        assert!(m.remove(PlaceId::new(1), 5).is_err());
    }

    #[test]
    fn add_overflow_is_reported() {
        let mut m = Marking::from_vec(vec![u64::MAX]);
        let err = m.add(PlaceId::new(0), 1).unwrap_err();
        assert_eq!(err, PetriError::TokenOverflow(PlaceId::new(0)));
    }

    #[test]
    fn covering_relation() {
        let a = Marking::from_vec(vec![1, 2, 0]);
        let b = Marking::from_vec(vec![1, 1, 0]);
        assert!(a.covers(&b));
        assert!(a.strictly_covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert!(!a.strictly_covers(&a));
        let c = Marking::from_vec(vec![1, 1]);
        assert!(!a.covers(&c));
    }

    #[test]
    fn display_matches_paper_notation() {
        let m = Marking::from_vec(vec![0, 0]);
        assert_eq!(m.to_string(), "(0, 0)");
        let m = Marking::from_vec(vec![4, 2, 1]);
        assert_eq!(m.to_string(), "(4, 2, 1)");
    }

    #[test]
    fn marked_places_skips_empty() {
        let m = Marking::from_vec(vec![0, 3, 0, 1]);
        let marked: Vec<_> = m.marked_places().collect();
        assert_eq!(marked, vec![(PlaceId::new(1), 3), (PlaceId::new(3), 1)]);
    }

    #[test]
    fn from_iterator() {
        let m: Marking = [1u64, 2, 3].into_iter().collect();
        assert_eq!(m.as_slice(), &[1, 2, 3]);
        assert_eq!(m.clone().into_vec(), vec![1, 2, 3]);
    }
}
