//! Byte-budgeted engine allocations: the memory governor's library half.
//!
//! Every other resource axis in the workspace is guarded — marking budgets, step
//! budgets, deadlines, cooperative cancellation — but bytes were not: a hostile net
//! with wide markings grows the token arenas, hash tables and CSR adjacency without
//! limit until the OOM killer destroys the process. A [`MemoryBudget`] closes that
//! axis: large allocation sites charge it *before* growing, and when the budget is
//! exhausted the engine abandons the stage with a typed [`ResourceExhausted`] error —
//! never an abort, never a silently truncated result (exhaustion is an `Err`, not a
//! `complete = false`).
//!
//! The design mirrors [`CancelToken`](crate::CancelToken):
//!
//! * the default handle ([`MemoryBudget::unlimited`]) carries no allocation and no
//!   atomic — charging it is a branch on a `None` — so threading budgets through
//!   every engine entry point costs nothing for callers that never limit;
//! * an armed budget is one `Arc` holding the byte limit, a shared in-use counter and
//!   a **sticky** exhaustion flag: once any charge has failed, every later observer
//!   agrees, which makes racy polling across the parallel explorer's shards safe;
//! * hot loops charge through a [`BudgetMeter`] — a per-caller reservation cache that
//!   draws down a local allowance and only touches the shared counter when the
//!   allowance is empty, so per-element charges cost an integer compare, not an
//!   atomic RMW.
//!
//! Determinism: charges the engines issue are pure functions of the canonical
//! exploration (the cost model below), so the same net under the same budget fails at
//! the same stage with the same error — sequential or parallel, any thread count. An
//! armed budget that is never exhausted perturbs nothing: outputs are bit-for-bit
//! identical to the unlimited default.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::cancel::Cancelled;

/// Bytes a [`BudgetMeter`] reserves from the shared counter per refill.
///
/// Large enough that per-state charges in the explorers amortise the atomic RMW to
/// noise, small enough that the unreturned tail of a reservation never matters.
const METER_CHUNK: u64 = 64 * 1024;

/// The typed error a charge site returns when the budget cannot cover a growth.
///
/// Exhaustion never panics and never truncates: the failing stage returns this error
/// and the session/workspace that issued the charge remains usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceExhausted {
    /// The budget's byte limit.
    pub limit_bytes: u64,
    /// Bytes the failing reservation asked for.
    pub requested_bytes: u64,
    /// The engine stage that issued the charge (e.g. `"reachability"`).
    pub stage: &'static str,
}

impl fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory budget exhausted in {}: {} more bytes requested against a {}-byte limit",
            self.stage, self.requested_bytes, self.limit_bytes
        )
    }
}

impl Error for ResourceExhausted {}

/// Why a fallible engine loop stopped early: the caller cancelled it, or its memory
/// budget ran out.
///
/// This is the error type of every fallible engine entry point that both polls a
/// [`CancelToken`](crate::CancelToken) and charges a [`MemoryBudget`]. Both triggers
/// share one type so threading a new guard axis never changes a signature again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The stage's cancellation token fired.
    Cancelled,
    /// A charge against the stage's memory budget failed.
    Exhausted(ResourceExhausted),
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => Cancelled.fmt(f),
            Interrupt::Exhausted(e) => e.fmt(f),
        }
    }
}

impl Error for Interrupt {}

impl From<Cancelled> for Interrupt {
    fn from(_: Cancelled) -> Self {
        Interrupt::Cancelled
    }
}

impl From<ResourceExhausted> for Interrupt {
    fn from(e: ResourceExhausted) -> Self {
        Interrupt::Exhausted(e)
    }
}

/// Shared accounting state; one allocation per armed budget, none for
/// [`MemoryBudget::unlimited`].
#[derive(Debug)]
struct Inner {
    limit: u64,
    used: AtomicU64,
    exhausted: AtomicBool,
}

/// A cloneable byte-budget handle threaded through the engine's allocation sites.
///
/// Clones share the same accounting: bytes charged through any clone draw down the
/// same limit. See the [module docs](self) for the charging contract.
///
/// # Examples
///
/// ```
/// use fcpn_petri::MemoryBudget;
///
/// let budget = MemoryBudget::with_limit(1024);
/// assert!(budget.charge(512, "example").is_ok());
/// assert_eq!(budget.bytes_in_use(), 512);
/// let err = budget.charge(4096, "example").unwrap_err();
/// assert_eq!(err.limit_bytes, 1024);
/// assert!(budget.is_exhausted(), "exhaustion is sticky");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryBudget {
    inner: Option<Arc<Inner>>,
}

impl MemoryBudget {
    /// A budget that never exhausts — the zero-cost default for every engine options
    /// struct. Charging it is a branch on `None`; no allocation, no atomics.
    #[must_use]
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget { inner: None }
    }

    /// An armed budget of `limit_bytes`. Charges succeed while the total stays at or
    /// under the limit and fail (stickily) once a charge would cross it.
    #[must_use]
    pub fn with_limit(limit_bytes: u64) -> MemoryBudget {
        MemoryBudget {
            inner: Some(Arc::new(Inner {
                limit: limit_bytes,
                used: AtomicU64::new(0),
                exhausted: AtomicBool::new(false),
            })),
        }
    }

    /// Whether this budget can ever exhaust (`false` only for
    /// [`MemoryBudget::unlimited`]).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The byte limit, or `None` for an unlimited budget.
    #[must_use]
    pub fn limit_bytes(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.limit)
    }

    /// Bytes currently charged (0 for an unlimited budget).
    #[must_use]
    pub fn bytes_in_use(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.used.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Whether any charge has ever failed. Sticky: once `true`, `true` forever — the
    /// same monotonicity [`CancelToken`](crate::CancelToken) has, so the parallel
    /// explorer's coordinator can poll it racily.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.exhausted.load(Ordering::Acquire))
    }

    /// Charges `bytes` against the budget, failing (and leaving the accounting
    /// unchanged) when the charge would cross the limit.
    ///
    /// # Errors
    ///
    /// [`ResourceExhausted`] when the charge does not fit; the budget is then marked
    /// exhausted for every observer.
    #[inline]
    pub fn charge(&self, bytes: u64, stage: &'static str) -> Result<(), ResourceExhausted> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        // Compare-exchange rather than fetch_add-then-rollback: a failing charge must
        // never transiently inflate `used`, or a concurrent charge that would fit
        // could spuriously fail and stickily exhaust the budget.
        let mut current = inner.used.load(Ordering::Acquire);
        loop {
            // `current <= limit` is an invariant (only in-limit values are ever
            // installed), so the subtraction cannot underflow.
            if bytes > inner.limit - current {
                inner.exhausted.store(true, Ordering::Release);
                return Err(ResourceExhausted {
                    limit_bytes: inner.limit,
                    requested_bytes: bytes,
                    stage,
                });
            }
            match inner.used.compare_exchange_weak(
                current,
                current + bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => current = seen,
            }
        }
    }

    /// Returns previously charged bytes to the budget (saturating at zero). Does not
    /// clear the sticky exhaustion flag — an exhausted stage stays failed.
    pub fn release(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            let mut current = inner.used.load(Ordering::Acquire);
            loop {
                let next = current.saturating_sub(bytes);
                match inner.used.compare_exchange_weak(
                    current,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// A per-caller reservation cache for hot loops: charges drawn from a local
    /// allowance refilled in 64 KiB (`METER_CHUNK`) steps, so the per-element cost
    /// is an integer compare (and a single branch when the budget is unarmed).
    #[must_use]
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            budget: self.clone(),
            held: 0,
        }
    }
}

/// Budgets compare by identity: two handles are equal when they share the same
/// accounting (or are both [`MemoryBudget::unlimited`]), mirroring the "charging one
/// charges the other" relation. This keeps derived `PartialEq` on options structs
/// meaningful.
impl PartialEq for MemoryBudget {
    fn eq(&self, other: &MemoryBudget) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for MemoryBudget {}

/// A per-caller reservation cache over a [`MemoryBudget`].
///
/// The meter holds a locally reserved allowance; [`charge`](BudgetMeter::charge)
/// draws it down without touching the shared counter and refills it in fixed chunks
/// when it runs dry. Because the refill points are a pure function of the sequence of
/// charges, two engines issuing the same charge sequence against equal budgets fail
/// at the same charge with the same error — the property the sequential-vs-parallel
/// determinism tests pin.
///
/// Dropping the meter returns the unspent allowance to the budget.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: MemoryBudget,
    /// Locally reserved bytes not yet consumed by charges.
    held: u64,
}

impl BudgetMeter {
    /// Charges `bytes` through the local allowance.
    ///
    /// # Errors
    ///
    /// [`ResourceExhausted`] when refilling the allowance from the shared budget
    /// fails. The meter stays usable (and keeps failing) after an error.
    #[inline]
    pub fn charge(&mut self, bytes: u64, stage: &'static str) -> Result<(), ResourceExhausted> {
        if self.budget.inner.is_none() {
            return Ok(());
        }
        if bytes <= self.held {
            self.held -= bytes;
            return Ok(());
        }
        self.refill(bytes, stage)
    }

    /// Cold path of [`charge`](BudgetMeter::charge): reserve the shortfall (rounded
    /// up to the chunk size) from the shared counter.
    fn refill(&mut self, bytes: u64, stage: &'static str) -> Result<(), ResourceExhausted> {
        let need = bytes - self.held;
        let reserve = need.max(METER_CHUNK);
        self.budget.charge(reserve, stage)?;
        // Left-to-right: `reserve >= bytes - held`, so `held + reserve` covers
        // `bytes`, but `reserve - bytes` alone underflows whenever a charge larger
        // than the chunk arrives while an allowance is held.
        self.held = self.held + reserve - bytes;
        Ok(())
    }

    /// The budget this meter draws from.
    #[must_use]
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }
}

impl Drop for BudgetMeter {
    fn drop(&mut self) {
        if self.held > 0 {
            self.budget.release(self.held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_free_and_never_exhausts() {
        let budget = MemoryBudget::unlimited();
        assert!(!budget.is_armed());
        assert_eq!(budget.limit_bytes(), None);
        assert!(budget.charge(u64::MAX, "test").is_ok());
        assert_eq!(budget.bytes_in_use(), 0);
        assert!(!budget.is_exhausted());
        assert_eq!(budget, MemoryBudget::default());
    }

    #[test]
    fn charges_accumulate_and_release_refunds() {
        let budget = MemoryBudget::with_limit(100);
        budget.charge(40, "a").unwrap();
        budget.charge(60, "b").unwrap();
        assert_eq!(budget.bytes_in_use(), 100);
        budget.release(30);
        assert_eq!(budget.bytes_in_use(), 70);
        budget.release(1000);
        assert_eq!(budget.bytes_in_use(), 0, "release saturates at zero");
    }

    #[test]
    fn failed_charge_is_sticky_and_leaves_accounting_unchanged() {
        let budget = MemoryBudget::with_limit(100);
        budget.charge(90, "setup").unwrap();
        let err = budget.charge(20, "growth").unwrap_err();
        assert_eq!(
            err,
            ResourceExhausted {
                limit_bytes: 100,
                requested_bytes: 20,
                stage: "growth",
            }
        );
        assert_eq!(budget.bytes_in_use(), 90, "failed charge is rolled back");
        assert!(budget.is_exhausted());
        let clone = budget.clone();
        assert!(clone.is_exhausted(), "exhaustion is shared across clones");
        assert!(err.to_string().contains("growth"));
    }

    #[test]
    fn clones_share_accounting_and_equality_is_identity() {
        let a = MemoryBudget::with_limit(1000);
        let b = a.clone();
        b.charge(600, "x").unwrap();
        assert_eq!(a.bytes_in_use(), 600);
        assert_eq!(a, b);
        assert_ne!(a, MemoryBudget::with_limit(1000));
        assert_ne!(a, MemoryBudget::unlimited());
        assert_eq!(MemoryBudget::unlimited(), MemoryBudget::unlimited());
    }

    #[test]
    fn meter_amortises_charges_and_returns_slack_on_drop() {
        let budget = MemoryBudget::with_limit(10 * METER_CHUNK);
        {
            let mut meter = budget.meter();
            for _ in 0..1000 {
                meter.charge(16, "loop").unwrap();
            }
            // 16_000 bytes of charges consumed exactly one chunk reservation.
            assert_eq!(budget.bytes_in_use(), METER_CHUNK);
        }
        assert_eq!(
            budget.bytes_in_use(),
            16_000,
            "dropping the meter refunds the unspent allowance"
        );
    }

    #[test]
    fn meter_failure_point_is_a_pure_function_of_the_charge_sequence() {
        // Two identical charge sequences against equal limits fail at the same charge
        // with the same error — the determinism property the engines rely on.
        let run = || {
            let budget = MemoryBudget::with_limit(3 * METER_CHUNK + 17);
            let mut meter = budget.meter();
            let mut failed_at = None;
            for i in 0..100_000u64 {
                if let Err(e) = meter.charge(4096, "sweep") {
                    failed_at = Some((i, e));
                    break;
                }
            }
            failed_at.expect("budget must exhaust")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_single_charge_reserves_exactly_the_need() {
        let budget = MemoryBudget::with_limit(10 * METER_CHUNK);
        let mut meter = budget.meter();
        meter.charge(5 * METER_CHUNK, "bulk").unwrap();
        assert_eq!(budget.bytes_in_use(), 5 * METER_CHUNK);
    }

    #[test]
    fn oversized_charge_with_held_allowance_does_not_underflow() {
        // Regression: a charge larger than METER_CHUNK while `held > 0` (small
        // per-edge charges interleaved with big per-state charges, exactly what the
        // explorers do on wide nets) used to compute `reserve - bytes` first and
        // underflow u64 in any overflow-checked build.
        let budget = MemoryBudget::with_limit(100 * METER_CHUNK);
        let mut meter = budget.meter();
        meter.charge(16, "edge").unwrap();
        let held_before = METER_CHUNK - 16;
        meter.charge(3 * METER_CHUNK, "state").unwrap();
        // The refill reserved exactly the shortfall, leaving the allowance empty.
        assert_eq!(
            budget.bytes_in_use(),
            METER_CHUNK + (3 * METER_CHUNK - held_before)
        );
        drop(meter);
        assert_eq!(
            budget.bytes_in_use(),
            16 + 3 * METER_CHUNK,
            "only consumed bytes stay charged after the meter returns its slack"
        );
    }

    #[test]
    fn interrupt_conversions_and_display() {
        let c: Interrupt = Cancelled.into();
        assert_eq!(c, Interrupt::Cancelled);
        assert_eq!(c.to_string(), "operation cancelled");
        let e = ResourceExhausted {
            limit_bytes: 10,
            requested_bytes: 20,
            stage: "arena",
        };
        let i: Interrupt = e.into();
        assert!(matches!(i, Interrupt::Exhausted(x) if x == e));
        assert!(i.to_string().contains("memory budget exhausted in arena"));
    }

    #[test]
    fn budget_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemoryBudget>();
        assert_send_sync::<ResourceExhausted>();
        assert_send_sync::<Interrupt>();
    }
}
