//! Cooperative cancellation for long-running engine loops.
//!
//! The scheduling pipeline is worst-case exponential in the number of free choices, so
//! every hot loop in the workspace — the sequential and sharded state-space explorers,
//! the gray-code allocation sweep, the RTOS batch simulator — accepts a [`CancelToken`]
//! and polls it cooperatively. A token combines two triggers behind one cheap check:
//!
//! * an **explicit flag** ([`CancelToken::cancel`]), set by another thread (a server
//!   worker shedding load, a drain sequence, a test), and
//! * an optional **deadline** ([`CancelToken::with_deadline`] /
//!   [`CancelToken::after`]), so a request-scoped budget cancels the stage *inside*
//!   its loop instead of only between pipeline stages.
//!
//! Cancellation is sticky and monotone: the flag is set-once and the deadline only
//! recedes into the past, so once any observer has seen the token cancelled, every
//! later observation agrees. That makes racy polling safe — a loop may run up to one
//! polling stride past the trigger, never resurrect.
//!
//! The default token ([`CancelToken::never`]) carries no allocation and no atomic —
//! `is_cancelled` on it is a branch on a `None` — so threading tokens through every
//! engine entry point costs nothing for callers that never cancel. Loops that iterate
//! millions of times per second amortise even the atomic load with a [`CancelGate`],
//! which only consults the token every `stride` iterations.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The typed error every cancellable engine loop returns when its token fires.
///
/// Deliberately a unit: by the time a stage is abandoned mid-loop there is nothing
/// meaningful to report beyond "the caller asked us to stop" — the caller holds the
/// token and knows whether the trigger was an explicit cancel or a blown deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("operation cancelled")
    }
}

impl Error for Cancelled {}

/// Shared trigger state; one allocation per armed token, none for [`CancelToken::never`].
#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle threaded through the engine's hot loops.
///
/// Clones share the same trigger: cancelling any clone cancels them all. See the
/// [module docs](self) for the polling contract.
///
/// # Examples
///
/// ```
/// use fcpn_petri::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// let observer = token.clone();
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert!(observer.check().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels — the zero-cost default for every engine options
    /// struct. Checking it is a branch on `None`; no allocation, no atomics.
    #[must_use]
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// An armed token with no deadline; fires only on an explicit [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// An armed token that also fires once `deadline` has passed.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// An armed token whose deadline is `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Trips the explicit flag. Idempotent; a no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has fired (explicit cancel, or deadline in the past).
    ///
    /// Sticky: once this returns `true` it returns `true` forever.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// [`is_cancelled`](CancelToken::is_cancelled) as a `?`-friendly result.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] once the token has fired.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }

    /// Whether this token can ever fire (`false` only for [`CancelToken::never`]).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }
}

/// Tokens compare by identity: two tokens are equal when they share the same trigger
/// (or are both [`CancelToken::never`]), mirroring the "cancelling one cancels the
/// other" relation. This keeps derived `PartialEq` on options structs meaningful.
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for CancelToken {}

/// A counter-gated poller: consults the token only every `stride` iterations so the
/// per-iteration cost in a hot loop is one increment and one mask.
///
/// `stride` is rounded up to a power of two. The gate polls on the *first* call and
/// then every `stride` calls, so short loops still observe a pre-fired token.
///
/// # Examples
///
/// ```
/// use fcpn_petri::cancel::CancelGate;
/// use fcpn_petri::CancelToken;
///
/// let token = CancelToken::new();
/// let mut gate = CancelGate::new(256);
/// for _ in 0..10_000 {
///     gate.check(&token).expect("token never fired");
/// }
/// token.cancel();
/// assert!((0..256).any(|_| gate.check(&token).is_err()));
/// ```
#[derive(Debug, Clone)]
pub struct CancelGate {
    counter: u64,
    mask: u64,
}

impl CancelGate {
    /// A gate polling every `stride` iterations (rounded up to a power of two;
    /// `stride = 1` polls every call).
    #[must_use]
    pub fn new(stride: u64) -> CancelGate {
        CancelGate {
            counter: 0,
            mask: stride.next_power_of_two().saturating_sub(1),
        }
    }

    /// Counts one iteration; polls `token` when the counter crosses the stride.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when a poll observes the token fired.
    #[inline]
    pub fn check(&mut self, token: &CancelToken) -> Result<(), Cancelled> {
        let poll = self.counter & self.mask == 0;
        self.counter = self.counter.wrapping_add(1);
        if poll {
            token.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_free_and_never_fires() {
        let token = CancelToken::never();
        assert!(!token.is_armed());
        assert!(!token.is_cancelled());
        token.cancel(); // no-op, not a panic
        assert!(!token.is_cancelled());
        assert!(token.check().is_ok());
        assert_eq!(token, CancelToken::default());
    }

    #[test]
    fn explicit_cancel_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.is_cancelled(), "cancellation never un-fires");
        assert_eq!(clone.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_in_the_past_fires_immediately() {
        let token = CancelToken::after(Duration::ZERO);
        assert!(token.is_cancelled());
    }

    #[test]
    fn distant_deadline_does_not_fire() {
        let token = CancelToken::after(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(
            token.is_cancelled(),
            "explicit cancel overrides the deadline"
        );
    }

    #[test]
    fn token_equality_is_identity() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(CancelToken::never(), CancelToken::never());
        assert_ne!(a, CancelToken::never());
    }

    #[test]
    fn gate_observes_cancel_within_one_stride() {
        let token = CancelToken::new();
        let mut gate = CancelGate::new(64);
        for _ in 0..1000 {
            assert!(gate.check(&token).is_ok());
        }
        token.cancel();
        let lag = (0..64).position(|_| gate.check(&token).is_err());
        assert!(lag.is_some(), "gate must poll within one stride");
    }

    #[test]
    fn gate_polls_on_the_first_call() {
        let token = CancelToken::new();
        token.cancel();
        let mut gate = CancelGate::new(1024);
        assert!(gate.check(&token).is_err());
    }
}
