//! The token game: enabledness, firing, and firing sequences.

use crate::{Marking, PetriError, PetriNet, Result, TransitionId};

impl PetriNet {
    /// Returns `true` if `transition` is enabled in `marking`, i.e. every input place
    /// holds at least as many tokens as the arc weight requires.
    ///
    /// Source transitions (empty pre-set) are always enabled: they model inputs arriving
    /// from the environment.
    ///
    /// # Panics
    ///
    /// Panics if the marking length does not match the net (use
    /// [`PetriNet::check_marking`] to validate first when the marking is untrusted).
    pub fn is_enabled(&self, marking: &Marking, transition: TransitionId) -> bool {
        self.pre[transition.index()]
            .iter()
            .all(|&(p, w)| marking.tokens(p) >= w)
    }

    /// All transitions enabled in `marking`, in index order.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_enabled(marking, t))
            .collect()
    }

    /// Returns `true` if no transition is enabled in `marking` (a dead marking).
    ///
    /// Note that a net with at least one source transition can never deadlock in this
    /// sense, since source transitions are always enabled.
    pub fn is_deadlocked(&self, marking: &Marking) -> bool {
        self.transitions().all(|t| !self.is_enabled(marking, t))
    }

    /// Fires `transition`, updating `marking` in place: removes `F(p, t)` tokens from each
    /// input place and adds `F(t, p)` tokens to each output place.
    ///
    /// # Errors
    ///
    /// * [`PetriError::UnknownTransition`] if the transition does not belong to the net.
    /// * [`PetriError::MarkingLengthMismatch`] if the marking does not match the net.
    /// * [`PetriError::NotEnabled`] if the transition is not enabled; the marking is left
    ///   unchanged in that case.
    /// * [`PetriError::TokenOverflow`] if an output place would exceed `u64::MAX`.
    pub fn fire(&self, marking: &mut Marking, transition: TransitionId) -> Result<()> {
        self.check_transition(transition)?;
        self.check_marking(marking)?;
        if !self.is_enabled(marking, transition) {
            return Err(PetriError::NotEnabled(transition));
        }
        for &(p, w) in &self.pre[transition.index()] {
            marking.remove(p, w)?;
        }
        for &(p, w) in &self.post[transition.index()] {
            marking.add(p, w)?;
        }
        Ok(())
    }

    /// Enabledness test on a raw token slice — the allocation-free twin of
    /// [`PetriNet::is_enabled`] used by the state-space engine and the schedulers' hot
    /// loops.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is shorter than the net's place count or `transition` is out of
    /// range (callers own the validation; this is the fast path).
    #[inline]
    pub fn is_enabled_at(&self, tokens: &[u64], transition: TransitionId) -> bool {
        self.pre[transition.index()]
            .iter()
            .all(|&(p, w)| tokens[p.index()] >= w)
    }

    /// The unchecked firing fast path: if `transition` is enabled in `src`, copies `src`
    /// into `dst`, applies the transition's precomputed delta row and returns `true`.
    /// Returns `false` — leaving `dst` unspecified — when the transition is disabled or
    /// an output place would overflow `u64::MAX`.
    ///
    /// Unlike [`PetriNet::fire`] this performs no id validation, no marking-length check
    /// and only a single pass over the input arcs, and it never allocates: the caller
    /// provides the scratch buffer. It is the engine primitive behind
    /// [`StateSpace::explore`](crate::statespace::StateSpace::explore).
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are shorter than the net's place count or `transition` is
    /// out of range.
    #[inline]
    pub fn fire_into(&self, src: &[u64], dst: &mut [u64], transition: TransitionId) -> bool {
        if !self.is_enabled_at(src, transition) {
            return false;
        }
        dst.copy_from_slice(src);
        for &(p, d) in &self.delta[transition.index()] {
            let slot = &mut dst[p.index()];
            if d >= 0 {
                match slot.checked_add(d as u64) {
                    Some(v) => *slot = v,
                    // Mirror the safe path's TokenOverflow: report failure instead of
                    // wrapping, so both explorers drop exactly the same edges.
                    None => return false,
                }
            } else {
                // Cannot underflow: |d| ≤ the pre-arc weight, and enabledness guarantees
                // the place holds at least that many tokens.
                *slot -= d.unsigned_abs();
            }
        }
        true
    }

    /// Fires a whole sequence of transitions, stopping at the first failure.
    ///
    /// On error the marking reflects all firings made before the failing one, and the
    /// error carries the failing transition.
    ///
    /// # Errors
    ///
    /// Same as [`PetriNet::fire`].
    pub fn fire_sequence(&self, marking: &mut Marking, sequence: &[TransitionId]) -> Result<()> {
        for &t in sequence {
            self.fire(marking, t)?;
        }
        Ok(())
    }

    /// Checks whether `sequence` is fireable from `from` and returns the resulting marking
    /// without mutating the input.
    ///
    /// # Errors
    ///
    /// Same as [`PetriNet::fire`].
    pub fn marking_after(&self, from: &Marking, sequence: &[TransitionId]) -> Result<Marking> {
        let mut m = from.clone();
        self.fire_sequence(&mut m, sequence)?;
        Ok(m)
    }

    /// Returns `true` if firing `sequence` from `from` succeeds and returns the net to
    /// exactly the marking `from` — i.e. the sequence is a *finite complete cycle* in the
    /// sense of Section 2 of the paper.
    pub fn is_finite_complete_cycle(&self, from: &Marking, sequence: &[TransitionId]) -> bool {
        match self.marking_after(from, sequence) {
            Ok(m) => m == *from,
            Err(_) => false,
        }
    }

    /// Counts the occurrences of every transition in `sequence` (the firing count vector
    /// `f(σ)` of the paper), indexed by transition id.
    pub fn firing_count_vector(&self, sequence: &[TransitionId]) -> Vec<u64> {
        let mut counts = vec![0u64; self.transition_count()];
        for &t in sequence {
            counts[t.index()] += 1;
        }
        counts
    }

    /// Records the peak number of tokens observed in any place while firing `sequence`
    /// from `from`. This is the buffer bound the schedule implies for a software
    /// implementation.
    ///
    /// # Errors
    ///
    /// Same as [`PetriNet::fire`].
    pub fn peak_tokens(&self, from: &Marking, sequence: &[TransitionId]) -> Result<Vec<u64>> {
        let mut m = from.clone();
        let mut peak: Vec<u64> = from.as_slice().to_vec();
        for &t in sequence {
            self.fire(&mut m, t)?;
            for (i, &k) in m.as_slice().iter().enumerate() {
                if k > peak[i] {
                    peak[i] = k;
                }
            }
        }
        Ok(peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    /// The multirate chain of Figure 2: t1 -> p1 (consume 2 by t2) -> t2 -> p2 (consume 2 by t3) -> t3.
    fn figure2() -> PetriNet {
        let mut b = NetBuilder::new("figure2");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 0);
        let t2 = b.transition("t2");
        let p2 = b.place("p2", 0);
        let t3 = b.transition("t3");
        b.arc_t_p(t1, p1, 1).unwrap();
        b.arc_p_t(p1, t2, 2).unwrap();
        b.arc_t_p(t2, p2, 1).unwrap();
        b.arc_p_t(p2, t3, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn source_transitions_are_always_enabled() {
        let net = figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let m = net.initial_marking().clone();
        assert!(net.is_enabled(&m, t1));
        assert_eq!(net.enabled_transitions(&m), vec![t1]);
        assert!(!net.is_deadlocked(&m));
    }

    #[test]
    fn firing_moves_tokens_respecting_weights() {
        let net = figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let p1 = net.place_by_name("p1").unwrap();
        let mut m = net.initial_marking().clone();
        net.fire(&mut m, t1).unwrap();
        assert_eq!(m.tokens(p1), 1);
        assert!(!net.is_enabled(&m, t2));
        net.fire(&mut m, t1).unwrap();
        assert!(net.is_enabled(&m, t2));
        net.fire(&mut m, t2).unwrap();
        assert_eq!(m.tokens(p1), 0);
    }

    #[test]
    fn firing_disabled_transition_fails_without_mutation() {
        let net = figure2();
        let t2 = net.transition_by_name("t2").unwrap();
        let mut m = net.initial_marking().clone();
        let before = m.clone();
        let err = net.fire(&mut m, t2).unwrap_err();
        assert_eq!(err, PetriError::NotEnabled(t2));
        assert_eq!(m, before);
    }

    #[test]
    fn marking_length_is_validated() {
        let net = figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let mut short = Marking::zeroes(1);
        assert!(matches!(
            net.fire(&mut short, t1),
            Err(PetriError::MarkingLengthMismatch { .. })
        ));
    }

    #[test]
    fn figure2_cycle_is_a_finite_complete_cycle() {
        // The paper's σ = t1 t1 t1 t1 t2 t2 t3 with f(σ) = (4, 2, 1).
        let net = figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let sigma = vec![t1, t1, t1, t1, t2, t2, t3];
        let m0 = net.initial_marking().clone();
        assert!(net.is_finite_complete_cycle(&m0, &sigma));
        assert_eq!(net.firing_count_vector(&sigma), vec![4, 2, 1]);
        // A truncated sequence is not a complete cycle.
        assert!(!net.is_finite_complete_cycle(&m0, &sigma[..5]));
    }

    #[test]
    fn peak_tokens_tracks_buffer_bound() {
        let net = figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let sigma = vec![t1, t1, t1, t1, t2, t2, t3];
        let peaks = net.peak_tokens(net.initial_marking(), &sigma).unwrap();
        // p1 peaks at 4 tokens (after four t1 firings), p2 at 2.
        assert_eq!(peaks, vec![4, 2]);
    }

    #[test]
    fn fire_sequence_reports_first_failure() {
        let net = figure2();
        let t1 = net.transition_by_name("t1").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let mut m = net.initial_marking().clone();
        let err = net.fire_sequence(&mut m, &[t1, t3]).unwrap_err();
        assert_eq!(err, PetriError::NotEnabled(t3));
        // The successful prefix has been applied.
        assert_eq!(m.total_tokens(), 1);
    }
}
