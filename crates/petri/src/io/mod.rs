//! Import/export of nets: Graphviz DOT rendering and a small textual format.

mod dot;
mod text;

pub use dot::{to_dot, DotOptions};
pub use text::{parse_net, to_text};
