//! A small line-oriented textual format for nets, round-trippable with the builder.
//!
//! Grammar (one statement per line, `#` starts a comment):
//!
//! ```text
//! net <name>
//! place <name> [tokens]
//! transition <name>
//! arc <from> -> <to> [weight]
//! ```
//!
//! Arcs must connect a place to a transition or vice versa; the node kind is inferred from
//! the earlier declarations.

use crate::{NetBuilder, PetriError, PetriNet, Result};
use std::collections::HashMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Place(crate::PlaceId),
    Transition(crate::TransitionId),
}

/// Parses the textual net format.
///
/// # Errors
///
/// Returns [`PetriError::Parse`] with the offending line number for any syntactic or
/// referential problem, and propagates builder errors (duplicate names, zero weights).
pub fn parse_net(input: &str) -> Result<PetriNet> {
    let mut name = String::from("net");
    let mut builder: Option<NetBuilder> = None;
    let mut nodes: HashMap<String, NodeKind> = HashMap::new();
    let mut pending_arcs: Vec<(usize, String, String, u64)> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or("");
        let lineno = lineno + 1;
        match keyword {
            "net" => {
                name = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing net name"))?
                    .to_string();
                builder = Some(NetBuilder::new(name.clone()));
            }
            "place" => {
                let b = builder.get_or_insert_with(|| NetBuilder::new(name.clone()));
                let pname = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing place name"))?;
                let tokens: u64 = match parts.next() {
                    Some(tok) => tok
                        .parse()
                        .map_err(|_| parse_err(lineno, "invalid token count"))?,
                    None => 0,
                };
                let id = b.place(pname, tokens);
                nodes.insert(pname.to_string(), NodeKind::Place(id));
            }
            "transition" => {
                let b = builder.get_or_insert_with(|| NetBuilder::new(name.clone()));
                let tname = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing transition name"))?;
                let id = b.transition(tname);
                nodes.insert(tname.to_string(), NodeKind::Transition(id));
            }
            "arc" => {
                let from = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing arc source"))?;
                let arrow = parts.next();
                if arrow != Some("->") {
                    return Err(parse_err(lineno, "expected `->` between arc endpoints"));
                }
                let to = parts
                    .next()
                    .ok_or_else(|| parse_err(lineno, "missing arc target"))?;
                let weight: u64 = match parts.next() {
                    Some(w) => w
                        .parse()
                        .map_err(|_| parse_err(lineno, "invalid arc weight"))?,
                    None => 1,
                };
                pending_arcs.push((lineno, from.to_string(), to.to_string(), weight));
            }
            other => {
                return Err(parse_err(lineno, &format!("unknown keyword `{other}`")));
            }
        }
    }

    let mut builder = builder.unwrap_or_else(|| NetBuilder::new(name));
    for (lineno, from, to, weight) in pending_arcs {
        let from_kind = nodes
            .get(&from)
            .ok_or_else(|| parse_err(lineno, &format!("unknown node `{from}`")))?;
        let to_kind = nodes
            .get(&to)
            .ok_or_else(|| parse_err(lineno, &format!("unknown node `{to}`")))?;
        match (from_kind, to_kind) {
            (NodeKind::Place(p), NodeKind::Transition(t)) => builder.arc_p_t(*p, *t, weight)?,
            (NodeKind::Transition(t), NodeKind::Place(p)) => builder.arc_t_p(*t, *p, weight)?,
            _ => {
                return Err(parse_err(
                    lineno,
                    "arcs must connect a place and a transition",
                ))
            }
        }
    }
    builder.build()
}

/// Serialises `net` back to the textual format accepted by [`parse_net`].
pub fn to_text(net: &PetriNet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "net {}", net.name());
    for p in net.places() {
        let tokens = net.initial_marking().tokens(p);
        if tokens > 0 {
            let _ = writeln!(out, "place {} {}", net.place_name(p), tokens);
        } else {
            let _ = writeln!(out, "place {}", net.place_name(p));
        }
    }
    for t in net.transitions() {
        let _ = writeln!(out, "transition {}", net.transition_name(t));
    }
    for t in net.transitions() {
        for &(p, w) in net.inputs(t) {
            if w > 1 {
                let _ = writeln!(
                    out,
                    "arc {} -> {} {}",
                    net.place_name(p),
                    net.transition_name(t),
                    w
                );
            } else {
                let _ = writeln!(
                    out,
                    "arc {} -> {}",
                    net.place_name(p),
                    net.transition_name(t)
                );
            }
        }
        for &(p, w) in net.outputs(t) {
            if w > 1 {
                let _ = writeln!(
                    out,
                    "arc {} -> {} {}",
                    net.transition_name(t),
                    net.place_name(p),
                    w
                );
            } else {
                let _ = writeln!(
                    out,
                    "arc {} -> {}",
                    net.transition_name(t),
                    net.place_name(p)
                );
            }
        }
    }
    out
}

fn parse_err(line: usize, message: &str) -> PetriError {
    PetriError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE4: &str = "
        net figure4
        transition t1
        place p1        # choice place
        transition t2
        transition t3
        place p2
        place p3
        transition t4
        transition t5
        arc t1 -> p1
        arc p1 -> t2
        arc p1 -> t3
        arc t2 -> p2
        arc p2 -> t4 2
        arc t3 -> p3 2
        arc p3 -> t5
    ";

    #[test]
    fn parses_figure4() {
        let net = parse_net(FIGURE4).unwrap();
        assert_eq!(net.name(), "figure4");
        assert_eq!(net.place_count(), 3);
        assert_eq!(net.transition_count(), 5);
        let p2 = net.place_by_name("p2").unwrap();
        let t4 = net.transition_by_name("t4").unwrap();
        assert_eq!(net.arc_weight_pt(p2, t4), 2);
        assert!(net.is_free_choice());
    }

    #[test]
    fn roundtrip_through_text() {
        let net = parse_net(FIGURE4).unwrap();
        let text = to_text(&net);
        let again = parse_net(&text).unwrap();
        assert_eq!(net.place_count(), again.place_count());
        assert_eq!(net.transition_count(), again.transition_count());
        assert_eq!(net.arc_count(), again.arc_count());
        assert_eq!(net.initial_marking(), again.initial_marking());
    }

    #[test]
    fn tokens_are_parsed() {
        let net = parse_net("net m\nplace p 5\ntransition t\narc p -> t").unwrap();
        assert_eq!(net.initial_marking().total_tokens(), 5);
    }

    #[test]
    fn unknown_keyword_is_rejected_with_line() {
        let err = parse_net("net x\nfoo bar").unwrap_err();
        match err {
            PetriError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("foo"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arc_between_two_places_is_rejected() {
        let err = parse_net("net x\nplace a\nplace b\narc a -> b").unwrap_err();
        assert!(matches!(err, PetriError::Parse { line: 4, .. }));
    }

    #[test]
    fn arc_to_unknown_node_is_rejected() {
        let err = parse_net("net x\nplace a\narc a -> ghost").unwrap_err();
        assert!(matches!(err, PetriError::Parse { .. }));
    }

    #[test]
    fn missing_arrow_is_rejected() {
        let err = parse_net("net x\nplace a\ntransition t\narc a t").unwrap_err();
        assert!(matches!(err, PetriError::Parse { line: 4, .. }));
    }
}
