//! Graphviz DOT export of Petri-net graphs.

use crate::{Marking, PetriNet};
use std::fmt::Write as _;

/// Options controlling DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DotOptions {
    /// Render arc weights greater than one as edge labels.
    pub show_weights: bool,
    /// Render the token count of marked places.
    pub show_tokens: bool,
}

impl DotOptions {
    /// Options that show both weights and tokens, the most common rendering.
    pub fn verbose() -> Self {
        DotOptions {
            show_weights: true,
            show_tokens: true,
        }
    }
}

/// Renders `net` (with an optional explicit marking, defaulting to the initial marking)
/// as a Graphviz `digraph`: places are circles, transitions are boxes.
///
/// # Examples
///
/// ```
/// use fcpn_petri::{NetBuilder, io::{to_dot, DotOptions}};
///
/// # fn main() -> Result<(), fcpn_petri::PetriError> {
/// let mut b = NetBuilder::new("demo");
/// let t = b.transition("t");
/// let p = b.place("p", 1);
/// b.arc_t_p(t, p, 2)?;
/// let dot = to_dot(&b.build()?, None, DotOptions::verbose());
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("shape=circle"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(net: &PetriNet, marking: Option<&Marking>, options: DotOptions) -> String {
    let marking = marking.unwrap_or(net.initial_marking());
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", net.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for p in net.places() {
        let tokens = marking.tokens(p);
        let label = if options.show_tokens && tokens > 0 {
            format!("{}\\n{}", net.place_name(p), tokens)
        } else {
            net.place_name(p).to_string()
        };
        let _ = writeln!(
            out,
            "  \"{}\" [shape=circle, label=\"{}\"];",
            net.place_name(p),
            label
        );
    }
    for t in net.transitions() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, style=filled, fillcolor=lightgray];",
            net.transition_name(t)
        );
    }
    for t in net.transitions() {
        for &(p, w) in net.inputs(t) {
            let _ = write_edge(
                &mut out,
                net.place_name(p),
                net.transition_name(t),
                w,
                options,
            );
        }
        for &(p, w) in net.outputs(t) {
            let _ = write_edge(
                &mut out,
                net.transition_name(t),
                net.place_name(p),
                w,
                options,
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn write_edge(
    out: &mut String,
    from: &str,
    to: &str,
    weight: u64,
    options: DotOptions,
) -> std::fmt::Result {
    if options.show_weights && weight > 1 {
        writeln!(out, "  \"{from}\" -> \"{to}\" [label=\"{weight}\"];")
    } else {
        writeln!(out, "  \"{from}\" -> \"{to}\";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn net() -> PetriNet {
        let mut b = NetBuilder::new("dot-test");
        let t1 = b.transition("t1");
        let p1 = b.place("p1", 2);
        let t2 = b.transition("t2");
        b.arc_t_p(t1, p1, 3).unwrap();
        b.arc_p_t(p1, t2, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = to_dot(&net(), None, DotOptions::default());
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert!(dot.contains("\"p1\" [shape=circle"));
        assert!(dot.contains("\"t1\" [shape=box"));
        assert!(dot.contains("\"t1\" -> \"p1\""));
        assert!(dot.contains("\"p1\" -> \"t2\""));
        // Weights hidden by default.
        assert!(!dot.contains("label=\"3\""));
    }

    #[test]
    fn verbose_options_show_weights_and_tokens() {
        let dot = to_dot(&net(), None, DotOptions::verbose());
        assert!(dot.contains("label=\"3\""));
        assert!(dot.contains("p1\\n2"));
    }

    #[test]
    fn explicit_marking_overrides_initial() {
        let n = net();
        let mut m = n.initial_marking().clone();
        m.set(n.place_by_name("p1").unwrap(), 7);
        let dot = to_dot(&n, Some(&m), DotOptions::verbose());
        assert!(dot.contains("p1\\n7"));
    }
}
