//! Error types for net construction, firing and analysis.

use crate::{PlaceId, TransitionId};
use std::fmt;

/// Errors reported by the Petri-net kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// A place identifier does not belong to the net being manipulated.
    UnknownPlace(PlaceId),
    /// A transition identifier does not belong to the net being manipulated.
    UnknownTransition(TransitionId),
    /// Two nodes with the same name were declared while building a net.
    DuplicateName(String),
    /// An arc was declared with weight zero, which the flow relation forbids.
    ZeroWeightArc,
    /// An arc between the same pair of nodes was declared twice.
    DuplicateArc(String),
    /// Attempted to fire a transition that is not enabled in the given marking.
    NotEnabled(TransitionId),
    /// A marking vector has the wrong number of places for the net.
    MarkingLengthMismatch {
        /// Number of places the net expects.
        expected: usize,
        /// Number of entries provided.
        found: usize,
    },
    /// A state-space exploration exceeded its configured budget.
    ExplorationBudgetExceeded {
        /// Number of markings explored before giving up.
        explored: usize,
    },
    /// Token counts overflowed `u64` during firing or analysis.
    TokenOverflow(PlaceId),
    /// A memory-budget charge failed during an analysis (see
    /// [`budget::ResourceExhausted`](crate::budget::ResourceExhausted)).
    ResourceExhausted {
        /// The budget's byte limit.
        limit_bytes: u64,
        /// Bytes the failing reservation asked for.
        requested_bytes: u64,
        /// The engine stage that issued the charge.
        stage: &'static str,
    },
    /// The net violates a structural precondition of the requested analysis.
    StructuralViolation(String),
    /// A textual net description could not be parsed.
    Parse {
        /// 1-based line of the offending input.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::UnknownPlace(p) => write!(f, "unknown place {p}"),
            PetriError::UnknownTransition(t) => write!(f, "unknown transition {t}"),
            PetriError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            PetriError::ZeroWeightArc => write!(f, "arc weight must be at least 1"),
            PetriError::DuplicateArc(a) => write!(f, "duplicate arc {a}"),
            PetriError::NotEnabled(t) => write!(f, "transition {t} is not enabled"),
            PetriError::MarkingLengthMismatch { expected, found } => write!(
                f,
                "marking has {found} entries but the net has {expected} places"
            ),
            PetriError::ExplorationBudgetExceeded { explored } => write!(
                f,
                "state-space exploration budget exceeded after {explored} markings"
            ),
            PetriError::TokenOverflow(p) => write!(f, "token count overflow in place {p}"),
            PetriError::ResourceExhausted {
                limit_bytes,
                requested_bytes,
                stage,
            } => crate::budget::ResourceExhausted {
                limit_bytes: *limit_bytes,
                requested_bytes: *requested_bytes,
                stage,
            }
            .fmt(f),
            PetriError::StructuralViolation(msg) => write!(f, "structural violation: {msg}"),
            PetriError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PetriError {}

impl From<crate::budget::ResourceExhausted> for PetriError {
    fn from(e: crate::budget::ResourceExhausted) -> Self {
        PetriError::ResourceExhausted {
            limit_bytes: e.limit_bytes,
            requested_bytes: e.requested_bytes,
            stage: e.stage,
        }
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T, E = PetriError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = PetriError::UnknownPlace(PlaceId::new(3));
        assert_eq!(e.to_string(), "unknown place p3");
        let e = PetriError::NotEnabled(TransitionId::new(1));
        assert_eq!(e.to_string(), "transition t1 is not enabled");
        let e = PetriError::MarkingLengthMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("4 places"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PetriError>();
    }
}
