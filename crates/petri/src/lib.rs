//! # fcpn-petri — Petri-net kernel for quasi-static scheduling
//!
//! This crate is the substrate of the reproduction of *Synthesis of Embedded Software
//! Using Free-Choice Petri Nets* (Sgroi, Lavagno, Watanabe, Sangiovanni-Vincentelli,
//! DAC 1999). It provides:
//!
//! * weighted Petri nets `(P, T, F)` with an initial marking ([`PetriNet`],
//!   [`NetBuilder`], [`Marking`]);
//! * the token game: enabledness, firing, firing sequences and finite complete cycles;
//! * structural analysis: incidence matrices, T-/P-invariants via the Farkas algorithm,
//!   consistency, net-class classification (marked graph / conflict free / free choice)
//!   and the Equal Conflict Relation ([`analysis`]);
//! * behavioural analysis: budgeted reachability, boundedness (with unboundedness
//!   witnesses), deadlock and liveness checks ([`analysis`]);
//! * import/export: Graphviz DOT and a small textual format ([`io`]);
//! * 128-bit whole-net fingerprints for result caches ([`fingerprint`]);
//! * cooperative cancellation (deadline + explicit flag) for every long-running
//!   engine loop ([`cancel`]);
//! * byte-budgeted engine allocations with typed exhaustion errors ([`budget`]);
//! * region-based synthesis — the inverse direction: from a finite transition system
//!   (or event log) back to a net whose reachability graph realises it ([`synthesis`]);
//! * the nets of the paper's figures, reconstructed for tests and benchmarks
//!   ([`gallery`]).
//!
//! # Quick example
//!
//! The multirate chain of Figure 2 of the paper and its repetition vector:
//!
//! ```
//! use fcpn_petri::{gallery, analysis::InvariantAnalysis};
//!
//! let net = gallery::figure2();
//! let invariants = InvariantAnalysis::of(&net);
//! assert_eq!(invariants.t_semiflows[0].vector, vec![4, 2, 1]);
//! ```
//!
//! Higher layers live in the companion crates: `fcpn-sdf` (static scheduling of marked
//! graphs), `fcpn-qss` (quasi-static scheduling of FCPNs), `fcpn-codegen` (C code
//! synthesis), `fcpn-rtos` (run-time simulation) and `fcpn-atm` (the ATM-server case
//! study).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod budget;
mod builder;
pub mod cancel;
mod error;
pub mod fingerprint;
mod firing;
pub mod gallery;
mod ids;
pub mod io;
mod marking;
mod net;
pub mod statespace;
pub mod synthesis;

pub use budget::{Interrupt, MemoryBudget, ResourceExhausted};
pub use builder::NetBuilder;
pub use cancel::{CancelToken, Cancelled};
pub use error::{PetriError, Result};
pub use fingerprint::{net_fingerprint, net_structural_fingerprint, Fingerprint128};
pub use ids::{NodeId, PlaceId, TransitionId};
pub use marking::Marking;
pub use net::{NetStats, PetriNet, Place, SubnetMap, Transition};
pub use synthesis::{Lts, SynthesisError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PetriNet>();
        assert_send_sync::<Marking>();
        assert_send_sync::<PetriError>();
        assert_send_sync::<NetBuilder>();
    }

    #[test]
    fn crate_level_example_compiles() {
        let net = gallery::figure2();
        assert_eq!(net.transition_count(), 3);
    }
}
